//! The aggregator node: fault-isolated per-upstream pull workers that
//! drain upstream servers (and child aggregators) into the merge tree,
//! plus a TCP serving loop that answers the same framed query protocol an
//! `mhp-server` speaks — which is exactly what lets aggregators stack.
//!
//! Each upstream is owned by one supervisor thread (deadlines, backoff,
//! circuit breaker — see [`crate::supervisor`] and DESIGN §18), so a
//! dead, slow, or flapping upstream costs its own slot and nothing else.
//! A clock thread ticks the shared cycle counter, advances the epoch when
//! any worker made progress, and checkpoints.

use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mhp_core::Candidate;
use mhp_faults::{FaultHook, PullAction};
use mhp_server::protocol::{read_frame, write_frame};
use mhp_server::{
    tenant_of, BreakerPhase, Client, ErrorCode, ProfileData, ProfilerKind, Request, Response,
    ServerError, SessionConfig, SessionInfo, UpstreamHealth,
};
use mhp_telemetry::{Counter, CounterVec, Gauge, Registry, Trace, TraceConfig, Tracer};

use crate::state::{AggState, CUMULATIVE_SUFFIX};
use crate::supervisor::{CircuitBreaker, PullDecision, PullPolicy, UpstreamStatus, NEVER};

/// The aggregator's pull-cycle stage taxonomy, in pipeline order; the
/// tracer registers one `agg_stage_{name}_us` histogram per entry.
pub const AGG_STAGES: &[&str] = &[
    "connect",
    "list_sessions",
    "snapshot",
    "apply",
    "checkpoint",
];

/// Connecting to an upstream.
const AGG_STAGE_CONNECT: usize = 0;
/// Listing the upstream's sessions.
const AGG_STAGE_LIST_SESSIONS: usize = 1;
/// Attaching to sessions and pulling their interval snapshots.
const AGG_STAGE_SNAPSHOT: usize = 2;
/// Merging the harvest into the tree under the state lock.
const AGG_STAGE_APPLY: usize = 3;
/// Encoding and atomically writing the cycle's checkpoint.
const AGG_STAGE_CHECKPOINT: usize = 4;

/// Tuning for an [`Aggregator`].
#[derive(Debug, Clone)]
pub struct AggConfig {
    /// Upstream addresses to pull from: `mhp-server`s, other
    /// aggregators, or a mix. Sessions whose name ends in
    /// `/__cumulative__` are treated as child-aggregator exports
    /// (replace semantics); everything else is a leaf session (additive
    /// interval pulls).
    pub upstreams: Vec<String>,
    /// Pause between a worker's successful pulls, and the clock thread's
    /// tick (one tick = one cycle for epoch/staleness accounting).
    pub pull_interval: Duration,
    /// When set, the merge tree is checkpointed here (atomically, in the
    /// shared CRC-guarded snapshot envelope) after every progressing
    /// cycle and restored on the next start — a kill -9'd aggregator
    /// resumes with its cursors intact and never double-counts an
    /// interval.
    pub state_path: Option<PathBuf>,
    /// Per-connection read timeout on the serving side.
    pub read_timeout: Duration,
    /// Deadlines, backoff, and circuit-breaker tuning for the pull
    /// workers.
    pub policy: PullPolicy,
    /// Concurrent query connections served before new ones are rejected
    /// with a retryable `overloaded` answer.
    pub max_query_conns: usize,
    /// Armed fault plan for chaos testing: consulted once per pull
    /// attempt (`conn-drop` fails the attempt, `upstream-stall` wedges
    /// then fails) and once per in-pull operation (`slow-read` delays
    /// it). Errors land in `agg_pull_errors_total{upstream=...}`.
    pub fault_hook: Option<FaultHook>,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            upstreams: Vec::new(),
            pull_interval: Duration::from_millis(200),
            state_path: None,
            read_timeout: Duration::from_millis(200),
            policy: PullPolicy::default(),
            max_query_conns: 64,
            fault_hook: None,
        }
    }
}

/// Aggregator-side counters, on one shared registry so the `metrics`
/// query exposes the whole picture — per-tenant and per-upstream series
/// included.
struct AggTelemetry {
    registry: Registry,
    pull_cycles: Counter,
    /// Failed pull attempts, labeled by upstream address — a flapping
    /// upstream is attributable from the metrics endpoint alone.
    pull_errors: CounterVec,
    quarantines: CounterVec,
    recoveries: CounterVec,
    partial_harvests: Counter,
    checkpoints: Counter,
    checkpoint_errors: Counter,
    restores: Counter,
    busy_rejections: Counter,
    tenant_profiles_merged: CounterVec,
    tenant_events_merged: CounterVec,
    /// Per-pull stage tracing: one `"pull"` trace per attempt (detail =
    /// upstream index) plus one `"checkpoint"` trace per progressing
    /// cycle, behind the same `traces` query the server answers.
    tracer: Tracer,
}

impl AggTelemetry {
    fn new() -> AggTelemetry {
        let registry = Registry::new();
        AggTelemetry {
            pull_cycles: registry.counter("agg_pull_cycles_total"),
            pull_errors: CounterVec::new(&registry, "agg_pull_errors_total", "upstream"),
            quarantines: CounterVec::new(&registry, "agg_upstream_quarantines_total", "upstream"),
            recoveries: CounterVec::new(&registry, "agg_upstream_recoveries_total", "upstream"),
            partial_harvests: registry.counter("agg_partial_harvests_total"),
            checkpoints: registry.counter("agg_checkpoints_total"),
            checkpoint_errors: registry.counter("agg_checkpoint_errors_total"),
            restores: registry.counter("agg_restore_total"),
            busy_rejections: registry.counter("agg_query_busy_rejections_total"),
            tenant_profiles_merged: CounterVec::new(
                &registry,
                "agg_tenant_profiles_merged_total",
                "tenant",
            ),
            tenant_events_merged: CounterVec::new(
                &registry,
                "agg_tenant_events_merged_total",
                "tenant",
            ),
            tracer: Tracer::new(&registry, TraceConfig::new("agg", AGG_STAGES)),
            registry,
        }
    }
}

/// One upstream's runtime: shared health state plus its metric handles,
/// all owned by `Inner` so every thread sees the same series.
struct UpstreamRuntime {
    status: UpstreamStatus,
    healthy_gauge: Gauge,
    staleness_gauge: Gauge,
    errors: Counter,
    quarantines: Counter,
    recoveries: Counter,
}

/// Shared state between the pull workers, the clock, the serving loop,
/// and the handle.
struct Inner {
    config: AggConfig,
    state: Mutex<AggState>,
    telemetry: AggTelemetry,
    upstreams: Vec<UpstreamRuntime>,
    /// Clock ticks since start; the unit of staleness accounting.
    cycles: AtomicU64,
    /// Set by any worker that applied a harvest (or completed an empty
    /// pull); consumed by the clock thread, which then advances the
    /// epoch and checkpoints.
    progress: AtomicBool,
    /// Whether the last checkpoint write failed — gates the
    /// once-per-transition stderr log.
    checkpoint_failing: AtomicBool,
    shutdown: AtomicBool,
}

/// The aggregation node. [`bind`](Aggregator::bind) it to get a
/// [`RunningAggregator`] handle.
#[derive(Debug)]
pub struct Aggregator;

impl Aggregator {
    /// Binds `addr`, restores any checkpoint at
    /// [`AggConfig::state_path`], and starts one pull worker per
    /// upstream, the clock thread, and the serving loop on background
    /// threads.
    ///
    /// # Errors
    ///
    /// [`ServerError::Io`] if the address cannot be bound, or a snapshot
    /// error if an existing checkpoint file is corrupt (a corrupt
    /// checkpoint is a loud failure, not silent data loss).
    pub fn bind(addr: &str, config: AggConfig) -> Result<RunningAggregator, ServerError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let telemetry = AggTelemetry::new();
        let mut state = AggState::new();
        if let Some(path) = &config.state_path {
            match std::fs::read(path) {
                Ok(bytes) => {
                    state = AggState::decode(&bytes)
                        .map_err(|e| ServerError::protocol_owned(format!("checkpoint: {e}")))?;
                    telemetry.restores.incr();
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(ServerError::Io(e)),
            }
        }

        let upstreams = config
            .upstreams
            .iter()
            .map(|addr| {
                let labels = &[("upstream", addr.as_str())];
                let runtime = UpstreamRuntime {
                    status: UpstreamStatus::new(addr.clone()),
                    healthy_gauge: telemetry
                        .registry
                        .gauge_with_labels("agg_upstream_healthy", labels),
                    staleness_gauge: telemetry
                        .registry
                        .gauge_with_labels("agg_upstream_staleness_cycles", labels),
                    errors: telemetry.pull_errors.with_label(addr),
                    quarantines: telemetry.quarantines.with_label(addr),
                    recoveries: telemetry.recoveries.with_label(addr),
                };
                runtime.healthy_gauge.set(1);
                runtime
            })
            .collect();

        let inner = Arc::new(Inner {
            config,
            state: Mutex::new(state),
            telemetry,
            upstreams,
            cycles: AtomicU64::new(0),
            progress: AtomicBool::new(false),
            checkpoint_failing: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });

        let mut pull_handles = Vec::with_capacity(inner.config.upstreams.len() + 1);
        for index in 0..inner.config.upstreams.len() {
            let worker_inner = Arc::clone(&inner);
            pull_handles.push(std::thread::spawn(move || {
                upstream_worker(&worker_inner, index);
            }));
        }
        let clock_inner = Arc::clone(&inner);
        pull_handles.push(std::thread::spawn(move || clock_loop(&clock_inner)));
        let serve_inner = Arc::clone(&inner);
        let serve_handle = std::thread::spawn(move || accept_loop(&listener, &serve_inner));

        Ok(RunningAggregator {
            local_addr,
            inner,
            pull_handles,
            serve_handle: Some(serve_handle),
        })
    }
}

/// A bound, running aggregator.
#[derive(Debug)]
pub struct RunningAggregator {
    local_addr: SocketAddr,
    inner: Arc<Inner>,
    pull_handles: Vec<JoinHandle<()>>,
    serve_handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl RunningAggregator {
    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Progressing pull cycles so far (the epoch of the merge tree).
    pub fn epoch(&self) -> u64 {
        self.inner.state.lock().expect("state lock poisoned").epoch
    }

    /// Clock ticks since start — the denominator of staleness.
    pub fn cycles(&self) -> u64 {
        self.inner.cycles.load(Ordering::SeqCst)
    }

    /// Per-upstream supervisor health, in configuration order — the same
    /// block the session listing carries on the wire.
    pub fn upstream_health(&self) -> Vec<UpstreamHealth> {
        let now = self.cycles();
        self.inner
            .upstreams
            .iter()
            .map(|up| up.status.health(now))
            .collect()
    }

    /// The global top-k for one tenant, straight from the merge tree.
    pub fn top_k(&self, tenant: &str, k: usize) -> Vec<Candidate> {
        self.inner
            .state
            .lock()
            .expect("state lock poisoned")
            .top_k(tenant, k)
    }

    /// Prometheus exposition of the aggregator's metrics.
    pub fn metrics(&self) -> String {
        self.inner.telemetry.registry.render_prometheus()
    }

    /// The pull-cycle trace stream as JSONL — stage summaries followed by
    /// sampled traces — same text the `traces` query returns.
    pub fn traces_jsonl(&self) -> String {
        self.inner.telemetry.tracer.render_jsonl()
    }

    /// Requests a graceful shutdown. Returns immediately; use
    /// [`join`](Self::join) to wait.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Waits for every loop to finish. Implies [`shutdown`](Self::shutdown).
    pub fn join(mut self) {
        self.shutdown();
        self.reap();
    }

    /// Blocks until the aggregator shuts down (e.g. a client `shutdown`
    /// request) without triggering the shutdown itself.
    pub fn wait(mut self) {
        self.reap();
    }

    fn reap(&mut self) {
        if let Some(handle) = self.serve_handle.take() {
            let _ = handle.join();
        }
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for handle in self.pull_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningAggregator {
    fn drop(&mut self) {
        self.shutdown();
        self.reap();
    }
}

/// One upstream's harvest, collected off-lock (the pulls are network I/O)
/// and applied to the merge tree in one short critical section. A pull
/// that errors mid-way still returns the harvest it completed: each
/// session's cursor entry covers exactly the snapshots that landed in
/// `leaf_profiles`, so applying a partial harvest is idempotent — the
/// next successful pull resumes from the committed cursor and never
/// double-counts.
#[derive(Default)]
struct Harvest {
    /// Leaf profiles: `(tenant, candidates)`, in pull order.
    leaf_profiles: Vec<(String, Vec<Candidate>)>,
    /// Cursor advances: `(session, next_interval)`.
    cursors: Vec<(String, u64)>,
    /// Child-aggregator exports: `(tenant, full cumulative table)`.
    children: Vec<(String, Vec<Candidate>)>,
}

impl Harvest {
    fn is_empty(&self) -> bool {
        self.leaf_profiles.is_empty() && self.cursors.is_empty() && self.children.is_empty()
    }
}

/// Sleeps up to `total`, polling the shutdown flag in small slices so
/// shutdown never waits out a backoff or quarantine.
fn sleep_responsive(inner: &Inner, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline {
        if inner.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The supervisor loop for one upstream: pull on the interval while
/// healthy, back off exponentially on failure, quarantine after the
/// breaker threshold, probe half-open, recover. Nothing here blocks any
/// other upstream.
fn upstream_worker(inner: &Inner, index: usize) {
    let policy = inner.config.policy.clone();
    let up = &inner.upstreams[index];
    let mut breaker = CircuitBreaker::new(policy.breaker_threshold, policy.quarantine);
    while !inner.shutdown.load(Ordering::SeqCst) {
        match breaker.decide(Instant::now()) {
            PullDecision::Skip(remaining) => {
                // Quarantined: nap until the quarantine elapses (capped so
                // shutdown and health reads stay fresh), then re-decide.
                sleep_responsive(inner, remaining.min(inner.config.pull_interval));
                continue;
            }
            PullDecision::Probe => up.status.record_phase(BreakerPhase::HalfOpen),
            PullDecision::Pull => {}
        }

        // Injected pull faults: a conn-drop fails the attempt without
        // touching the network; an upstream-stall wedges the worker for
        // the fault's duration, then fails — exactly what a real stalled
        // upstream does to a deadline-bounded pull.
        let action = inner
            .config
            .fault_hook
            .as_ref()
            .map_or(PullAction::Proceed, FaultHook::on_pull);

        // One trace per pull attempt, tagged with the upstream's index;
        // an errored pull still finishes (its connect/list time is real
        // work worth attributing).
        let trace = inner.telemetry.tracer.begin("pull");
        trace.set_detail(index as u64);
        let result = match action {
            PullAction::Drop => Err(ServerError::protocol("injected pull connection drop")),
            PullAction::Stall(wedge) => {
                sleep_responsive(inner, wedge);
                Err(ServerError::protocol("injected upstream stall"))
            }
            PullAction::Proceed => {
                let (harvest, result) = pull_upstream(inner, index, &trace);
                if !harvest.is_empty() {
                    let apply = trace.stage(AGG_STAGE_APPLY);
                    apply_harvest(inner, &up.status.addr, harvest);
                    apply.finish();
                    if result.is_err() {
                        // Partial harvest: the error cut the pull short,
                        // but everything collected before it is applied
                        // with matching cursors.
                        inner.telemetry.partial_harvests.incr();
                    }
                    inner.progress.store(true, Ordering::SeqCst);
                } else if result.is_ok() {
                    inner.progress.store(true, Ordering::SeqCst);
                }
                result
            }
        };
        trace.finish();

        match result {
            Ok(()) => {
                if breaker.on_success() {
                    up.recoveries.incr();
                }
                let cycle = inner.cycles.load(Ordering::SeqCst);
                let epoch = inner.state.lock().expect("state lock poisoned").epoch;
                up.status.record_success(cycle, epoch);
                up.healthy_gauge.set(1);
                up.staleness_gauge.set(0);
                sleep_responsive(inner, inner.config.pull_interval);
            }
            Err(_) => {
                up.errors.incr();
                let outcome = breaker.on_failure(Instant::now());
                up.status
                    .record_failure(breaker.consecutive_failures(), breaker.phase());
                if outcome.quarantined {
                    up.quarantines.incr();
                    up.healthy_gauge.set(0);
                    // The quarantine nap happens via Skip on the next
                    // decide(); no extra sleep here.
                } else {
                    sleep_responsive(inner, policy.backoff(breaker.consecutive_failures(), index));
                }
            }
        }
    }
}

/// The clock: one tick per [`AggConfig::pull_interval`]. Each tick bumps
/// the cycle counter, refreshes staleness gauges, and — when any worker
/// made progress since the last tick — advances the epoch and
/// checkpoints.
fn clock_loop(inner: &Inner) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        sleep_responsive(inner, inner.config.pull_interval);
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let cycle = inner.cycles.fetch_add(1, Ordering::SeqCst) + 1;
        for up in &inner.upstreams {
            up.staleness_gauge.set(up.status.staleness_cycles(cycle));
        }
        if inner.progress.swap(false, Ordering::SeqCst) {
            checkpoint_cycle(inner);
        }
        inner.telemetry.pull_cycles.incr();
    }
    // A final checkpoint so shutdown never strands an applied harvest in
    // memory only.
    if inner.progress.swap(false, Ordering::SeqCst) {
        checkpoint_cycle(inner);
    }
}

/// Advances the epoch and atomically writes the checkpoint. Write
/// failures are loud: counted in `agg_checkpoint_errors_total` and logged
/// to stderr once per transition (one line when writes start failing, one
/// when they recover) so a full disk cannot silently turn checkpointing
/// off.
fn checkpoint_cycle(inner: &Inner) {
    let trace = inner.telemetry.tracer.begin("checkpoint");
    let timer = trace.stage(AGG_STAGE_CHECKPOINT);
    let mut state = inner.state.lock().expect("state lock poisoned");
    state.epoch += 1;
    let snapshot = inner.config.state_path.as_ref().map(|_| state.encode());
    drop(state);
    if let (Some(path), Some(bytes)) = (&inner.config.state_path, snapshot) {
        match write_atomically(path, &bytes) {
            Ok(()) => {
                inner.telemetry.checkpoints.incr();
                if inner.checkpoint_failing.swap(false, Ordering::SeqCst) {
                    eprintln!("mhp-agg: checkpoint writes to {} recovered", path.display());
                }
            }
            Err(err) => {
                inner.telemetry.checkpoint_errors.incr();
                if !inner.checkpoint_failing.swap(true, Ordering::SeqCst) {
                    eprintln!(
                        "mhp-agg: checkpoint write to {} failed: {err}",
                        path.display()
                    );
                }
            }
        }
    }
    timer.finish();
    trace.finish();
}

/// Connects to one upstream and drains everything new: every completed,
/// not-yet-pulled interval of every leaf session, and the full cumulative
/// table of every child-aggregator export.
///
/// Always returns the harvest collected so far, even alongside an error —
/// cursors in the harvest cover exactly the snapshots that completed, so
/// the caller can apply a partial harvest without double-counting. Every
/// operation is deadline-bounded (connect timeout, per-read timeout) and
/// the whole pull is budgeted: a dribbling upstream trips the budget
/// between operations instead of holding the worker hostage.
fn pull_upstream(inner: &Inner, index: usize, trace: &Trace) -> (Harvest, Result<(), ServerError>) {
    let upstream = &inner.config.upstreams[index];
    let policy = &inner.config.policy;
    let started = Instant::now();
    let mut harvest = Harvest::default();

    let over_budget = || -> Result<(), ServerError> {
        if inner.shutdown.load(Ordering::SeqCst) {
            return Err(ServerError::protocol("shutting down"));
        }
        if started.elapsed() > policy.pull_budget {
            return Err(ServerError::protocol("pull budget exhausted"));
        }
        Ok(())
    };
    // Injected slow-read: delay the next in-pull operation.
    let read_delay = || {
        if let Some(hook) = &inner.config.fault_hook {
            if let Some(delay) = hook.on_pull_op() {
                std::thread::sleep(delay);
            }
        }
    };

    let result = (|| -> Result<(), ServerError> {
        let connect = trace.stage(AGG_STAGE_CONNECT);
        let mut client = Client::connect_timeout(upstream.as_str(), policy.connect_timeout)?;
        client.set_read_timeout(Some(policy.read_timeout))?;
        connect.finish();
        let list = trace.stage(AGG_STAGE_LIST_SESSIONS);
        read_delay();
        let sessions = client.list_sessions()?;
        list.finish();
        for info in sessions {
            over_budget()?;
            read_delay();
            // Attach round-trips count toward the snapshot stage: they
            // exist only to scope the pulls that follow.
            if let Some(tenant) = info.name.strip_suffix(CUMULATIVE_SUFFIX) {
                let timer = trace.stage(AGG_STAGE_SNAPSHOT);
                client.attach(&info.name)?;
                let profile = client.snapshot(u64::MAX)?;
                timer.finish();
                if let Some(profile) = profile {
                    harvest
                        .children
                        .push((tenant.to_string(), profile.candidates));
                }
                continue;
            }
            let tenant = tenant_of(&info.name).to_string();
            let mut cursor = {
                let state = inner.state.lock().expect("state lock poisoned");
                state.cursor(upstream, &info.name)
            };
            if cursor >= info.intervals {
                continue; // nothing new; skip the attach round-trip
            }
            let timer = trace.stage(AGG_STAGE_SNAPSHOT);
            let attach_result = client.attach(&info.name).map(|_| ());
            let start_cursor = cursor;
            let mut session_result = attach_result;
            while session_result.is_ok() {
                if let Err(err) = over_budget() {
                    session_result = Err(err);
                    break;
                }
                match client.snapshot(cursor) {
                    Ok(Some(profile)) => {
                        harvest
                            .leaf_profiles
                            .push((tenant.clone(), profile.candidates));
                        cursor += 1;
                    }
                    Ok(None) => break,
                    Err(err) => session_result = Err(err),
                }
            }
            timer.finish();
            // Commit the cursor exactly as far as the snapshots actually
            // harvested — a mid-session error keeps profile data and
            // cursor consistent.
            if cursor > start_cursor {
                harvest.cursors.push((info.name, cursor));
            }
            session_result?;
        }
        Ok(())
    })();
    (harvest, result)
}

/// Applies one upstream's harvest under the state lock.
fn apply_harvest(inner: &Inner, upstream: &str, harvest: Harvest) {
    let mut state = inner.state.lock().expect("state lock poisoned");
    for (tenant, candidates) in &harvest.leaf_profiles {
        let added = state.add_leaf_profile(tenant, candidates);
        inner.telemetry.tenant_profiles_merged.incr(tenant);
        inner.telemetry.tenant_events_merged.add(tenant, added);
    }
    for (session, cursor) in &harvest.cursors {
        state.set_cursor(upstream, session, *cursor);
    }
    for (tenant, candidates) in &harvest.children {
        state.set_child(upstream, tenant, candidates);
    }
}

/// Atomic file replacement, same discipline as the server's checkpoints:
/// complete on disk before it takes the live name.
fn write_atomically(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Decrements the active-connection count when a connection thread exits,
/// panics included.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Accepts query connections until shutdown. One thread per connection —
/// aggregator query fan-in is dashboards and parent aggregators, not the
/// firehose the ingest path handles. Finished handles are reaped as
/// connections are accepted (not hoarded until shutdown), and arrivals
/// beyond [`AggConfig::max_query_conns`] get a typed retryable
/// `overloaded` rejection instead of a thread.
fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    let active = Arc::new(AtomicUsize::new(0));
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                handles.retain(|handle| !handle.is_finished());
                if active.load(Ordering::SeqCst) >= inner.config.max_query_conns {
                    inner.telemetry.busy_rejections.incr();
                    reject_busy(stream);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let guard = ConnGuard(Arc::clone(&active));
                let inner = Arc::clone(inner);
                handles.push(std::thread::spawn(move || {
                    let _guard = guard;
                    handle_connection(stream, &inner);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
}

/// Answers one over-capacity connection with a retryable `overloaded`
/// error and hangs up.
fn reject_busy(stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let mut writer = BufWriter::new(stream);
    let response = Response::Error {
        code: ErrorCode::Overloaded,
        message: "aggregator query plane at connection capacity; retry".into(),
    };
    let _ = write_frame(&mut writer, &response.encode());
    let _ = std::io::Write::flush(&mut writer);
}

/// Serves one query connection until EOF, a violation, or shutdown.
fn handle_connection(stream: TcpStream, inner: &Inner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    // The tenant this connection attached to, if any.
    let mut attached: Option<String> = None;

    loop {
        let body = match read_frame(&mut reader) {
            Ok(Some(body)) => body,
            Ok(None) => return,
            Err(ServerError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(err) => {
                respond(&mut writer, &error_response(&err));
                return;
            }
        };
        let request = match Request::decode(&body) {
            Ok(request) => request,
            Err(err) => {
                respond(&mut writer, &error_response(&err));
                return;
            }
        };
        let response = handle_request(request, &mut attached, inner);
        if !respond(&mut writer, &response) {
            return;
        }
    }
}

fn respond(writer: &mut impl std::io::Write, response: &Response) -> bool {
    if write_frame(writer, &response.encode()).is_err() {
        return false;
    }
    writer.flush().is_ok()
}

fn error_response(err: &ServerError) -> Response {
    Response::Error {
        code: err.code(),
        message: err.wire_message(),
    }
}

/// The placeholder session configuration cumulative exports carry: zero
/// interval length and threshold mark the "session" as a cumulative
/// table, not an interval profiler.
fn cumulative_config() -> SessionConfig {
    SessionConfig {
        kind: ProfilerKind::MultiHash,
        shards: 0,
        interval_len: 0,
        threshold: 0.0,
        seed: 0,
    }
}

/// Dispatches one request against the merge tree. The aggregator speaks
/// the server's protocol but is read-only: every mutating op gets a typed
/// `bad-request` answer.
fn handle_request(request: Request, attached: &mut Option<String>, inner: &Inner) -> Response {
    let state = || inner.state.lock().expect("state lock poisoned");
    let read_only = || Response::Error {
        code: ErrorCode::BadRequest,
        message: "aggregators are read-only; stream to an mhp-server".into(),
    };
    match request {
        Request::Attach { name } => {
            // Accept both the bare tenant name and the full cumulative
            // session name a parent copies from our own listing.
            let tenant = name.strip_suffix(CUMULATIVE_SUFFIX).unwrap_or(&name);
            let guard = state();
            if guard.tenant_table(tenant).is_none() {
                return Response::Error {
                    code: ErrorCode::UnknownSession,
                    message: format!("no tenant named {tenant:?} aggregated here"),
                };
            }
            let info = tenant_info(&guard, tenant);
            drop(guard);
            *attached = Some(tenant.to_string());
            Response::Session(info)
        }
        Request::ListSessions => {
            let now = inner.cycles.load(Ordering::SeqCst);
            let guard = state();
            let sessions = guard
                .tenant_names()
                .iter()
                .map(|tenant| tenant_info(&guard, tenant))
                .collect();
            drop(guard);
            // The listing doubles as the fleet health endpoint: parents
            // and dashboards see which upstreams are stale without
            // scraping metrics.
            let upstreams = inner
                .upstreams
                .iter()
                .map(|up| up.status.health(now))
                .collect();
            Response::SessionList {
                sessions,
                upstreams,
            }
        }
        Request::TopK { n } => match &attached {
            Some(tenant) => Response::TopK(state().top_k(tenant, n as usize)),
            None => read_only_attach_error(),
        },
        Request::Snapshot { .. } => match &attached {
            // The full cumulative table, hottest first — what a parent
            // aggregator swallows whole each cycle. The interval argument
            // is ignored: there is exactly one cumulative view.
            Some(tenant) => {
                let guard = state();
                let candidates = guard.top_k(tenant, usize::MAX);
                Response::Profile(ProfileData {
                    interval_index: guard.epoch,
                    interval_len: 0,
                    threshold: 0.0,
                    candidates,
                })
            }
            None => read_only_attach_error(),
        },
        Request::Stats => {
            let now = inner.cycles.load(Ordering::SeqCst);
            let guard = state();
            let mut text = format!("epoch {}\n", guard.epoch);
            for tenant in guard.tenant_names() {
                text.push_str(&format!(
                    "tenant {tenant} events {}\n",
                    guard.tenant_events(&tenant)
                ));
            }
            drop(guard);
            text.push_str(&format!("cycles {now}\n"));
            for up in &inner.upstreams {
                let health = up.status.health(now);
                let last_success = if health.last_success_epoch == NEVER {
                    "never".to_string()
                } else {
                    health.last_success_epoch.to_string()
                };
                text.push_str(&format!(
                    "upstream {} healthy {} phase {} staleness_cycles {} \
                     last_success_epoch {} consecutive_failures {}\n",
                    health.addr,
                    u8::from(health.healthy),
                    health.phase.name(),
                    health.staleness_cycles,
                    last_success,
                    health.consecutive_failures,
                ));
            }
            Response::Stats(text)
        }
        Request::Metrics => Response::Metrics(inner.telemetry.registry.render_prometheus()),
        Request::Traces => Response::Traces(inner.telemetry.tracer.render_jsonl()),
        Request::Shutdown => {
            inner.shutdown.store(true, Ordering::SeqCst);
            Response::Done
        }
        Request::Open { .. }
        | Request::Ingest { .. }
        | Request::IngestSeq { .. }
        | Request::Resume
        | Request::Cut
        | Request::CloseSession => read_only(),
    }
}

fn read_only_attach_error() -> Response {
    Response::Error {
        code: ErrorCode::BadRequest,
        message: "attach to a tenant first".into(),
    }
}

/// The [`SessionInfo`] a tenant's cumulative view exports: named
/// `<tenant>/__cumulative__`, with the pull epoch in `intervals` so
/// downstream consumers can watch progress.
fn tenant_info(state: &AggState, tenant: &str) -> SessionInfo {
    SessionInfo {
        name: format!("{tenant}{CUMULATIVE_SUFFIX}"),
        config: cumulative_config(),
        events: state.tenant_events(tenant),
        intervals: state.epoch,
    }
}
