//! # mhp-agg — fleet-scale hierarchical aggregation for the profiler
//!
//! One `mhp-server` answers "what are the hottest `<pc, value>` tuples of
//! *this* process?". A fleet needs the same answer across hundreds of
//! servers and many tenants sharing them. This crate adds that tier: an
//! **aggregator node** that
//!
//! * attaches to many `mhp-server`s over the existing framed TCP
//!   protocol and periodically pulls every completed interval profile of
//!   every session, exactly once each (per-session cursors survive
//!   crashes via checkpoints);
//! * folds the pulls into a per-tenant cumulative count table — the
//!   tenant of a session is its name's prefix before the first `/`
//!   (`acme/web-42` → `acme`) — and answers per-tenant global top-k with
//!   the same deterministic ranking
//!   ([`top_k_by_count`](mhp_core::top_k_by_count)) every other layer
//!   uses, so two aggregators fed the same profiles return
//!   byte-identical answers;
//! * **stacks**: an aggregator serves the same query protocol it pulls,
//!   exporting each tenant's table as a `<tenant>/__cumulative__`
//!   session. A parent aggregator recognizes the suffix and re-fetches
//!   the table whole each cycle (replace semantics), so a two-level
//!   tree never double-counts;
//! * checkpoints the whole merge tree (tables + cursors, CRC-guarded,
//!   byte-deterministic) after every pull cycle, so a kill -9'd
//!   aggregator restores and converges on exactly the answer the
//!   uninterrupted one would have given.
//!
//! The `mhp-agg` binary serves (`serve`), queries (`query`), and computes
//! offline reference answers (`offline`) for end-to-end verification.
//!
//! ## Quick example
//!
//! ```no_run
//! use mhp_agg::{AggConfig, Aggregator};
//!
//! # fn main() -> Result<(), mhp_server::ServerError> {
//! let agg = Aggregator::bind(
//!     "127.0.0.1:0",
//!     AggConfig {
//!         upstreams: vec!["127.0.0.1:7070".into(), "127.0.0.1:7071".into()],
//!         ..AggConfig::default()
//!     },
//! )?;
//! let hot = agg.top_k("acme", 10); // fleet-wide, per tenant
//! # drop(hot);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod node;
pub mod state;
pub mod supervisor;

pub use node::{AggConfig, Aggregator, RunningAggregator};
pub use state::{AggState, TenantTable, CUMULATIVE_SUFFIX};
pub use supervisor::{CircuitBreaker, PullDecision, PullPolicy, UpstreamStatus};
