//! `mhp-agg` — serve, query, and offline-verify the aggregation tier.
//!
//! ```text
//! mhp-agg serve --addr 127.0.0.1:7170 --upstream HOST:PORT [--upstream ...]
//!               [--pull-interval-ms 200] [--state FILE]
//!               [--connect-timeout-ms 250] [--read-timeout-ms 250]
//!               [--pull-budget-ms 2000] [--breaker-threshold 3]
//!               [--quarantine-ms 1000] [--max-query-conns 64]
//!               [--fault-plan SPEC] [--fault-seed N]
//! mhp-agg query --addr A --op topk --tenant T [--n N]
//! mhp-agg query --addr A --op sessions|stats|metrics
//! mhp-agg query --addr A --op shutdown
//! mhp-agg offline --member NAME=BENCH:KIND:SEED [--member ...] [--events N]
//!                 [--profiler P] [--shards N] [--interval-len N]
//!                 [--threshold F] [--seed S] [--n N]
//! ```
//!
//! `offline` is the reference path: it runs the same engines on the same
//! synthetic streams in-process, folds completed intervals per tenant
//! exactly as the aggregation tier does, and prints per-tenant top-k in
//! the same format `query --op topk` uses — so a fleet smoke test can
//! diff the two outputs byte for byte.

use std::process::ExitCode;
use std::time::Duration;

use mhp_agg::{AggConfig, AggState, Aggregator, PullPolicy};
use mhp_core::Candidate;
use mhp_faults::FaultPlan;
use mhp_pipeline::{EngineConfig, ShardedEngine};
use mhp_server::{tenant_of, Client, ProfilerKind, ServerError, SessionConfig};
use mhp_trace::StreamSpec;

const USAGE: &str = "\
usage: mhp-agg <command> [options]

commands:
  serve    --addr A --upstream HOST:PORT [--upstream ...]
           [--pull-interval-ms 200] [--state FILE]
           [--connect-timeout-ms 250] [--read-timeout-ms 250]
           [--pull-budget-ms 2000] [--breaker-threshold 3]
           [--quarantine-ms 1000] [--max-query-conns 64]
           [--fault-plan SPEC] [--fault-seed N]
  query    --addr A --op OP [--tenant T] [--n N]
           (OP: topk, snapshot, sessions, stats, metrics, shutdown;
            topk and snapshot need --tenant)
  offline  --member NAME=BENCH:KIND:SEED [--member ...] [--events 100000]
           [--profiler multi-hash] [--shards 1] [--interval-len 10000]
           [--threshold 0.01] [--seed 51966] [--n 10]

upstreams may be mhp-servers or other mhp-agg nodes; sessions named
<tenant>/__cumulative__ are child-aggregator exports and are merged with
replace semantics. offline members are session-name=stream pairs, e.g.
acme/web=gcc:value:42.";

fn fail(msg: &str) -> ServerError {
    ServerError::protocol_owned(msg.to_string())
}

fn print_top_k(tenant: &str, candidates: &[Candidate]) {
    println!("tenant {tenant}");
    for c in candidates {
        println!(
            "  {:#x}:{} = {}",
            c.tuple.pc().as_u64(),
            c.tuple.value().as_u64(),
            c.count
        );
    }
}

/// Pull-one-value flag parser; `--upstream` and `--member` repeat.
struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, ServerError> {
        let mut pairs = Vec::new();
        let mut iter = raw.iter();
        while let Some(flag) = iter.next() {
            let Some(name) = flag.strip_prefix("--") else {
                return Err(fail(&format!("unexpected argument {flag:?}")));
            };
            let Some(value) = iter.next() else {
                return Err(fail(&format!("--{name} needs a value")));
            };
            pairs.push((name.to_string(), value.clone()));
        }
        Ok(Args { pairs })
    }

    fn take(&mut self, name: &str) -> Option<String> {
        let idx = self.pairs.iter().position(|(n, _)| n == name)?;
        Some(self.pairs.remove(idx).1)
    }

    fn take_all(&mut self, name: &str) -> Vec<String> {
        let mut values = Vec::new();
        while let Some(value) = self.take(name) {
            values.push(value);
        }
        values
    }

    fn take_parsed<T: std::str::FromStr>(
        &mut self,
        name: &str,
        default: T,
    ) -> Result<T, ServerError> {
        match self.take(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| fail(&format!("invalid value {raw:?} for --{name}"))),
        }
    }

    fn require(&mut self, name: &str) -> Result<String, ServerError> {
        self.take(name)
            .ok_or_else(|| fail(&format!("--{name} is required")))
    }

    fn finish(self) -> Result<(), ServerError> {
        match self.pairs.first() {
            None => Ok(()),
            Some((name, _)) => Err(fail(&format!("unknown option --{name}"))),
        }
    }
}

fn cmd_serve(mut args: Args) -> Result<(), ServerError> {
    let addr = args.require("addr")?;
    let upstreams = args.take_all("upstream");
    if upstreams.is_empty() {
        return Err(fail("serve needs at least one --upstream"));
    }
    let pull_ms: u64 = args.take_parsed("pull-interval-ms", 200)?;
    let state_path = args.take("state").map(Into::into);
    let defaults = PullPolicy::default();
    let policy = PullPolicy {
        connect_timeout: Duration::from_millis(args.take_parsed(
            "connect-timeout-ms",
            defaults.connect_timeout.as_millis() as u64,
        )?),
        read_timeout: Duration::from_millis(
            args.take_parsed("read-timeout-ms", defaults.read_timeout.as_millis() as u64)?,
        ),
        pull_budget: Duration::from_millis(
            args.take_parsed("pull-budget-ms", defaults.pull_budget.as_millis() as u64)?,
        ),
        breaker_threshold: args.take_parsed("breaker-threshold", defaults.breaker_threshold)?,
        quarantine: Duration::from_millis(
            args.take_parsed("quarantine-ms", defaults.quarantine.as_millis() as u64)?,
        ),
        ..defaults
    };
    let max_query_conns: usize =
        args.take_parsed("max-query-conns", AggConfig::default().max_query_conns)?;
    let fault_plan = args.take("fault-plan");
    let fault_seed: u64 = args.take_parsed("fault-seed", 0)?;
    args.finish()?;

    let mut config = AggConfig {
        upstreams,
        pull_interval: Duration::from_millis(pull_ms.max(1)),
        state_path,
        policy,
        max_query_conns,
        ..AggConfig::default()
    };
    if let Some(spec) = fault_plan {
        let plan = FaultPlan::parse(&spec, fault_seed).map_err(|e| fail(&e.to_string()))?;
        config.fault_hook = Some(plan.arm());
    }
    let agg = Aggregator::bind(&addr, config)?;
    // Smoke scripts scrape this exact line for the resolved port.
    println!("aggregating on {}", agg.local_addr());
    if agg.epoch() > 0 {
        println!("restored checkpoint at epoch {}", agg.epoch());
    }
    agg.wait();
    println!("shut down cleanly");
    Ok(())
}

fn cmd_query(mut args: Args) -> Result<(), ServerError> {
    let addr = args.require("addr")?;
    let op = args.require("op")?;
    let tenant = args.take("tenant");
    let n: u32 = args.take_parsed("n", 10)?;
    args.finish()?;

    let mut client = Client::connect(addr.as_str())?;
    let need_tenant = || tenant.clone().ok_or_else(|| fail("--tenant is required"));
    match op.as_str() {
        "topk" => {
            let tenant = need_tenant()?;
            client.attach(&tenant)?;
            print_top_k(&tenant, &client.top_k(n)?);
        }
        "snapshot" => {
            let tenant = need_tenant()?;
            client.attach(&tenant)?;
            match client.snapshot(u64::MAX)? {
                Some(profile) => print_top_k(&tenant, &profile.candidates),
                None => println!("tenant {tenant}: empty"),
            }
        }
        "sessions" => {
            let (sessions, upstreams) = client.list_sessions_with_health()?;
            for info in sessions {
                println!(
                    "{} events={} epoch={}",
                    info.name, info.events, info.intervals
                );
            }
            // Aggregators append their per-upstream supervisor health to
            // the listing; leaf servers send none.
            for health in upstreams {
                println!(
                    "upstream {} healthy={} phase={} staleness_cycles={} consecutive_failures={}",
                    health.addr,
                    u8::from(health.healthy),
                    health.phase.name(),
                    health.staleness_cycles,
                    health.consecutive_failures
                );
            }
        }
        "stats" => print!("{}", client.stats()?),
        "metrics" => print!("{}", client.metrics()?),
        "shutdown" => {
            client.shutdown_server()?;
            println!("shutdown requested");
        }
        other => return Err(fail(&format!("unknown query op {other:?}"))),
    }
    Ok(())
}

/// The offline reference: per member session, run the engine in-process
/// on its stream, fold the completed intervals into the owning tenant's
/// table, and print every tenant's top-k — what the aggregation tier
/// must converge on, computed without a single network hop.
fn cmd_offline(mut args: Args) -> Result<(), ServerError> {
    let members = args.take_all("member");
    if members.is_empty() {
        return Err(fail("offline needs at least one --member"));
    }
    let events: usize = args.take_parsed("events", 100_000)?;
    let kind: ProfilerKind = match args.take("profiler") {
        None => ProfilerKind::MultiHash,
        Some(raw) => raw.parse()?,
    };
    let config = SessionConfig {
        kind,
        shards: args.take_parsed("shards", 1u16)?,
        interval_len: args.take_parsed("interval-len", 10_000u64)?,
        threshold: args.take_parsed("threshold", 0.01f64)?,
        seed: args.take_parsed("seed", 51_966u64)?,
    };
    let n: usize = args.take_parsed("n", 10)?;
    args.finish()?;

    let mut state = AggState::new();
    for member in &members {
        let (name, stream) = member
            .split_once('=')
            .ok_or_else(|| fail(&format!("--member {member:?} is not NAME=BENCH:KIND:SEED")))?;
        let spec: StreamSpec = stream
            .parse()
            .map_err(|e| fail(&format!("invalid stream {stream:?}: {e}")))?;
        let interval = mhp_core::IntervalConfig::new(config.interval_len, config.threshold)
            .map_err(mhp_pipeline::Error::Config)?;
        let engine = ShardedEngine::new(
            EngineConfig::new(config.shards as usize),
            interval,
            config.kind.spec(),
            config.seed,
        );
        let report = engine.run(spec.events().take(events))?;
        let tenant = tenant_of(name);
        for profile in &report.profiles {
            state.add_leaf_profile(tenant, profile.candidates());
        }
    }
    for tenant in state.tenant_names() {
        print_top_k(&tenant, &state.top_k(&tenant, n));
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(&raw[1..]) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("mhp-agg: {e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "serve" => cmd_serve(args),
        "query" => cmd_query(args),
        "offline" => cmd_offline(args),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mhp-agg: {e}");
            ExitCode::FAILURE
        }
    }
}
