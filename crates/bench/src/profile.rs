//! The `mhp-bench profile` runner: re-invokes the hotpath workload under
//! a sampling profiler (`perf record` or `samply record`), so "where do
//! the dispatch-plane cycles go" is one command instead of a hand-built
//! incantation.
//!
//! The subcommand is a thin wrapper: it resolves which profiler is
//! installed, builds the exact argv (a pure function, so tests cover the
//! command shape without needing the tools), and execs it around
//! `mhp-bench hotpath` with the workload flags passed through. Missing
//! tools fail with an actionable message instead of a spawn error.

use std::process::Command;

use crate::hotpath::HotpathOptions;

/// Which sampling profiler to wrap the workload in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileTool {
    /// Probe for `perf` first, then `samply`; error if neither exists.
    Auto,
    /// Linux `perf record -g` (output: a `perf.data` for `perf report`).
    Perf,
    /// `samply record --save-only` (output: a Firefox Profiler JSON).
    Samply,
}

impl ProfileTool {
    /// Parses the `--tool` flag value.
    pub fn parse(raw: &str) -> Option<ProfileTool> {
        match raw {
            "auto" => Some(ProfileTool::Auto),
            "perf" => Some(ProfileTool::Perf),
            "samply" => Some(ProfileTool::Samply),
            _ => None,
        }
    }
}

/// Options for one profiling run.
#[derive(Debug, Clone)]
pub struct ProfileOptions {
    /// Profiler to use (or probe for).
    pub tool: ProfileTool,
    /// Profiler output path (`perf.data` / `profile.json` by default,
    /// picked per tool when empty).
    pub out: Option<String>,
    /// The hotpath workload to run under the profiler.
    pub hotpath: HotpathOptions,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            tool: ProfileTool::Auto,
            out: None,
            hotpath: HotpathOptions::default(),
        }
    }
}

/// A concrete, installed profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedTool {
    /// `perf` was selected.
    Perf,
    /// `samply` was selected.
    Samply,
}

impl ResolvedTool {
    /// The default output path for this tool's native format.
    pub fn default_out(self) -> &'static str {
        match self {
            ResolvedTool::Perf => "perf.data",
            ResolvedTool::Samply => "profile.json",
        }
    }
}

/// Picks the profiler to run, probing availability through `installed`
/// (a closure, so tests can simulate any install state).
///
/// # Errors
///
/// A human-actionable message naming the missing tool(s) and how to get
/// them.
pub fn resolve_tool(
    tool: ProfileTool,
    installed: impl Fn(&str) -> bool,
) -> Result<ResolvedTool, String> {
    match tool {
        ProfileTool::Perf => {
            if installed("perf") {
                Ok(ResolvedTool::Perf)
            } else {
                Err("perf is not installed (linux-tools package provides it)".to_string())
            }
        }
        ProfileTool::Samply => {
            if installed("samply") {
                Ok(ResolvedTool::Samply)
            } else {
                Err("samply is not installed (`cargo install samply` provides it)".to_string())
            }
        }
        ProfileTool::Auto => {
            if installed("perf") {
                Ok(ResolvedTool::Perf)
            } else if installed("samply") {
                Ok(ResolvedTool::Samply)
            } else {
                Err("no profiler found: install perf (linux-tools) or samply \
                     (`cargo install samply`), or pass --tool explicitly"
                    .to_string())
            }
        }
    }
}

/// The child workload argv: the current binary's `hotpath` subcommand
/// with the workload knobs passed through, writing its JSON out of the
/// way of the committed reference run.
pub fn workload_args(opts: &HotpathOptions) -> Vec<String> {
    vec![
        "hotpath".to_string(),
        "--events".to_string(),
        opts.events.to_string(),
        "--seed".to_string(),
        opts.seed.to_string(),
        "--batch".to_string(),
        opts.batch.to_string(),
        "--samples".to_string(),
        opts.samples.to_string(),
        "--out".to_string(),
        "BENCH_hotpath_profile.json".to_string(),
    ]
}

/// Builds the full profiler argv around the workload: a pure function of
/// its inputs, so the command shape is unit-testable without the tools
/// installed.
pub fn command_line(tool: ResolvedTool, out: &str, exe: &str, workload: &[String]) -> Vec<String> {
    let mut argv: Vec<String> = match tool {
        ResolvedTool::Perf => vec![
            "perf".to_string(),
            "record".to_string(),
            // Call graphs make the dispatch plane legible in `perf report`.
            "-g".to_string(),
            "--output".to_string(),
            out.to_string(),
            "--".to_string(),
        ],
        ResolvedTool::Samply => vec![
            "samply".to_string(),
            "record".to_string(),
            // Save the profile instead of launching the viewer: CI boxes
            // and ssh sessions have no browser to hand the result to.
            "--save-only".to_string(),
            "--output".to_string(),
            out.to_string(),
            "--".to_string(),
        ],
    };
    argv.push(exe.to_string());
    argv.extend(workload.iter().cloned());
    argv
}

/// True if `tool --version` (or `--help` for perf, whose `--version`
/// behaves) can be spawned at all.
fn tool_installed(name: &str) -> bool {
    Command::new(name)
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

/// Resolves the profiler, rebuilds this binary's invocation around it,
/// and runs the wrapped workload to completion.
///
/// # Errors
///
/// Missing tools (see [`resolve_tool`]), spawn failures, and non-zero
/// profiler exits, all as printable strings.
pub fn run(opts: &ProfileOptions) -> Result<String, String> {
    let tool = resolve_tool(opts.tool, tool_installed)?;
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| tool.default_out().to_string());
    let exe = std::env::current_exe()
        .map_err(|e| format!("cannot locate the current executable: {e}"))?;
    let argv = command_line(
        tool,
        &out,
        &exe.display().to_string(),
        &workload_args(&opts.hotpath),
    );
    eprintln!("profile: {}", argv.join(" "));
    let status = Command::new(&argv[0])
        .args(&argv[1..])
        .status()
        .map_err(|e| format!("failed to spawn {}: {e}", argv[0]))?;
    if !status.success() {
        return Err(format!("{} exited with {status}", argv[0]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_prefers_perf_then_samply_then_fails_actionably() {
        assert_eq!(
            resolve_tool(ProfileTool::Auto, |_| true),
            Ok(ResolvedTool::Perf)
        );
        assert_eq!(
            resolve_tool(ProfileTool::Auto, |name| name == "samply"),
            Ok(ResolvedTool::Samply)
        );
        let err = resolve_tool(ProfileTool::Auto, |_| false).unwrap_err();
        assert!(err.contains("perf") && err.contains("samply"), "{err}");
    }

    #[test]
    fn explicit_tool_choices_fail_when_missing() {
        assert_eq!(
            resolve_tool(ProfileTool::Perf, |name| name == "perf"),
            Ok(ResolvedTool::Perf)
        );
        assert!(resolve_tool(ProfileTool::Perf, |_| false)
            .unwrap_err()
            .contains("perf"));
        assert!(resolve_tool(ProfileTool::Samply, |_| false)
            .unwrap_err()
            .contains("cargo install samply"));
    }

    #[test]
    fn perf_command_wraps_the_workload_with_call_graphs() {
        let workload = workload_args(&HotpathOptions::default());
        let argv = command_line(ResolvedTool::Perf, "perf.data", "/bin/mhp-bench", &workload);
        assert_eq!(
            &argv[..6],
            &["perf", "record", "-g", "--output", "perf.data", "--"]
        );
        assert_eq!(argv[6], "/bin/mhp-bench");
        assert_eq!(argv[7], "hotpath");
        let events_at = argv.iter().position(|a| a == "--events").unwrap();
        assert_eq!(argv[events_at + 1], "2000000");
    }

    #[test]
    fn samply_command_saves_instead_of_launching_a_viewer() {
        let workload = workload_args(&HotpathOptions::default());
        let argv = command_line(
            ResolvedTool::Samply,
            "profile.json",
            "/bin/mhp-bench",
            &workload,
        );
        assert_eq!(
            &argv[..6],
            &[
                "samply",
                "record",
                "--save-only",
                "--output",
                "profile.json",
                "--"
            ]
        );
        assert!(argv.contains(&"hotpath".to_string()));
    }

    #[test]
    fn workload_json_stays_clear_of_the_committed_reference() {
        let workload = workload_args(&HotpathOptions::default());
        let out_at = workload.iter().position(|a| a == "--out").unwrap();
        assert_eq!(workload[out_at + 1], "BENCH_hotpath_profile.json");
    }

    #[test]
    fn tool_flag_parses_every_spelling() {
        assert_eq!(ProfileTool::parse("auto"), Some(ProfileTool::Auto));
        assert_eq!(ProfileTool::parse("perf"), Some(ProfileTool::Perf));
        assert_eq!(ProfileTool::parse("samply"), Some(ProfileTool::Samply));
        assert_eq!(ProfileTool::parse("callgrind"), None);
    }
}
