//! The `mhp-bench fleet` runner: convergence of the aggregation tier
//! under injected faults.
//!
//! Each row binds a fresh fleet — N in-process servers with a few
//! multi-tenant sessions each, one aggregator pulling all of them — at a
//! fixed injected-fault rate (`conn-drop%R`: that percentage of pull
//! attempts drop their connection). The row then measures **convergence
//! lag**: aggregator clock cycles until the per-tenant aggregate equals
//! the offline merge of the same streams, byte for byte. Fault rows show
//! how gracefully convergence degrades; the fault-free row doubles as a
//! regression gate (`clean_ok`) — a clean fleet that needs more than the
//! budgeted cycles to converge means the pull plane itself regressed.
//!
//! Output is the same hand-rolled stable-key JSON as the other benches
//! (`BENCH_fleet.json` at the repo root, by convention).

use std::time::{Duration, Instant};

use mhp_agg::{AggConfig, AggState, Aggregator, PullPolicy};
use mhp_faults::FaultPlan;
use mhp_pipeline::{EngineConfig, ShardedEngine};
use mhp_server::{Client, ProfilerKind, Server, ServerConfig, SessionConfig};
use mhp_trace::{Benchmark, StreamKind, StreamSpec};

/// Knobs for a fleet-convergence run.
#[derive(Debug, Clone)]
pub struct FleetBenchOptions {
    /// Fleet sizes (server counts) to run, one row group each.
    pub servers: Vec<usize>,
    /// Sessions fed into each server (tenants stripe across servers, so
    /// every tenant's answer needs every server pulled).
    pub sessions_per_server: usize,
    /// Injected pull-fault rates, percent of pull attempts dropped.
    /// `0` is the clean row the regression bound applies to.
    pub fault_rates: Vec<u8>,
    /// Events streamed per session before the aggregator starts.
    pub events_per_session: usize,
    /// Profiling interval length for every session.
    pub interval_len: u64,
    /// Aggregator pull interval — also the clock-cycle length, so
    /// convergence lag in cycles is comparable across machines.
    pub pull_interval: Duration,
    /// Wall-clock cap per row before it is declared non-converged.
    pub deadline: Duration,
    /// Cycle budget the fault-free rows must converge within.
    pub clean_budget_cycles: u64,
}

impl Default for FleetBenchOptions {
    fn default() -> Self {
        FleetBenchOptions {
            servers: vec![2, 4],
            sessions_per_server: 2,
            fault_rates: vec![0, 25, 50],
            events_per_session: 20_000,
            interval_len: 5_000,
            pull_interval: Duration::from_millis(25),
            deadline: Duration::from_secs(60),
            clean_budget_cycles: 200,
        }
    }
}

/// One (fleet size, fault rate) measurement.
#[derive(Debug, Clone)]
pub struct FleetBenchRow {
    /// Servers in the fleet.
    pub servers: usize,
    /// Total sessions across the fleet.
    pub sessions: usize,
    /// Injected pull-connection-drop rate, percent.
    pub fault_rate_pct: u8,
    /// Whether the aggregate reached the offline merge before the
    /// deadline.
    pub converged: bool,
    /// Aggregator clock cycles at convergence (deadline cycles if not).
    pub convergence_cycles: u64,
    /// Wall-clock seconds to convergence (deadline if not).
    pub convergence_secs: f64,
    /// Worst per-upstream staleness, in cycles, observed at convergence.
    pub max_staleness_cycles: u64,
    /// Pull attempts that failed across the row (injected and real).
    pub pull_errors: u64,
    /// Upstream quarantines tripped across the row.
    pub quarantines: u64,
}

/// The full result set of one `mhp-bench fleet` run.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// Options the run was configured with.
    pub options: FleetBenchOptions,
    /// One row per (fleet size, fault rate), in run order.
    pub rows: Vec<FleetBenchRow>,
}

/// Sums every sample of a (possibly labeled) counter family in a
/// Prometheus exposition.
fn metric_sum(metrics: &str, family: &str) -> u64 {
    metrics
        .lines()
        .filter(|line| {
            line.starts_with(family)
                && matches!(line.as_bytes().get(family.len()), Some(b' ') | Some(b'{'))
        })
        .filter_map(|line| line.rsplit(' ').next()?.parse::<u64>().ok())
        .sum()
}

fn bench_one(servers: usize, fault_rate: u8, opts: &FleetBenchOptions) -> FleetBenchRow {
    let fleet: Vec<_> = (0..servers)
        .map(|_| Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind fleet server"))
        .collect();

    // Tenants stripe across the fleet: server i hosts one session of
    // every tenant, so no tenant's answer is complete until every server
    // has been pulled — the aggregation actually has to work.
    let mut expected = AggState::new();
    let interval = mhp_core::IntervalConfig::new(opts.interval_len, 0.01).expect("interval config");
    for (i, server) in fleet.iter().enumerate() {
        for j in 0..opts.sessions_per_server {
            let seed = 1 + (i * opts.sessions_per_server + j) as u64;
            let tenant = format!("ten{j}");
            let name = format!("{tenant}/srv{i}");
            let events: Vec<_> = StreamSpec::new(Benchmark::Gcc, StreamKind::Value, seed)
                .events()
                .take(opts.events_per_session)
                .collect();
            let mut client = Client::connect(server.local_addr()).expect("feed connect");
            client
                .open_session(
                    &name,
                    SessionConfig {
                        interval_len: opts.interval_len,
                        seed,
                        ..SessionConfig::default_multi_hash()
                    },
                )
                .expect("open session");
            for chunk in events.chunks(4_096) {
                client.ingest(chunk).expect("ingest");
            }
            let engine = ShardedEngine::new(
                EngineConfig::new(1),
                interval,
                ProfilerKind::MultiHash.spec(),
                seed,
            );
            let report = engine.run(events.iter().copied()).expect("offline engine");
            for profile in &report.profiles {
                expected.add_leaf_profile(&tenant, profile.candidates());
            }
        }
    }

    let fault_hook = (fault_rate > 0).then(|| {
        FaultPlan::parse(&format!("conn-drop%{fault_rate}"), 0xF1EE7 ^ servers as u64)
            .expect("fault plan")
            .arm()
    });
    let agg = Aggregator::bind(
        "127.0.0.1:0",
        AggConfig {
            upstreams: fleet.iter().map(|s| s.local_addr().to_string()).collect(),
            pull_interval: opts.pull_interval,
            policy: PullPolicy {
                connect_timeout: Duration::from_millis(200),
                read_timeout: Duration::from_millis(200),
                ..PullPolicy::default()
            },
            fault_hook,
            ..AggConfig::default()
        },
    )
    .expect("bind aggregator");

    let targets: Vec<(String, Vec<mhp_core::Candidate>)> = (0..opts.sessions_per_server)
        .map(|j| {
            let tenant = format!("ten{j}");
            let want = expected.top_k(&tenant, 50);
            (tenant, want)
        })
        .collect();
    let started = Instant::now();
    let end = started + opts.deadline;
    let mut converged = false;
    while Instant::now() < end {
        if targets
            .iter()
            .all(|(tenant, want)| agg.top_k(tenant, 50) == *want)
        {
            converged = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let convergence_cycles = agg.cycles();
    let convergence_secs = started.elapsed().as_secs_f64();
    let max_staleness_cycles = agg
        .upstream_health()
        .iter()
        .map(|h| h.staleness_cycles)
        .max()
        .unwrap_or(0);
    let metrics = agg.metrics();
    let row = FleetBenchRow {
        servers,
        sessions: servers * opts.sessions_per_server,
        fault_rate_pct: fault_rate,
        converged,
        convergence_cycles,
        convergence_secs,
        max_staleness_cycles,
        pull_errors: metric_sum(&metrics, "agg_pull_errors_total"),
        quarantines: metric_sum(&metrics, "agg_upstream_quarantines_total"),
    };

    agg.join();
    for server in fleet {
        let mut probe = Client::connect(server.local_addr()).expect("probe connect");
        probe.shutdown_server().expect("shutdown");
        server.join();
    }
    row
}

/// Runs every configured (fleet size, fault rate) row and collects the
/// table.
pub fn run(opts: &FleetBenchOptions) -> FleetBenchReport {
    let mut rows = Vec::new();
    for &servers in &opts.servers {
        for &rate in &opts.fault_rates {
            rows.push(bench_one(servers, rate, opts));
        }
    }
    FleetBenchReport {
        options: opts.clone(),
        rows,
    }
}

impl FleetBenchReport {
    /// The clean-run no-regression bound: every fault-free row converged,
    /// within the configured cycle budget.
    pub fn clean_ok(&self) -> bool {
        self.rows
            .iter()
            .filter(|r| r.fault_rate_pct == 0)
            .all(|r| r.converged && r.convergence_cycles <= self.options.clean_budget_cycles)
    }

    /// Stable-key JSON document, matching the other `BENCH_*.json` files.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"fleet\",\n");
        out.push_str(&format!(
            "  \"sessions_per_server\": {},\n",
            self.options.sessions_per_server
        ));
        out.push_str(&format!(
            "  \"events_per_session\": {},\n",
            self.options.events_per_session
        ));
        out.push_str(&format!(
            "  \"pull_interval_ms\": {},\n",
            self.options.pull_interval.as_millis()
        ));
        out.push_str(&format!(
            "  \"clean_budget_cycles\": {},\n",
            self.options.clean_budget_cycles
        ));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"servers\": {}, \"sessions\": {}, \"fault_rate_pct\": {}, \
                 \"converged\": {}, \"convergence_cycles\": {}, \
                 \"convergence_secs\": {:.3}, \"max_staleness_cycles\": {}, \
                 \"pull_errors\": {}, \"quarantines\": {}}}{}\n",
                r.servers,
                r.sessions,
                r.fault_rate_pct,
                r.converged,
                r.convergence_cycles,
                r.convergence_secs,
                r.max_staleness_cycles,
                r.pull_errors,
                r.quarantines,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable table for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "fleet convergence: {} session(s)/server x {} events, pull every {}ms\n",
            self.options.sessions_per_server,
            self.options.events_per_session,
            self.options.pull_interval.as_millis()
        ));
        out.push_str(&format!(
            "{:>7} {:>8} {:>7} {:>10} {:>9} {:>8} {:>10} {:>11} {:>11}\n",
            "servers",
            "sessions",
            "fault%",
            "converged",
            "cycles",
            "secs",
            "staleness",
            "pull_errors",
            "quarantines"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>7} {:>8} {:>7} {:>10} {:>9} {:>8.2} {:>10} {:>11} {:>11}\n",
                r.servers,
                r.sessions,
                r.fault_rate_pct,
                r.converged,
                r.convergence_cycles,
                r.convergence_secs,
                r.max_staleness_cycles,
                r.pull_errors,
                r.quarantines
            ));
        }
        out.push_str(&format!(
            "clean-run bound ({} cycles): {}\n",
            self.options.clean_budget_cycles,
            if self.clean_ok() { "PASS" } else { "FAIL" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_fleet_converges_clean_and_under_faults() {
        let opts = FleetBenchOptions {
            servers: vec![2],
            sessions_per_server: 1,
            fault_rates: vec![0, 50],
            events_per_session: 10_000,
            interval_len: 5_000,
            pull_interval: Duration::from_millis(25),
            deadline: Duration::from_secs(30),
            clean_budget_cycles: 1_000,
        };
        let report = run(&opts);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!(
                row.converged,
                "fault_rate {} never converged",
                row.fault_rate_pct
            );
            assert_eq!(row.sessions, 2);
        }
        assert!(report.clean_ok());
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"fleet\""));
        assert!(json.contains("\"fault_rate_pct\": 50"));
        assert!(json.contains("\"convergence_cycles\""));
        assert!(report.render().contains("clean-run bound"));
    }

    #[test]
    fn metric_sum_adds_labeled_series_and_ignores_prefix_collisions() {
        let text = "agg_pull_errors_total{upstream=\"a\"} 3\n\
                    agg_pull_errors_total{upstream=\"b\"} 4\n\
                    agg_pull_errors_total_other 100\n\
                    agg_pull_cycles_total 9\n";
        assert_eq!(metric_sum(text, "agg_pull_errors_total"), 7);
        assert_eq!(metric_sum(text, "agg_pull_cycles_total"), 9);
    }
}
