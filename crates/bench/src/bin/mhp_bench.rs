//! `mhp-bench` — perf-regression harness for the profiling hot path.
//!
//! ```text
//! mhp-bench hotpath [--events N] [--seed S] [--batch B] [--samples K] [--out PATH]
//! mhp-bench profile [--tool auto|perf|samply] [--events N] [--seed S]
//!                   [--batch B] [--samples K] [--out PATH]
//! mhp-bench server  [--sessions LIST] [--threaded-sessions LIST] [--active N]
//!                   [--events N] [--chunk B] [--out PATH]
//! mhp-bench fleet   [--servers LIST] [--sessions-per-server N]
//!                   [--fault-rates LIST] [--events N] [--out PATH]
//! ```
//!
//! `hotpath` pushes a deterministic workload through each profiler
//! per-event and batched (plus the sharded engine at 1/4/8 shards), prints
//! an events/sec table, and writes the numbers as JSON (default
//! `BENCH_hotpath.json`). A separate *untimed* introspection pass collects
//! sketch-health telemetry (promotions, evictions, occupancy — see
//! `mhp_core::SketchSnapshot`) for the same workload and writes it next to
//! the timing JSON as `*_telemetry.json`. CI runs a scaled-down pass as a
//! non-gating smoke check; the JSON at the repo root is the committed
//! reference run.

use std::process::ExitCode;

use mhp_bench::fleet_bench::{self, FleetBenchOptions};
use mhp_bench::hotpath::{self, HotpathOptions};
use mhp_bench::profile::{self, ProfileOptions, ProfileTool};
use mhp_bench::server_bench::{self, ServerBenchOptions};

fn print_usage() {
    eprintln!(
        "usage: mhp-bench hotpath [--events N] [--seed S] [--batch B] [--samples K] [--out PATH]\n\
         defaults: --events 2000000 --seed 51966 --batch 4096 --samples 3 --out BENCH_hotpath.json\n\
         \n\
         usage: mhp-bench profile [--tool auto|perf|samply] [--events N] [--seed S]\n\
         \x20                     [--batch B] [--samples K] [--out PATH]\n\
         (profile: run the hotpath workload under perf record / samply record;\n\
         \x20default --out is perf.data or profile.json, per tool)\n\
         \n\
         usage: mhp-bench server [--sessions LIST] [--threaded-sessions LIST]\n\
         \x20                    [--active N] [--events N] [--chunk B] [--out PATH]\n\
         defaults: --sessions 8,32,256,1024,2048 --threaded-sessions 8,32\n\
         \x20         --active 8 --events 100000 --chunk 4096 --out BENCH_server.json\n\
         (server: concurrent-session scaling, threaded front end vs --event-loop\n\
         \x20reactor, driven by the multiplexed load generator)\n\
         \n\
         usage: mhp-bench fleet [--servers LIST] [--sessions-per-server N]\n\
         \x20                   [--fault-rates LIST] [--events N]\n\
         \x20                   [--clean-budget-cycles N] [--out PATH]\n\
         defaults: --servers 2,4 --sessions-per-server 2 --fault-rates 0,25,50\n\
         \x20         --events 20000 --clean-budget-cycles 200 --out BENCH_fleet.json\n\
         (fleet: aggregation-tier convergence lag vs injected pull-fault rate;\n\
         \x20exits nonzero if a fault-free row misses the cycle budget)"
    );
}

fn run_profile(mut args: std::iter::Skip<std::env::Args>) -> ExitCode {
    let mut opts = ProfileOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tool" => match args.next().as_deref().and_then(ProfileTool::parse) {
                Some(tool) => opts.tool = tool,
                None => {
                    eprintln!("--tool needs one of: auto, perf, samply");
                    return ExitCode::FAILURE;
                }
            },
            "--events" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.hotpath.events = n,
                _ => {
                    eprintln!("--events needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => opts.hotpath.seed = s,
                _ => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--batch" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(b)) if b > 0 => opts.hotpath.batch = b,
                _ => {
                    eprintln!("--batch needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--samples" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(k)) if k > 0 => opts.hotpath.samples = k,
                _ => {
                    eprintln!("--samples needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => opts.out = Some(path),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    match profile::run(&opts) {
        Ok(out) => {
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("profile: {message}");
            ExitCode::FAILURE
        }
    }
}

fn parse_session_list(raw: &str) -> Option<Vec<usize>> {
    let list: Result<Vec<usize>, _> = raw.split(',').map(|s| s.trim().parse()).collect();
    list.ok().filter(|l| !l.is_empty())
}

fn run_server_bench(mut args: std::iter::Skip<std::env::Args>) -> ExitCode {
    let mut opts = ServerBenchOptions::default();
    let mut out_path = String::from("BENCH_server.json");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => match args.next().as_deref().and_then(parse_session_list) {
                Some(list) => opts.event_loop_sessions = list,
                None => {
                    eprintln!("--sessions needs a comma-separated list of counts");
                    return ExitCode::FAILURE;
                }
            },
            "--threaded-sessions" => match args.next().as_deref().and_then(parse_session_list) {
                Some(list) => opts.threaded_sessions = list,
                None => {
                    eprintln!("--threaded-sessions needs a comma-separated list of counts");
                    return ExitCode::FAILURE;
                }
            },
            "--active" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.active = n,
                _ => {
                    eprintln!("--active needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--events" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.events_per_session = n,
                _ => {
                    eprintln!("--events needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--chunk" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.chunk_events = n,
                _ => {
                    eprintln!("--chunk needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let report = server_bench::run(&opts);
    print!("{}", report.render());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn parse_rate_list(raw: &str) -> Option<Vec<u8>> {
    let list: Result<Vec<u8>, _> = raw.split(',').map(|s| s.trim().parse()).collect();
    list.ok()
        .filter(|l| !l.is_empty() && l.iter().all(|&r| r <= 100))
}

fn run_fleet_bench(mut args: std::iter::Skip<std::env::Args>) -> ExitCode {
    let mut opts = FleetBenchOptions::default();
    let mut out_path = String::from("BENCH_fleet.json");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--servers" => match args.next().as_deref().and_then(parse_session_list) {
                Some(list) => opts.servers = list,
                None => {
                    eprintln!("--servers needs a comma-separated list of counts");
                    return ExitCode::FAILURE;
                }
            },
            "--sessions-per-server" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.sessions_per_server = n,
                _ => {
                    eprintln!("--sessions-per-server needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--fault-rates" => match args.next().as_deref().and_then(parse_rate_list) {
                Some(list) => opts.fault_rates = list,
                None => {
                    eprintln!("--fault-rates needs a comma-separated list of 0..=100");
                    return ExitCode::FAILURE;
                }
            },
            "--events" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => opts.events_per_session = n,
                _ => {
                    eprintln!("--events needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--clean-budget-cycles" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.clean_budget_cycles = n,
                _ => {
                    eprintln!("--clean-budget-cycles needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let report = fleet_bench::run(&opts);
    print!("{}", report.render());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    if !report.clean_ok() {
        eprintln!(
            "fleet: clean-run regression — a fault-free row missed the {}-cycle budget",
            opts.clean_budget_cycles
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("hotpath") => {}
        Some("profile") => return run_profile(args),
        Some("server") => return run_server_bench(args),
        Some("fleet") => return run_fleet_bench(args),
        Some("--help") | Some("-h") => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("unknown subcommand {other:?}");
            print_usage();
            return ExitCode::FAILURE;
        }
    }

    let mut opts = HotpathOptions::default();
    let mut out_path = String::from("BENCH_hotpath.json");
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--events" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.events = n,
                _ => {
                    eprintln!("--events needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => opts.seed = s,
                _ => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--batch" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(b)) if b > 0 => opts.batch = b,
                _ => {
                    eprintln!("--batch needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--samples" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(k)) if k > 0 => opts.samples = k,
                _ => {
                    eprintln!("--samples needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(path) => out_path = path,
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other:?}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    let report = hotpath::run(&opts);
    print!("{}", report.render());
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");

    // Untimed introspection pass: sketch health for the same workload,
    // written next to the timing numbers.
    let telemetry_path = telemetry_path_for(&out_path);
    let health = hotpath::sketch_health(&opts);
    if let Err(e) = std::fs::write(&telemetry_path, hotpath::telemetry_json(&health)) {
        eprintln!("failed to write {telemetry_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {telemetry_path}");
    ExitCode::SUCCESS
}

/// `BENCH_hotpath.json` -> `BENCH_hotpath_telemetry.json` (and any other
/// path gets `_telemetry` spliced in before a trailing `.json`).
fn telemetry_path_for(out_path: &str) -> String {
    match out_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}_telemetry.json"),
        None => format!("{out_path}_telemetry"),
    }
}
