//! `repro` — regenerate the paper's figures.
//!
//! ```text
//! repro <figure>... [--events N] [--seed S] [--csv]
//! repro all [--events N]
//! repro list
//! ```
//!
//! Figures: fig4 fig5 fig6 fig7 fig9 fig10 fig11 fig12 fig13 fig14 area
//! overhead. Output goes to stdout; use `--csv` for machine-readable tables.

use std::process::ExitCode;

use mhp_bench::figures::{run_figure, ALL_FIGURES};
use mhp_bench::RunOptions;

fn print_usage() {
    eprintln!(
        "usage: repro <figure>... [--events N] [--seed S] [--warmup W] [--csv]\n\
         figures: {} overhead ablate adaptive apps samplers sweep stratified all\n\
         defaults: --events 2000000 --seed 51966 --warmup 1",
        ALL_FIGURES.join(" ")
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    let mut opts = RunOptions::default();
    let mut figures: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--events" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(n)) if n > 0 => opts.events = n,
                _ => {
                    eprintln!("--events needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match iter.next().map(|v| v.parse::<u64>()) {
                Some(Ok(s)) => opts.seed = s,
                _ => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--warmup" => match iter.next().map(|v| v.parse::<usize>()) {
                Some(Ok(w)) => opts.warmup_intervals = w,
                _ => {
                    eprintln!("--warmup needs a non-negative integer");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => opts.csv = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            "list" => {
                for id in ALL_FIGURES {
                    println!("{id}");
                }
                println!("overhead");
                println!("ablate");
                println!("adaptive");
                println!("apps");
                println!("samplers");
                println!("sweep");
                println!("stratified");
                return ExitCode::SUCCESS;
            }
            "all" => figures.extend(ALL_FIGURES.iter().map(|s| s.to_string())),
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
            other => {
                if ALL_FIGURES.contains(&other)
                    || [
                        "overhead",
                        "ablate",
                        "adaptive",
                        "apps",
                        "samplers",
                        "sweep",
                        "stratified",
                    ]
                    .contains(&other)
                {
                    figures.push(other.to_string());
                } else {
                    eprintln!("unknown figure {other:?}");
                    print_usage();
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if figures.is_empty() {
        eprintln!("no figure selected");
        print_usage();
        return ExitCode::FAILURE;
    }
    for id in figures {
        let figure = run_figure(&id, &opts);
        println!("{}", figure.render(opts.csv));
    }
    ExitCode::SUCCESS
}
