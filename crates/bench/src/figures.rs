//! One runner per data-bearing figure of the paper.
//!
//! Each runner returns a [`Figure`]: a set of titled text tables matching the
//! rows/series the paper plots. Figures 1, 2, 3 and 8 are architecture
//! diagrams and metric definitions — they are reproduced by the
//! implementation itself, not by a table.

use mhp_analysis::report::{fmt_f64, TextTable};
use mhp_analysis::{run_exact_stats, variation_at_percentiles, ErrorSeries};
use mhp_core::{theory, AreaModel, EventProfiler, IntervalConfig, Tuple};
use mhp_stratified::{StratifiedConfig, StratifiedSampler};
use mhp_trace::Benchmark;

use crate::harness::{best_multi_hash, design_space, ProfilerKind, RunOptions};

/// A reproduced figure: an id (`fig4` … `fig14`), a caption, and one or more
/// titled tables.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier accepted by the `repro` binary (e.g. `"fig12"`).
    pub id: &'static str,
    /// What the figure shows.
    pub title: String,
    /// Titled tables (the paper's left/right or top/bottom panels).
    pub blocks: Vec<(String, TextTable)>,
}

impl Figure {
    /// Renders the figure as text or CSV according to `csv`.
    pub fn render(&self, csv: bool) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        for (title, table) in &self.blocks {
            out.push_str(&format!("\n-- {title} --\n"));
            if csv {
                out.push_str(&table.to_csv());
            } else {
                out.push_str(&table.to_string());
            }
        }
        out
    }
}

fn value_events(bench: Benchmark, n: u64, seed: u64) -> impl Iterator<Item = Tuple> {
    bench.value_stream(seed).take(n as usize)
}

fn edge_events(bench: Benchmark, n: u64, seed: u64) -> impl Iterator<Item = Tuple> {
    bench.edge_stream(seed).take(n as usize)
}

/// The three interval lengths of Figures 4–6.
const LENGTHS: [u64; 3] = [10_000, 100_000, 1_000_000];

/// Figure 4: average number of distinct tuples per interval (value
/// profiling), for 10K / 100K / 1M interval lengths.
pub fn fig4(opts: &RunOptions) -> Figure {
    let mut table = TextTable::new(vec!["benchmark", "10K", "100K", "1M"]);
    for bench in Benchmark::ALL {
        let mut row = vec![bench.name().to_string()];
        for len in LENGTHS {
            let interval = IntervalConfig::new(len, 0.01).expect("valid interval");
            let n = opts.events_for(interval);
            let stats = run_exact_stats(interval, value_events(bench, n, opts.seed));
            row.push(fmt_f64(stats.mean_distinct(), 0));
        }
        table.add_row(row);
    }
    Figure {
        id: "fig4",
        title: "distinct tuples per interval (value profiling)".into(),
        blocks: vec![("mean distinct tuples".into(), table)],
    }
}

/// Figure 5: average number of candidate tuples per interval, for 1 % (top)
/// and 0.1 % (bottom) thresholds across the three interval lengths.
pub fn fig5(opts: &RunOptions) -> Figure {
    let mut blocks = Vec::new();
    for &threshold in &[0.01, 0.001] {
        let mut table = TextTable::new(vec!["benchmark", "10K", "100K", "1M"]);
        for bench in Benchmark::ALL {
            let mut row = vec![bench.name().to_string()];
            for len in LENGTHS {
                let interval = IntervalConfig::new(len, threshold).expect("valid interval");
                let n = opts.events_for(interval);
                let stats = run_exact_stats(interval, value_events(bench, n, opts.seed));
                row.push(fmt_f64(stats.mean_candidates(), 1));
            }
            table.add_row(row);
        }
        blocks.push((format!("threshold {}%", threshold * 100.0), table));
    }
    Figure {
        id: "fig5",
        title: "candidate tuples per interval (value profiling)".into(),
        blocks,
    }
}

/// Figure 6: candidate variation between consecutive intervals, as the
/// variation not exceeded at fixed percentiles of execution; 10K/1 % and
/// 1M/0.1 % configurations.
pub fn fig6(opts: &RunOptions) -> Figure {
    let percentiles = [10.0, 25.0, 50.0, 75.0, 90.0];
    let mut blocks = Vec::new();
    for (interval, label) in [
        (IntervalConfig::short(), "10K events, 1% threshold"),
        (IntervalConfig::long(), "1M events, 0.1% threshold"),
    ] {
        let mut table = TextTable::new(vec![
            "benchmark",
            "p10 %var",
            "p25 %var",
            "p50 %var",
            "p75 %var",
            "p90 %var",
        ]);
        for bench in Benchmark::ALL {
            // Variation needs many intervals; give the long config extra room.
            let n = opts.events_for(interval).max(interval.interval_len() * 8);
            let stats = run_exact_stats(interval, value_events(bench, n, opts.seed));
            let vars = variation_at_percentiles(stats.variations(), &percentiles);
            let mut row = vec![bench.name().to_string()];
            row.extend(vars.into_iter().map(|v| fmt_f64(v, 1)));
            table.add_row(row);
        }
        blocks.push((label.to_string(), table));
    }
    Figure {
        id: "fig6",
        title: "candidate variation between consecutive intervals".into(),
        blocks,
    }
}

fn breakdown_row(label: &str, series: &ErrorSeries) -> Vec<String> {
    let b = series.mean_breakdown();
    vec![
        label.to_string(),
        fmt_f64(b.false_positive * 100.0, 2),
        fmt_f64(b.false_negative * 100.0, 2),
        fmt_f64(b.neutral_positive * 100.0, 2),
        fmt_f64(b.neutral_negative * 100.0, 2),
        fmt_f64(b.total_percent(), 2),
    ]
}

const BREAKDOWN_HEADERS: [&str; 6] = ["config", "FP %", "FN %", "NP %", "NN %", "total %"];

/// Figure 7: single-hash error for the four `P × R` combinations; 10K/1 %
/// (left) and 1M/0.1 % (right), 2K hash entries.
pub fn fig7(opts: &RunOptions) -> Figure {
    let configs = [
        ProfilerKind::SingleHash {
            retaining: false,
            resetting: false,
        },
        ProfilerKind::SingleHash {
            retaining: false,
            resetting: true,
        },
        ProfilerKind::SingleHash {
            retaining: true,
            resetting: false,
        },
        ProfilerKind::SingleHash {
            retaining: true,
            resetting: true,
        },
    ];
    let mut blocks = Vec::new();
    for (interval, label) in [
        (IntervalConfig::short(), "10K events, 1% threshold"),
        (IntervalConfig::long(), "1M events, 0.1% threshold"),
    ] {
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(BREAKDOWN_HEADERS.iter().map(|s| s.to_string()));
        let mut table = TextTable::new(headers);
        for bench in Benchmark::ALL {
            for kind in configs {
                let n = opts.events_for(interval);
                let series = kind.run_with_warmup(
                    interval,
                    opts.seed,
                    value_events(bench, n, opts.seed),
                    opts.warmup_intervals,
                );
                let mut row = vec![bench.name().to_string()];
                row.extend(breakdown_row(&kind.label(), &series));
                table.add_row(row);
            }
        }
        blocks.push((label.to_string(), table));
    }
    Figure {
        id: "fig7",
        title: "single-hash error with retaining (P) / resetting (R)".into(),
        blocks,
    }
}

/// Figure 9: theoretical upper bound on the false-positive probability as a
/// function of the number of hash tables, for several total-entry budgets at
/// a 1 % threshold.
pub fn fig9(_opts: &RunOptions) -> Figure {
    let budgets = [500usize, 1_000, 2_000, 4_000, 8_000];
    let mut headers = vec!["tables".to_string()];
    headers.extend(budgets.iter().map(|b| format!("{b} entries")));
    let mut table = TextTable::new(headers);
    for n in 1..=16usize {
        let mut row = vec![n.to_string()];
        for &z in &budgets {
            row.push(fmt_f64(
                theory::false_positive_probability(z, n, 1.0) * 100.0,
                3,
            ));
        }
        table.add_row(row);
    }
    Figure {
        id: "fig9",
        title: "theoretical false-positive probability (%), 1% threshold".into(),
        blocks: vec![("P(false positive) %".into(), table)],
    }
}

fn design_space_figure(
    id: &'static str,
    opts: &RunOptions,
    interval: IntervalConfig,
    label: &str,
) -> Figure {
    let mut blocks = Vec::new();
    for bench in [Benchmark::Gcc, Benchmark::Go] {
        let mut headers = vec!["tables".to_string()];
        headers.extend(BREAKDOWN_HEADERS.iter().map(|s| s.to_string()));
        let mut table = TextTable::new(headers);
        for tables in [1usize, 2, 4, 8] {
            for kind in design_space(tables) {
                let n = opts.events_for(interval);
                let series = kind.run_with_warmup(
                    interval,
                    opts.seed,
                    value_events(bench, n, opts.seed),
                    opts.warmup_intervals,
                );
                let mut row = vec![tables.to_string()];
                row.extend(breakdown_row(&kind.label(), &series));
                table.add_row(row);
            }
        }
        blocks.push((format!("{} ({label})", bench.name()), table));
    }
    Figure {
        id,
        title: format!("multi-hash design space, {label}, 2K total entries"),
        blocks,
    }
}

/// Figure 10: multi-hash `C × R` design space at 10K/1 %, gcc and go.
pub fn fig10(opts: &RunOptions) -> Figure {
    design_space_figure(
        "fig10",
        opts,
        IntervalConfig::short(),
        "10K events, 1% threshold",
    )
}

/// Figure 11: multi-hash `C × R` design space at 1M/0.1 %, gcc and go.
pub fn fig11(opts: &RunOptions) -> Figure {
    design_space_figure(
        "fig11",
        opts,
        IntervalConfig::long(),
        "1M events, 0.1% threshold",
    )
}

/// Figure 12: the best multi-hash configuration (`C1 R0`) with 1–16 tables
/// against the best single hash, all benchmarks, both interval configs
/// (value profiling).
pub fn fig12(opts: &RunOptions) -> Figure {
    let kinds: Vec<ProfilerKind> = std::iter::once(ProfilerKind::BestSingleHash)
        .chain(
            [1usize, 2, 4, 8, 16]
                .into_iter()
                .map(|tables| ProfilerKind::MultiHash {
                    tables,
                    conservative: true,
                    resetting: false,
                }),
        )
        .collect();
    let mut blocks = Vec::new();
    for (interval, label) in [
        (IntervalConfig::short(), "10K events, 1% threshold"),
        (IntervalConfig::long(), "1M events, 0.1% threshold"),
    ] {
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(BREAKDOWN_HEADERS.iter().map(|s| s.to_string()));
        let mut table = TextTable::new(headers);
        for bench in Benchmark::ALL {
            for kind in &kinds {
                let n = opts.events_for(interval);
                let series = kind.run_with_warmup(
                    interval,
                    opts.seed,
                    value_events(bench, n, opts.seed),
                    opts.warmup_intervals,
                );
                let mut row = vec![bench.name().to_string()];
                row.extend(breakdown_row(&kind.label(), &series));
                table.add_row(row);
            }
        }
        blocks.push((label.to_string(), table));
    }
    Figure {
        id: "fig12",
        title: "best multi-hash (C1 R0) vs best single hash, value profiling".into(),
        blocks,
    }
}

/// Figure 13: per-interval error across execution at 1M/0.1 %: best single
/// hash with resetting (left) vs the 4-table `C1 R0` multi-hash (right).
pub fn fig13(opts: &RunOptions) -> Figure {
    let interval = IntervalConfig::long();
    let mut blocks = Vec::new();
    for (kind, label) in [
        (ProfilerKind::BestSingleHash, "best single hash (P1 R1)"),
        (best_multi_hash(), "multi-hash 4 tables (C1 R0)"),
    ] {
        let mut headers = vec!["interval".to_string()];
        headers.extend(Benchmark::ALL.iter().map(|b| b.name().to_string()));
        let mut table = TextTable::new(headers);
        // Gather per-benchmark series.
        let n = opts.events_for(interval).max(interval.interval_len() * 8);
        let all: Vec<Vec<f64>> = Benchmark::ALL
            .iter()
            .map(|&bench| {
                kind.run(interval, opts.seed, value_events(bench, n, opts.seed))
                    .totals_percent()
            })
            .collect();
        let intervals = all.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..intervals {
            let mut row = vec![i.to_string()];
            for series in &all {
                row.push(series.get(i).map(|&e| fmt_f64(e, 2)).unwrap_or_default());
            }
            table.add_row(row);
        }
        blocks.push((label.to_string(), table));
    }
    Figure {
        id: "fig13",
        title: "per-interval error (%), 1M events, 0.1% threshold".into(),
        blocks,
    }
}

/// Figure 14: the best multi-hash profiler for **edge** profiling, 1–8
/// tables vs best single hash, both interval configs.
pub fn fig14(opts: &RunOptions) -> Figure {
    let kinds: Vec<ProfilerKind> = std::iter::once(ProfilerKind::BestSingleHash)
        .chain(
            [1usize, 2, 4, 8]
                .into_iter()
                .map(|tables| ProfilerKind::MultiHash {
                    tables,
                    conservative: true,
                    resetting: false,
                }),
        )
        .collect();
    let mut blocks = Vec::new();
    for (interval, label) in [
        (IntervalConfig::short(), "10K events, 1% threshold"),
        (IntervalConfig::long(), "1M events, 0.1% threshold"),
    ] {
        let mut headers = vec!["benchmark".to_string()];
        headers.extend(BREAKDOWN_HEADERS.iter().map(|s| s.to_string()));
        let mut table = TextTable::new(headers);
        for bench in Benchmark::ALL {
            for kind in &kinds {
                let n = opts.events_for(interval);
                let series = kind.run_with_warmup(
                    interval,
                    opts.seed,
                    edge_events(bench, n, opts.seed),
                    opts.warmup_intervals,
                );
                let mut row = vec![bench.name().to_string()];
                row.extend(breakdown_row(&kind.label(), &series));
                table.add_row(row);
            }
        }
        blocks.push((label.to_string(), table));
    }
    Figure {
        id: "fig14",
        title: "best multi-hash vs best single hash, edge profiling".into(),
        blocks,
    }
}

/// The §7 hardware-area check: 7 KB (1 % threshold) to 16 KB (0.1 %).
pub fn area(_opts: &RunOptions) -> Figure {
    let mut table = TextTable::new(vec![
        "configuration",
        "hash bytes",
        "accumulator bytes",
        "total bytes",
    ]);
    for (interval, label) in [
        (IntervalConfig::short(), "2K entries, 1% threshold"),
        (IntervalConfig::long(), "2K entries, 0.1% threshold"),
    ] {
        let model = AreaModel::new(2048, interval);
        table.add_row(vec![
            label.to_string(),
            model.hash_table_bytes().to_string(),
            model.accumulator_bytes().to_string(),
            model.total_bytes().to_string(),
        ]);
    }
    Figure {
        id: "area",
        title: "hardware storage budget (§7)".into(),
        blocks: vec![("area model".into(), table)],
    }
}

/// Extension: software-overhead accounting for the stratified-sampler
/// baseline — the interrupt cost the pure-hardware profiler eliminates
/// (qualitatively reproducing §4.2's \"5% overhead\" comparison).
pub fn overhead(opts: &RunOptions) -> Figure {
    let interval = IntervalConfig::short();
    let mut table = TextTable::new(vec![
        "benchmark",
        "reports",
        "interrupts",
        "aggregated",
        "interrupts/10K events",
    ]);
    for bench in Benchmark::ALL {
        let config = StratifiedConfig::new(2048)
            .expect("2048 is valid")
            .with_sampling_threshold(16)
            .with_tags(10, 64)
            .with_aggregation(Default::default());
        let mut sampler =
            StratifiedSampler::new(interval, config, opts.seed).expect("valid sampler");
        let n = opts.events_for(interval);
        for t in value_events(bench, n, opts.seed) {
            sampler.observe(t);
        }
        let stats = sampler.overhead();
        table.add_row(vec![
            bench.name().to_string(),
            stats.reports.to_string(),
            stats.interrupts.to_string(),
            stats.aggregated.to_string(),
            fmt_f64(stats.interrupts as f64 / (n as f64 / 10_000.0), 2),
        ]);
    }
    Figure {
        id: "overhead",
        title: "stratified-sampler software overhead (multi-hash needs none)".into(),
        blocks: vec![("overhead".into(), table)],
    }
}

/// Extension: accuracy ablation of the paper's design choices on the best
/// multi-hash configuration — shielding, retaining, conservative update and
/// resetting each toggled individually (DESIGN.md §8).
pub fn ablate(opts: &RunOptions) -> Figure {
    use mhp_analysis::run_comparison;
    use mhp_core::{MultiHashConfig, MultiHashProfiler};

    // The severe configuration — the short config barely stresses the
    // filters, so the design choices only separate here.
    let interval = IntervalConfig::long();
    let variants: [(&str, MultiHashConfig); 5] = [
        ("best (C1 R0, shield, retain)", MultiHashConfig::best()),
        (
            "no shielding",
            MultiHashConfig::best().with_shielding(false),
        ),
        (
            "no retaining",
            MultiHashConfig::best().with_retaining(false),
        ),
        (
            "plain update (C0)",
            MultiHashConfig::best().with_conservative_update(false),
        ),
        (
            "immediate reset (R1)",
            MultiHashConfig::best().with_resetting(true),
        ),
    ];
    let mut blocks = Vec::new();
    for bench in [Benchmark::Gcc, Benchmark::Go] {
        let mut headers = vec!["variant".to_string()];
        headers.extend(BREAKDOWN_HEADERS.iter().skip(1).map(|s| s.to_string()));
        let mut table = TextTable::new(headers);
        for (label, config) in variants {
            let n = opts.events_for(interval);
            let mut profiler =
                MultiHashProfiler::new(interval, config, opts.seed).expect("valid config");
            let series =
                run_comparison(&mut profiler, value_events(bench, n, opts.seed)).into_series();
            let steady: mhp_analysis::ErrorSeries = series
                .intervals()
                .iter()
                .skip(opts.warmup_intervals)
                .cloned()
                .collect();
            let mut row = breakdown_row(label, &steady);
            row[0] = label.to_string();
            table.add_row(row);
        }
        blocks.push((
            format!("{} (1M events, 0.1% threshold)", bench.name()),
            table,
        ));
    }
    Figure {
        id: "ablate",
        title: "accuracy ablation of the multi-hash design choices".into(),
        blocks,
    }
}

/// Extension: adaptive interval sizing (§5.6.1's suggestion) — how the
/// interval length settles per benchmark.
pub fn adaptive(opts: &RunOptions) -> Figure {
    use mhp_analysis::adaptive::{AdaptivePolicy, AdaptiveProfiler};
    use mhp_core::MultiHashConfig;

    let policy = AdaptivePolicy {
        min_len: 10_000,
        max_len: 1_000_000,
        grow_below: 10.0,
        shrink_above: 50.0,
    };
    let mut table = TextTable::new(vec![
        "benchmark",
        "intervals",
        "final len",
        "min len seen",
        "max len seen",
        "mean %var",
    ]);
    for bench in Benchmark::ALL {
        let mut profiler = AdaptiveProfiler::new(policy, 0.01, MultiHashConfig::best(), opts.seed)
            .expect("valid adaptive profiler");
        let n = opts.events_for(IntervalConfig::short()).max(2_000_000);
        for t in value_events(bench, n, opts.seed) {
            profiler.observe(t);
        }
        let lens: Vec<u64> = profiler.history().iter().map(|s| s.interval_len).collect();
        let vars: Vec<f64> = profiler
            .history()
            .iter()
            .filter_map(|s| s.variation)
            .collect();
        let mean_var = if vars.is_empty() {
            0.0
        } else {
            vars.iter().sum::<f64>() / vars.len() as f64
        };
        table.add_row(vec![
            bench.name().to_string(),
            profiler.intervals_completed().to_string(),
            profiler.current_interval_len().to_string(),
            lens.iter().min().copied().unwrap_or(0).to_string(),
            lens.iter().max().copied().unwrap_or(0).to_string(),
            fmt_f64(mean_var, 1),
        ]);
    }
    Figure {
        id: "adaptive",
        title: "adaptive interval sizing (extension of §5.6.1)".into(),
        blocks: vec![("per-benchmark adaptation".into(), table)],
    }
}

/// Extension: the hash-budget sweep behind §6.3's sizing claim — *"a
/// hash-table of size 2K performs almost as well as larger hash-tables,
/// while still outperforming hash-tables of size 1K or smaller"* (results
/// the paper omits for space). 4-table `C1 R0` at 1M/0.1%.
pub fn sweep(opts: &RunOptions) -> Figure {
    use mhp_analysis::run_comparison;
    use mhp_core::{MultiHashConfig, MultiHashProfiler};

    let interval = IntervalConfig::long();
    let budgets = [512usize, 1_024, 2_048, 4_096, 8_192];
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(budgets.iter().map(|b| format!("{b} entries")));
    let mut table = TextTable::new(headers);
    for bench in [
        Benchmark::Gcc,
        Benchmark::Go,
        Benchmark::Deltablue,
        Benchmark::Sis,
    ] {
        let mut row = vec![bench.name().to_string()];
        for &budget in &budgets {
            let config = MultiHashConfig::new(budget, 4).expect("all budgets divide by 4");
            let mut profiler = MultiHashProfiler::new(interval, config, opts.seed).expect("valid");
            let n = opts.events_for(interval);
            let series =
                run_comparison(&mut profiler, value_events(bench, n, opts.seed)).into_series();
            let steady: mhp_analysis::ErrorSeries = series
                .intervals()
                .iter()
                .skip(opts.warmup_intervals)
                .cloned()
                .collect();
            row.push(fmt_f64(steady.mean_total_percent(), 2));
        }
        table.add_row(row);
    }
    Figure {
        id: "sweep",
        title: "total-entry budget sweep (§6.3's sizing claim), MH4 C1 R0, 1M/0.1%".into(),
        blocks: vec![("total error %".into(), table)],
    }
}

/// Extension: the full sampler ladder (§4's classification) under one
/// error metric — conventional periodic/random sampling, the stratified
/// sampler, the best single hash and the best multi-hash.
pub fn samplers(opts: &RunOptions) -> Figure {
    let ladder = [
        ProfilerKind::Periodic,
        ProfilerKind::Random,
        ProfilerKind::Stratified,
        ProfilerKind::BestSingleHash,
        best_multi_hash(),
    ];
    let interval = IntervalConfig::short();
    let mut headers = vec!["benchmark".to_string()];
    headers.extend(BREAKDOWN_HEADERS.iter().map(|s| s.to_string()));
    let mut table = TextTable::new(headers);
    for bench in Benchmark::ALL {
        for kind in ladder {
            let n = opts.events_for(interval);
            let series = kind.run_with_warmup(
                interval,
                opts.seed,
                value_events(bench, n, opts.seed),
                opts.warmup_intervals,
            );
            let mut row = vec![bench.name().to_string()];
            row.extend(breakdown_row(&kind.label(), &series));
            table.add_row(row);
        }
    }
    Figure {
        id: "samplers",
        title: "the sampler ladder under Equation 1 (10K events, 1% threshold)".into(),
        blocks: vec![("value profiling".into(), table)],
    }
}

/// Extension: the §2 optimization clients driven by hardware profiles —
/// effectiveness of the 7 KB multi-hash profile vs a perfect-profile
/// oracle, using interval *k*'s profile on interval *k+1*'s events.
pub fn apps(opts: &RunOptions) -> Figure {
    use mhp_apps::{DelinquentLoadSet, FrequentValueTable, MultipathSelector, TraceFormer};
    use mhp_cache::{access::AccessPattern, Cache, CacheConfig, MissEvents};
    use mhp_core::{IntervalProfile, MultiHashConfig, MultiHashProfiler, PerfectProfiler};

    fn one_interval(
        interval: IntervalConfig,
        seed: u64,
        events: &mut impl Iterator<Item = Tuple>,
    ) -> (IntervalProfile, IntervalProfile) {
        let mut hw =
            MultiHashProfiler::new(interval, MultiHashConfig::best(), seed).expect("valid");
        let mut oracle = PerfectProfiler::new(interval);
        loop {
            let t = events.next().expect("infinite stream");
            match (hw.observe(t), oracle.observe(t)) {
                (Some(h), Some(p)) => return (h, p),
                (None, None) => {}
                _ => unreachable!("lockstep"),
            }
        }
    }

    let interval = IntervalConfig::new(20_000, 0.01).expect("valid");
    let fork_interval = IntervalConfig::new(20_000, 0.0025).expect("valid");
    let mut table = TextTable::new(vec![
        "benchmark",
        "fvc hw %",
        "fvc oracle %",
        "trace hw %",
        "trace oracle %",
        "forks hw %",
        "forks oracle %",
    ]);
    for bench in Benchmark::ALL {
        // Frequent-value cache on the value stream.
        let mut values = bench.value_stream(opts.seed);
        let (hw, oracle) = one_interval(interval, opts.seed, &mut values);
        let next: Vec<Tuple> = (&mut values).take(20_000).collect();
        let fvc_hw = FrequentValueTable::from_profile(&hw, 8).evaluate(next.iter().copied());
        let fvc_or = FrequentValueTable::from_profile(&oracle, 8).evaluate(next.iter().copied());

        // Trace formation on the edge stream.
        let mut edges = bench.edge_stream(opts.seed);
        let (hw, oracle) = one_interval(interval, opts.seed, &mut edges);
        let next: Vec<Tuple> = (&mut edges).take(20_000).collect();
        let tr_hw = TraceFormer::from_profile(&hw).form_traces(16, 8);
        let tr_or = TraceFormer::from_profile(&oracle).form_traces(16, 8);
        let trc_hw = TraceFormer::coverage(&tr_hw, next.iter().copied());
        let trc_or = TraceFormer::coverage(&tr_or, next.iter().copied());

        // Multipath fork selection on a finer-threshold edge profile.
        let mut edges = bench.edge_stream(opts.seed ^ 0xF0);
        let (hw, oracle) = one_interval(fork_interval, opts.seed, &mut edges);
        let next: Vec<Tuple> = (&mut edges).take(20_000).collect();
        let sel_hw = MultipathSelector::from_profile(&hw);
        let sel_or = MultipathSelector::from_profile(&oracle);
        let mp_hw = sel_hw.misprediction_coverage(&sel_hw.select(16), next.iter().copied());
        let mp_or = sel_or.misprediction_coverage(&sel_or.select(16), next.iter().copied());

        table.add_row(vec![
            bench.name().to_string(),
            fmt_f64(fvc_hw.ratio() * 100.0, 1),
            fmt_f64(fvc_or.ratio() * 100.0, 1),
            fmt_f64(trc_hw * 100.0, 1),
            fmt_f64(trc_or * 100.0, 1),
            fmt_f64(mp_hw * 100.0, 1),
            fmt_f64(mp_or * 100.0, 1),
        ]);
    }

    // Delinquent-load targeting via the cache substrate.
    let mut miss_table = TextTable::new(vec![
        "workload",
        "miss ratio %",
        "targeted loads",
        "coverage hw %",
        "coverage oracle %",
        "prefetch miss cut %",
    ]);
    let cache = Cache::new(CacheConfig::new(32 * 1024, 64, 4).expect("valid"));
    let mut misses = MissEvents::new(cache, AccessPattern::demo_mix(opts.seed).events());
    let miss_interval = IntervalConfig::new(10_000, 0.01).expect("valid");
    let (hw, oracle) = one_interval(miss_interval, opts.seed, &mut misses);
    let set_hw = DelinquentLoadSet::from_profile(&hw, 2);
    let set_or = DelinquentLoadSet::from_profile(&oracle, 2);
    let next: Vec<Tuple> = (&mut misses).take(10_000).collect();
    // Close the loop: drive a next-line prefetcher with the profiled set.
    let prefetcher = mhp_apps::NextLinePrefetcher::new(set_hw.clone(), 4);
    let outcome = prefetcher.evaluate(
        || Cache::new(CacheConfig::new(32 * 1024, 64, 4).expect("valid")),
        || AccessPattern::demo_mix(opts.seed).events().take(200_000),
    );
    miss_table.add_row(vec![
        "demo mix (32 KB, 4-way)".to_string(),
        fmt_f64(misses.stats().miss_ratio() * 100.0, 1),
        set_hw.len().to_string(),
        fmt_f64(set_hw.coverage(next.iter().copied()).ratio() * 100.0, 1),
        fmt_f64(set_or.coverage(next.iter().copied()).ratio() * 100.0, 1),
        fmt_f64(outcome.miss_reduction() * 100.0, 1),
    ]);

    Figure {
        id: "apps",
        title: "profile-guided optimization clients (§2), hardware vs oracle".into(),
        blocks: vec![
            ("value / edge clients".into(), table),
            ("delinquent-load targeting".into(), miss_table),
        ],
    }
}

/// Extension: the stratified sampler's own design space — sampling
/// threshold vs accuracy vs software overhead (the §4.2 baseline's
/// accuracy/overhead tradeoff the paper's "5% overhead" remark points at).
pub fn stratified(opts: &RunOptions) -> Figure {
    use mhp_analysis::run_comparison;
    use mhp_stratified::{AggregationConfig, StratifiedConfig, StratifiedSampler};

    let interval = IntervalConfig::short();
    let mut table = TextTable::new(vec![
        "benchmark",
        "threshold",
        "variant",
        "total err %",
        "reports",
        "interrupts",
    ]);
    for bench in [Benchmark::Gcc, Benchmark::M88ksim] {
        for sampling_threshold in [4u32, 16, 64] {
            for (variant, tagged, aggregated) in [
                ("plain", false, false),
                ("tagged", true, false),
                ("tagged+agg", true, true),
            ] {
                let mut config = StratifiedConfig::new(2048)
                    .expect("2048 is valid")
                    .with_sampling_threshold(sampling_threshold);
                if tagged {
                    config = config.with_tags(10, 64);
                }
                if aggregated {
                    config = config.with_aggregation(AggregationConfig::default());
                }
                let mut sampler =
                    StratifiedSampler::new(interval, config, opts.seed).expect("valid");
                let n = opts.events_for(interval);
                let series =
                    run_comparison(&mut sampler, value_events(bench, n, opts.seed)).into_series();
                let steady: mhp_analysis::ErrorSeries = series
                    .intervals()
                    .iter()
                    .skip(opts.warmup_intervals)
                    .cloned()
                    .collect();
                let overhead = sampler.overhead();
                table.add_row(vec![
                    bench.name().to_string(),
                    sampling_threshold.to_string(),
                    variant.to_string(),
                    fmt_f64(steady.mean_total_percent(), 2),
                    overhead.reports.to_string(),
                    overhead.interrupts.to_string(),
                ]);
            }
        }
    }
    Figure {
        id: "stratified",
        title: "stratified-sampler design space: accuracy vs software overhead".into(),
        blocks: vec![("10K events, 1% threshold".into(), table)],
    }
}

/// All figure ids in paper order.
pub const ALL_FIGURES: [&str; 11] = [
    "fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "area",
];

/// Runs one figure by id.
///
/// # Panics
///
/// Panics on an unknown id; the binary validates ids before calling.
pub fn run_figure(id: &str, opts: &RunOptions) -> Figure {
    match id {
        "fig4" => fig4(opts),
        "fig5" => fig5(opts),
        "fig6" => fig6(opts),
        "fig7" => fig7(opts),
        "fig9" => fig9(opts),
        "fig10" => fig10(opts),
        "fig11" => fig11(opts),
        "fig12" => fig12(opts),
        "fig13" => fig13(opts),
        "fig14" => fig14(opts),
        "area" => area(opts),
        "overhead" => overhead(opts),
        "ablate" => ablate(opts),
        "adaptive" => adaptive(opts),
        "apps" => apps(opts),
        "samplers" => samplers(opts),
        "sweep" => sweep(opts),
        "stratified" => stratified(opts),
        other => panic!("unknown figure id {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> RunOptions {
        // Deliberately tiny so tests stay fast; long-interval runs still use
        // 4M events via events_for, so only exercise short-interval figures
        // here.
        RunOptions {
            events: 50_000,
            seed: 3,
            csv: false,
            warmup_intervals: 1,
        }
    }

    #[test]
    fn fig9_is_cheap_and_correctly_shaped() {
        let fig = fig9(&tiny_opts());
        assert_eq!(fig.blocks.len(), 1);
        assert_eq!(fig.blocks[0].1.len(), 16);
        let rendered = fig.render(false);
        assert!(rendered.contains("8000 entries"));
    }

    #[test]
    fn area_matches_the_paper_budget() {
        let fig = area(&tiny_opts());
        let csv = fig.blocks[0].1.to_csv();
        assert!(csv.contains("7144"));
        assert!(csv.contains("16144"));
    }

    #[test]
    fn render_includes_id_and_blocks() {
        let fig = fig9(&tiny_opts());
        let text = fig.render(false);
        assert!(text.starts_with("== fig9"));
        let csv = fig.render(true);
        assert!(csv.contains("tables,"));
    }

    #[test]
    #[should_panic(expected = "unknown figure id")]
    fn unknown_figure_panics() {
        run_figure("fig99", &tiny_opts());
    }
}
