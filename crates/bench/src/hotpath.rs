//! The `mhp-bench hotpath` runner: sustained events/sec through the sketch
//! hot path, per-event vs batched, plus the sharded engine end to end.
//!
//! This is the perf-regression harness for the batched
//! [`observe_batch`](mhp_core::EventProfiler::observe_batch) path: it times
//! the same deterministic stream through each profiler both ways and
//! reports the best of `samples` passes, so a regression in the batched
//! loop (or the flattened counter block behind it) shows up as a drop in
//! `events_per_sec` rather than a silently slower CI.
//!
//! The output is a small hand-rolled JSON document (`BENCH_hotpath.json`
//! at the repo root, by convention) — stable keys, no external
//! serialization dependency.

use std::sync::Arc;
use std::time::Instant;

use mhp_core::{
    CollectingSink, EventProfiler, IntervalConfig, MultiHashConfig, MultiHashProfiler,
    PerfectProfiler, SingleHashConfig, SingleHashProfiler, SketchSnapshot, Tuple,
};
use mhp_pipeline::{EngineConfig, ProfilerSpec, ShardedEngine};
use mhp_trace::Benchmark;

/// Knobs for a hotpath run.
#[derive(Debug, Clone)]
pub struct HotpathOptions {
    /// Events in the timed stream.
    pub events: u64,
    /// Stream seed; the same seed reproduces every number's workload.
    pub seed: u64,
    /// Events per `observe_batch` call (and per engine chunk).
    pub batch: usize,
    /// Timed passes per case; the best (lowest wall time) is reported.
    pub samples: usize,
    /// Shard counts to run the end-to-end engine at.
    pub shards: Vec<usize>,
}

impl Default for HotpathOptions {
    fn default() -> Self {
        HotpathOptions {
            events: 2_000_000,
            seed: 0xCAFE,
            batch: 4_096,
            samples: 3,
            shards: vec![1, 4, 8],
        }
    }
}

/// One timed configuration: a profiler (or engine) in one ingest mode.
#[derive(Debug, Clone)]
pub struct HotpathCase {
    /// Profiler under test: `multi-hash`, `single-hash`, `perfect`, or
    /// `engine-<n>shard`.
    pub name: String,
    /// `per-event` (one `observe` call per tuple) or `batched`
    /// (`observe_batch` over `batch`-sized slices).
    pub mode: String,
    /// Events pushed through the profiler in one timed pass.
    pub events: u64,
    /// Best wall time over the configured samples, in seconds.
    pub best_secs: f64,
    /// `events / best_secs` — the headline throughput number.
    pub events_per_sec: f64,
    /// Interval profiles the run emitted (a cheap cross-check that the
    /// timed work actually happened and matched between modes).
    pub intervals: u64,
}

/// The full result set of one hotpath run.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Options the run was configured with.
    pub options: HotpathOptions,
    /// CPUs available to this run (`available_parallelism`). The scaling
    /// numbers are meaningless without it: on a 1-CPU box even a perfect
    /// 8-shard engine cannot beat 1× speedup.
    pub cpus: usize,
    /// One entry per (profiler, mode) configuration, in run order.
    pub cases: Vec<HotpathCase>,
}

/// Shard-scaling summary: the widest engine case against the 1-shard
/// baseline, normalized by how many cores were physically available.
#[derive(Debug, Clone)]
pub struct Scaling {
    /// The widest shard count measured (8, with default options).
    pub shards: usize,
    /// `engine-<shards>shard` ÷ `engine-1shard` throughput — the raw
    /// speedup, bounded above by the core count, not the shard count.
    pub speedup: f64,
    /// CPUs available during the run.
    pub cpus: usize,
    /// `speedup ÷ min(shards, cpus)` — fraction of the physically
    /// achievable linear speedup realized. 1.0 is perfect scaling on the
    /// hardware at hand; comparing raw speedup to the shard count would
    /// report a phantom regression on machines with fewer cores.
    pub efficiency: f64,
}

/// Times `pass` `samples` times and returns the best seconds plus the
/// interval count the last pass reported (identical across passes — the
/// stream and profiler construction are deterministic).
fn best_of(samples: usize, mut pass: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut intervals = 0;
    for _ in 0..samples.max(1) {
        let started = Instant::now();
        intervals = pass();
        best = best.min(started.elapsed().as_secs_f64());
    }
    (best, intervals)
}

fn case(
    name: &str,
    mode: &str,
    events: u64,
    samples: usize,
    pass: impl FnMut() -> u64,
) -> HotpathCase {
    let (best_secs, intervals) = best_of(samples, pass);
    HotpathCase {
        name: name.to_string(),
        mode: mode.to_string(),
        events,
        best_secs,
        events_per_sec: events as f64 / best_secs.max(f64::MIN_POSITIVE),
        intervals,
    }
}

/// Runs every configuration and collects the report.
///
/// The stream is materialized once (`Benchmark::Li` value tuples) so every
/// case times pure profiler work over identical input, not stream
/// generation.
pub fn run(opts: &HotpathOptions) -> HotpathReport {
    let stream: Vec<Tuple> = Benchmark::Li
        .value_stream(opts.seed)
        .take(opts.events as usize)
        .collect();
    let events = stream.len() as u64;
    // Scale the interval so ~20 intervals complete at any --events, so the
    // timed loop exercises promotion, interval cuts, and resets — not just
    // counter bumps.
    let interval_len = (opts.events / 20).max(1_000);
    let interval = IntervalConfig::new(interval_len, 0.01).expect("valid interval config");
    let multi = MultiHashConfig::best();
    let single = SingleHashConfig::best();
    let mut cases = Vec::new();

    cases.push(case(
        "multi-hash",
        "per-event",
        events,
        opts.samples,
        || {
            let mut p = MultiHashProfiler::new(interval, multi, opts.seed).expect("valid profiler");
            let mut intervals = 0u64;
            for &t in &stream {
                intervals += u64::from(p.observe(t).is_some());
            }
            intervals
        },
    ));
    cases.push(case("multi-hash", "batched", events, opts.samples, || {
        let mut p = MultiHashProfiler::new(interval, multi, opts.seed).expect("valid profiler");
        let mut intervals = 0u64;
        for chunk in stream.chunks(opts.batch.max(1)) {
            intervals += p.observe_batch(chunk).len() as u64;
        }
        intervals
    }));
    cases.push(case(
        "single-hash",
        "per-event",
        events,
        opts.samples,
        || {
            let mut p =
                SingleHashProfiler::new(interval, single, opts.seed).expect("valid profiler");
            let mut intervals = 0u64;
            for &t in &stream {
                intervals += u64::from(p.observe(t).is_some());
            }
            intervals
        },
    ));
    cases.push(case("single-hash", "batched", events, opts.samples, || {
        let mut p = SingleHashProfiler::new(interval, single, opts.seed).expect("valid profiler");
        let mut intervals = 0u64;
        for chunk in stream.chunks(opts.batch.max(1)) {
            intervals += p.observe_batch(chunk).len() as u64;
        }
        intervals
    }));
    cases.push(case("perfect", "batched", events, opts.samples, || {
        let mut p = PerfectProfiler::new(interval);
        let mut intervals = 0u64;
        for chunk in stream.chunks(opts.batch.max(1)) {
            intervals += p.observe_batch(chunk).len() as u64;
        }
        intervals
    }));

    for &shards in &opts.shards {
        let name = format!("engine-{shards}shard");
        cases.push(case(&name, "batched", events, opts.samples, || {
            let engine = ShardedEngine::new(
                EngineConfig::new(shards).with_batch_events(opts.batch.max(1)),
                interval,
                ProfilerSpec::MultiHash(multi),
                opts.seed,
            );
            let mut session = engine.start().expect("engine starts");
            // The bulk dispatch path: partition-and-append without the
            // per-event interval bookkeeping, same as server ingest.
            session.push_slice(&stream).expect("workers stay alive");
            let report = session.finish().expect("engine finishes");
            report.intervals
        }));
    }

    HotpathReport {
        options: opts.clone(),
        cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        cases,
    }
}

impl HotpathReport {
    /// The shard-scaling summary, when the run measured a multi-shard
    /// engine case alongside the 1-shard baseline.
    pub fn scaling(&self) -> Option<Scaling> {
        let shards = self
            .options
            .shards
            .iter()
            .copied()
            .max()
            .filter(|&s| s > 1)?;
        let base = self.events_per_sec("engine-1shard", "batched")?;
        let wide = self.events_per_sec(&format!("engine-{shards}shard"), "batched")?;
        let speedup = wide / base.max(f64::MIN_POSITIVE);
        let achievable = shards.min(self.cpus).max(1);
        Some(Scaling {
            shards,
            speedup,
            cpus: self.cpus,
            efficiency: speedup / achievable as f64,
        })
    }

    /// The report as a JSON document with stable keys.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"hotpath\",\n");
        out.push_str(&format!("  \"events\": {},\n", self.options.events));
        out.push_str(&format!("  \"seed\": {},\n", self.options.seed));
        out.push_str(&format!("  \"batch\": {},\n", self.options.batch));
        out.push_str(&format!("  \"samples\": {},\n", self.options.samples));
        out.push_str(&format!("  \"cpus\": {},\n", self.cpus));
        match self.scaling() {
            Some(s) => out.push_str(&format!(
                "  \"scaling\": {{\"shards\": {}, \"speedup\": {:.3}, \"cpus\": {}, \
                 \"scaling_efficiency\": {:.3}}},\n",
                s.shards, s.speedup, s.cpus, s.efficiency
            )),
            None => out.push_str("  \"scaling\": null,\n"),
        }
        out.push_str("  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"mode\": \"{}\", \"events\": {}, \
                 \"best_secs\": {:.6}, \"events_per_sec\": {:.0}, \"intervals\": {}}}{}\n",
                c.name,
                c.mode,
                c.events,
                c.best_secs,
                c.events_per_sec,
                c.intervals,
                if i + 1 == self.cases.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// An aligned human-readable table for stdout.
    pub fn render(&self) -> String {
        let mut out = format!(
            "hotpath: {} events, seed {}, batch {}, best of {}\n",
            self.options.events, self.options.seed, self.options.batch, self.options.samples
        );
        out.push_str(&format!(
            "{:<16} {:<10} {:>12} {:>10} {:>10}\n",
            "profiler", "mode", "events/sec", "secs", "intervals"
        ));
        for c in &self.cases {
            out.push_str(&format!(
                "{:<16} {:<10} {:>12.0} {:>10.4} {:>10}\n",
                c.name, c.mode, c.events_per_sec, c.best_secs, c.intervals
            ));
        }
        if let Some(s) = self.scaling() {
            out.push_str(&format!(
                "scaling: {} shards vs 1 -> {:.2}x speedup on {} cpu(s); \
                 efficiency {:.2} (speedup / min(shards, cpus))\n",
                s.shards, s.speedup, s.cpus, s.efficiency
            ));
        }
        out
    }

    /// Looks up one case's throughput by `(name, mode)`.
    pub fn events_per_sec(&self, name: &str, mode: &str) -> Option<f64> {
        self.cases
            .iter()
            .find(|c| c.name == name && c.mode == mode)
            .map(|c| c.events_per_sec)
    }
}

/// Sketch-health totals for one profiler, aggregated from the per-interval
/// [`SketchSnapshot`]s of an *untimed* introspection run over the same
/// stream the timed cases use.
///
/// The run is deliberately separate from the timed passes so the headline
/// `events_per_sec` numbers keep measuring the sink-free hot path; this is
/// the companion "was the sketch healthy while it was that fast" report.
#[derive(Debug, Clone)]
pub struct SketchHealth {
    /// Profiler name (`multi-hash` or `single-hash`).
    pub name: String,
    /// Completed intervals the sink observed.
    pub intervals: u64,
    /// Events across those intervals.
    pub events: u64,
    /// Events absorbed by a resident accumulator entry.
    pub shield_hits: u64,
    /// Tuples promoted into the accumulator.
    pub promotions: u64,
    /// Promotions dropped for want of a replaceable entry.
    pub promotions_dropped: u64,
    /// Promotions that evicted a resident entry.
    pub evictions: u64,
    /// Candidates retained across interval boundaries.
    pub retained: u64,
    /// Events whose minimum counter sat at the saturation ceiling.
    pub saturations: u64,
    /// Mean end-of-interval hash-counter occupancy, in [0, 1].
    pub mean_counter_occupancy: f64,
    /// Mean end-of-interval accumulator fill, in [0, 1].
    pub mean_accumulator_fill: f64,
}

fn health_from(name: &str, snapshots: &[SketchSnapshot]) -> SketchHealth {
    let n = snapshots.len().max(1) as f64;
    let ratio = |num: u64, den: u64| num as f64 / den.max(1) as f64;
    SketchHealth {
        name: name.to_string(),
        intervals: snapshots.len() as u64,
        events: snapshots.iter().map(|s| s.events).sum(),
        shield_hits: snapshots.iter().map(|s| s.shield_hits).sum(),
        promotions: snapshots.iter().map(|s| s.promotions).sum(),
        promotions_dropped: snapshots.iter().map(|s| s.promotions_dropped).sum(),
        evictions: snapshots.iter().map(|s| s.evictions).sum(),
        retained: snapshots.iter().map(|s| s.retained).sum(),
        saturations: snapshots.iter().map(|s| s.saturations).sum(),
        mean_counter_occupancy: snapshots
            .iter()
            .map(|s| ratio(s.counters_occupied, s.counters_total))
            .sum::<f64>()
            / n,
        mean_accumulator_fill: snapshots
            .iter()
            .map(|s| ratio(s.accumulator_len, s.accumulator_capacity))
            .sum::<f64>()
            / n,
    }
}

/// Runs the sketch profilers once each (batched, untimed) with a
/// [`CollectingSink`] installed and aggregates the per-interval snapshots.
///
/// Uses the same stream, interval scaling and configs as [`run`], so the
/// health numbers describe exactly the workload the timed cases measured.
pub fn sketch_health(opts: &HotpathOptions) -> Vec<SketchHealth> {
    let stream: Vec<Tuple> = Benchmark::Li
        .value_stream(opts.seed)
        .take(opts.events as usize)
        .collect();
    let interval_len = (opts.events / 20).max(1_000);
    let interval = IntervalConfig::new(interval_len, 0.01).expect("valid interval config");

    let mut out = Vec::new();
    let collect = |profiler: &mut dyn EventProfiler| {
        let sink = Arc::new(CollectingSink::new());
        profiler.set_introspection_sink(Some(sink.clone()));
        for chunk in stream.chunks(opts.batch.max(1)) {
            profiler.observe_batch(chunk);
        }
        sink.take()
    };

    let mut multi = MultiHashProfiler::new(interval, MultiHashConfig::best(), opts.seed)
        .expect("valid profiler");
    out.push(health_from("multi-hash", &collect(&mut multi)));

    let mut single = SingleHashProfiler::new(interval, SingleHashConfig::best(), opts.seed)
        .expect("valid profiler");
    out.push(health_from("single-hash", &collect(&mut single)));

    out
}

/// Renders the sketch-health report as a JSON document with stable keys
/// (written next to the hotpath JSON as `*_telemetry.json`).
pub fn telemetry_json(health: &[SketchHealth]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"hotpath_telemetry\",\n  \"profilers\": [\n");
    for (i, h) in health.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"intervals\": {}, \"events\": {}, \
             \"shield_hits\": {}, \"promotions\": {}, \"promotions_dropped\": {}, \
             \"evictions\": {}, \"retained\": {}, \"saturations\": {}, \
             \"mean_counter_occupancy\": {:.4}, \"mean_accumulator_fill\": {:.4}}}{}\n",
            h.name,
            h.intervals,
            h.events,
            h.shield_hits,
            h.promotions,
            h.promotions_dropped,
            h.evictions,
            h.retained,
            h.saturations,
            h.mean_counter_occupancy,
            h.mean_accumulator_fill,
            if i + 1 == health.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HotpathOptions {
        HotpathOptions {
            events: 30_000,
            seed: 7,
            batch: 1_024,
            samples: 1,
            shards: vec![1],
        }
    }

    #[test]
    fn runs_every_case_and_reports_positive_throughput() {
        let report = run(&tiny());
        assert_eq!(report.cases.len(), 6); // 5 profiler cases + 1 engine
        for c in &report.cases {
            assert!(
                c.events_per_sec > 0.0,
                "{}/{} has no throughput",
                c.name,
                c.mode
            );
            assert_eq!(c.events, 30_000);
        }
    }

    #[test]
    fn per_event_and_batched_modes_emit_the_same_intervals() {
        let report = run(&tiny());
        for name in ["multi-hash", "single-hash"] {
            let per_event = report
                .cases
                .iter()
                .find(|c| c.name == name && c.mode == "per-event")
                .unwrap();
            let batched = report
                .cases
                .iter()
                .find(|c| c.name == name && c.mode == "batched")
                .unwrap();
            assert_eq!(per_event.intervals, batched.intervals, "{name}");
            assert!(per_event.intervals > 0, "{name} never cut an interval");
        }
    }

    #[test]
    fn json_has_stable_keys_and_every_case() {
        let report = run(&tiny());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        for key in [
            "\"benchmark\"",
            "\"events\"",
            "\"seed\"",
            "\"cpus\"",
            "\"scaling\"",
            "\"cases\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(json.contains("\"multi-hash\""));
        assert!(json.contains("\"engine-1shard\""));
        assert_eq!(json.matches("\"best_secs\"").count(), report.cases.len());
        // A 1-shard-only run has no scaling ratio to report.
        assert!(json.contains("\"scaling\": null"));
    }

    #[test]
    fn multi_shard_runs_report_a_cores_normalized_scaling_summary() {
        let report = run(&HotpathOptions {
            shards: vec![1, 2],
            ..tiny()
        });
        let scaling = report.scaling().expect("1-vs-2-shard run has a ratio");
        assert_eq!(scaling.shards, 2);
        assert_eq!(scaling.cpus, report.cpus);
        assert!(scaling.speedup > 0.0);
        // The normalizer is the *achievable* parallelism, so efficiency
        // compares against min(shards, cpus) — never the raw shard count
        // on a narrower machine.
        let achievable = scaling.shards.min(scaling.cpus).max(1) as f64;
        let expected = scaling.speedup / achievable;
        assert!((scaling.efficiency - expected).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"scaling_efficiency\""));
        assert!(report.render().contains("scaling: 2 shards vs 1"));
    }

    #[test]
    fn sketch_health_covers_both_sketches_and_the_whole_stream() {
        let opts = tiny();
        let health = sketch_health(&opts);
        assert_eq!(health.len(), 2);
        for h in &health {
            // 30k events / 1.5k interval = 20 complete intervals.
            assert_eq!(h.intervals, 20, "{}", h.name);
            assert_eq!(h.events, 30_000, "{}", h.name);
            assert!(h.promotions > 0, "{} never promoted", h.name);
            assert!(h.mean_counter_occupancy > 0.0 && h.mean_counter_occupancy <= 1.0);
            assert!(h.mean_accumulator_fill > 0.0 && h.mean_accumulator_fill <= 1.0);
        }
        let json = telemetry_json(&health);
        assert!(json.contains("\"hotpath_telemetry\""));
        assert!(json.contains("\"multi-hash\"") && json.contains("\"single-hash\""));
        assert_eq!(json.matches("\"promotions\"").count(), 2);
    }

    #[test]
    fn render_mentions_every_case_name() {
        let report = run(&tiny());
        let text = report.render();
        assert!(text.contains("multi-hash"));
        assert!(text.contains("perfect"));
        assert!(text.contains("events/sec"));
    }
}
