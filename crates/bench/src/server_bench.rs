//! The `mhp-bench server` runner: concurrent-session scaling of the
//! profiling service, threaded front end vs the readiness-based event
//! loop.
//!
//! Each row binds a fresh in-process server on an ephemeral loopback
//! port, drives it with the multiplexed load generator
//! ([`mhp_server::mux_loadgen`]) at a fixed concurrent-session count — a
//! small active subset streaming ingest chunks, the rest idling attached,
//! the fleet-realistic mix — and records acknowledged ingest throughput
//! plus request round-trip latency quantiles. The threaded mode burns one
//! OS thread per connection, so its rows stop where that model stops
//! scaling; the event loop continues into the thousands.
//!
//! Output is the same hand-rolled stable-key JSON as the other benches
//! (`BENCH_server.json` at the repo root, by convention).

use std::time::Duration;

use mhp_server::{mux_loadgen, Client, EventLoopConfig, MuxConfig, Server, ServerConfig};
use mhp_telemetry::StageSummary;

/// Knobs for a server-scaling run.
#[derive(Debug, Clone)]
pub struct ServerBenchOptions {
    /// Session counts to run against the threaded front end.
    pub threaded_sessions: Vec<usize>,
    /// Session counts to run against the event loop.
    pub event_loop_sessions: Vec<usize>,
    /// Sessions per row that actively stream (the rest idle attached).
    pub active: usize,
    /// Events each active session streams.
    pub events_per_session: usize,
    /// Events per ingest chunk.
    pub chunk_events: usize,
    /// Per-row wall-clock cap before the run is declared stuck.
    pub deadline: Duration,
    /// Session count for the paired tracing-on/tracing-off overhead
    /// probe (one pair per mode, run back to back so machine drift
    /// cancels). `None` skips the probe.
    pub overhead_probe_sessions: Option<usize>,
}

impl Default for ServerBenchOptions {
    fn default() -> Self {
        ServerBenchOptions {
            threaded_sessions: vec![8, 32],
            event_loop_sessions: vec![8, 32, 256, 1024, 2048],
            active: 8,
            events_per_session: 100_000,
            chunk_events: 4_096,
            deadline: Duration::from_secs(300),
            overhead_probe_sessions: Some(8),
        }
    }
}

/// One (mode, session-count) measurement.
#[derive(Debug, Clone)]
pub struct ServerBenchRow {
    /// `threaded` or `event-loop`.
    pub mode: String,
    /// Concurrent sessions held open for the whole row.
    pub sessions: usize,
    /// How many of them streamed events.
    pub active: usize,
    /// Events acknowledged across the row.
    pub events: u64,
    /// Error responses seen (retried, not fatal).
    pub errors: u64,
    /// Wall-clock for the row, connect to last ack.
    pub elapsed_secs: f64,
    /// Acknowledged ingest throughput.
    pub events_per_sec: f64,
    /// Median request round-trip, microseconds.
    pub p50_us: u64,
    /// Tail request round-trip, microseconds.
    pub p99_us: u64,
    /// Extreme-tail request round-trip, microseconds.
    pub p999_us: u64,
    /// Server-side per-stage latency quantiles for the row, in trace
    /// taxonomy order with a trailing `"total"` entry.
    pub stages: Vec<StageSummary>,
}

/// One paired tracing-on/tracing-off throughput comparison.
#[derive(Debug, Clone)]
pub struct OverheadProbe {
    /// `threaded` or `event-loop`.
    pub mode: String,
    /// Concurrent sessions both halves of the pair ran with.
    pub sessions: usize,
    /// Acknowledged throughput with request tracing enabled.
    pub traced_events_per_sec: f64,
    /// Acknowledged throughput with request tracing disabled.
    pub untraced_events_per_sec: f64,
    /// `(untraced - traced) / untraced`, as a percentage; negative means
    /// the traced half was faster (run-to-run noise).
    pub overhead_pct: f64,
}

/// The full result set of one `mhp-bench server` run.
#[derive(Debug, Clone)]
pub struct ServerBenchReport {
    /// Options the run was configured with.
    pub options: ServerBenchOptions,
    /// One row per (mode, session count), in run order.
    pub rows: Vec<ServerBenchRow>,
    /// Paired tracing overhead probes, one per mode (empty when the
    /// probe is disabled).
    pub overhead: Vec<OverheadProbe>,
}

fn bench_one(
    mode: &str,
    sessions: usize,
    opts: &ServerBenchOptions,
    tracing: bool,
) -> ServerBenchRow {
    let config = ServerConfig {
        max_connections: sessions + 16,
        event_loop: (mode == "event-loop").then(EventLoopConfig::default),
        tracing,
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind bench server");
    let report = mux_loadgen(
        server.local_addr(),
        &MuxConfig {
            sessions,
            active: opts.active.min(sessions),
            events_per_session: opts.events_per_session,
            chunk_events: opts.chunk_events,
            session_prefix: format!("bench-{mode}-{sessions}"),
            deadline: opts.deadline,
            ..MuxConfig::default()
        },
    )
    .expect("mux loadgen run");
    assert_eq!(
        report.opened, sessions,
        "{mode}/{sessions}: not every session opened"
    );
    let stages = server.stage_summaries();
    let mut probe = Client::connect(server.local_addr()).expect("probe connect");
    probe.shutdown_server().expect("shutdown");
    server.join();

    ServerBenchRow {
        mode: mode.to_string(),
        sessions,
        active: report.active,
        events: report.events,
        errors: report.errors,
        elapsed_secs: report.elapsed.as_secs_f64(),
        events_per_sec: report.events_per_sec(),
        p50_us: report.latency.quantile(0.50),
        p99_us: report.latency.quantile(0.99),
        p999_us: report.latency.quantile(0.999),
        stages,
    }
}

fn overhead_probe(mode: &str, sessions: usize, opts: &ServerBenchOptions) -> OverheadProbe {
    // Longer runs (4x the row workload) and three interleaved pairs,
    // best-of each side: the table rows finish in ~0.1s, where single
    // runs swing well over 10% on a shared box. Slowdowns are one-sided
    // noise, so comparing the best traced run against the best untraced
    // run isolates the systematic cost from the scheduler lottery.
    let probe_opts = ServerBenchOptions {
        events_per_session: opts.events_per_session * 4,
        ..opts.clone()
    };
    let mut traced = f64::MIN;
    let mut untraced = f64::MIN;
    for _ in 0..3 {
        traced = traced.max(bench_one(mode, sessions, &probe_opts, true).events_per_sec);
        untraced = untraced.max(bench_one(mode, sessions, &probe_opts, false).events_per_sec);
    }
    OverheadProbe {
        mode: mode.to_string(),
        sessions,
        traced_events_per_sec: traced,
        untraced_events_per_sec: untraced,
        overhead_pct: (untraced - traced) / untraced * 100.0,
    }
}

/// Runs every configured (mode, session-count) row and collects the table.
pub fn run(opts: &ServerBenchOptions) -> ServerBenchReport {
    let mut rows = Vec::new();
    for &sessions in &opts.threaded_sessions {
        rows.push(bench_one("threaded", sessions, opts, true));
    }
    for &sessions in &opts.event_loop_sessions {
        rows.push(bench_one("event-loop", sessions, opts, true));
    }
    let mut overhead = Vec::new();
    if let Some(sessions) = opts.overhead_probe_sessions {
        overhead.push(overhead_probe("threaded", sessions, opts));
        overhead.push(overhead_probe("event-loop", sessions, opts));
    }
    ServerBenchReport {
        options: opts.clone(),
        rows,
        overhead,
    }
}

impl ServerBenchReport {
    /// Stable-key JSON document, matching the other `BENCH_*.json` files.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"server\",\n");
        out.push_str(&format!("  \"active\": {},\n", self.options.active));
        out.push_str(&format!(
            "  \"events_per_session\": {},\n",
            self.options.events_per_session
        ));
        out.push_str(&format!(
            "  \"chunk_events\": {},\n",
            self.options.chunk_events
        ));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let stages: Vec<String> = r
                .stages
                .iter()
                .map(|s| {
                    format!(
                        "{{\"stage\": \"{}\", \"count\": {}, \"p50_us\": {}, \
                         \"p99_us\": {}, \"p999_us\": {}}}",
                        s.stage, s.count, s.p50_us, s.p99_us, s.p999_us
                    )
                })
                .collect();
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"sessions\": {}, \"active\": {}, \
                 \"events\": {}, \"errors\": {}, \"elapsed_secs\": {:.3}, \
                 \"events_per_sec\": {:.0}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"p999_us\": {},\n     \"stages\": [{}]}}{}\n",
                r.mode,
                r.sessions,
                r.active,
                r.events,
                r.errors,
                r.elapsed_secs,
                r.events_per_sec,
                r.p50_us,
                r.p99_us,
                r.p999_us,
                stages.join(", "),
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"tracing_overhead\": [\n");
        for (i, p) in self.overhead.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"sessions\": {}, \
                 \"traced_events_per_sec\": {:.0}, \
                 \"untraced_events_per_sec\": {:.0}, \
                 \"overhead_pct\": {:.2}}}{}\n",
                p.mode,
                p.sessions,
                p.traced_events_per_sec,
                p.untraced_events_per_sec,
                p.overhead_pct,
                if i + 1 == self.overhead.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Whether every tracing-overhead probe came in under `threshold_pct`.
    /// Vacuously true when the probe was disabled.
    pub fn overhead_ok(&self, threshold_pct: f64) -> bool {
        self.overhead.iter().all(|p| p.overhead_pct < threshold_pct)
    }

    /// Human-readable table for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "server scaling: {} active stream(s) x {} events, chunk {}\n",
            self.options.active, self.options.events_per_session, self.options.chunk_events
        ));
        out.push_str(&format!(
            "{:<12} {:>8} {:>12} {:>9} {:>9} {:>9} {:>7}\n",
            "mode", "sessions", "events/sec", "p50_us", "p99_us", "p999_us", "errors"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>8} {:>12.0} {:>9} {:>9} {:>9} {:>7}\n",
                r.mode, r.sessions, r.events_per_sec, r.p50_us, r.p99_us, r.p999_us, r.errors
            ));
        }
        for r in &self.rows {
            out.push_str(&format!("stages {}/{}:\n", r.mode, r.sessions));
            for s in &r.stages {
                out.push_str(&format!(
                    "  {:<16} count {:>8} p50_us {:>7} p99_us {:>7} p999_us {:>7}\n",
                    s.stage, s.count, s.p50_us, s.p99_us, s.p999_us
                ));
            }
        }
        for p in &self.overhead {
            out.push_str(&format!(
                "tracing overhead {}/{}: {:.2}% (traced {:.0} ev/s vs untraced {:.0} ev/s) {}\n",
                p.mode,
                p.sessions,
                p.overhead_pct,
                p.traced_events_per_sec,
                p.untraced_events_per_sec,
                if p.overhead_pct < 5.0 { "PASS" } else { "FAIL" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_rows_for_both_modes() {
        let opts = ServerBenchOptions {
            threaded_sessions: vec![2],
            event_loop_sessions: vec![4],
            active: 2,
            events_per_session: 4_096,
            chunk_events: 4_096,
            deadline: Duration::from_secs(60),
            overhead_probe_sessions: None,
        };
        let report = run(&opts);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].mode, "threaded");
        assert_eq!(report.rows[1].mode, "event-loop");
        for row in &report.rows {
            assert!(row.events > 0, "{}: no events acked", row.mode);
            assert!(row.events_per_sec > 0.0);
            assert!(row.p999_us >= row.p99_us);
            let ingest = row
                .stages
                .iter()
                .find(|s| s.stage == "ingest")
                .expect("ingest stage summary");
            assert!(ingest.count > 0, "{}: no traced ingests", row.mode);
            assert_eq!(row.stages.last().map(|s| s.stage), Some("total"));
        }
        assert!(report.overhead.is_empty());
        assert!(report.overhead_ok(5.0), "vacuous with probe disabled");
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"server\""));
        assert!(json.contains("\"mode\": \"event-loop\""));
        assert!(json.contains("\"p999_us\""));
        assert!(json.contains("\"stage\": \"ingest\""));
        assert!(json.contains("\"tracing_overhead\": ["));
        assert!(report.render().contains("event-loop"));
        assert!(report.render().contains("p999_us"));
    }

    #[test]
    fn overhead_probe_pairs_traced_and_untraced_runs() {
        let opts = ServerBenchOptions {
            threaded_sessions: vec![],
            event_loop_sessions: vec![],
            active: 2,
            events_per_session: 4_096,
            chunk_events: 4_096,
            deadline: Duration::from_secs(60),
            overhead_probe_sessions: Some(2),
        };
        let report = run(&opts);
        assert!(report.rows.is_empty());
        assert_eq!(report.overhead.len(), 2);
        assert_eq!(report.overhead[0].mode, "threaded");
        assert_eq!(report.overhead[1].mode, "event-loop");
        for probe in &report.overhead {
            assert!(probe.traced_events_per_sec > 0.0);
            assert!(probe.untraced_events_per_sec > 0.0);
            assert!(probe.overhead_pct.is_finite());
        }
        assert!(report.to_json().contains("\"overhead_pct\""));
    }
}
