//! The `mhp-bench server` runner: concurrent-session scaling of the
//! profiling service, threaded front end vs the readiness-based event
//! loop.
//!
//! Each row binds a fresh in-process server on an ephemeral loopback
//! port, drives it with the multiplexed load generator
//! ([`mhp_server::mux_loadgen`]) at a fixed concurrent-session count — a
//! small active subset streaming ingest chunks, the rest idling attached,
//! the fleet-realistic mix — and records acknowledged ingest throughput
//! plus request round-trip latency quantiles. The threaded mode burns one
//! OS thread per connection, so its rows stop where that model stops
//! scaling; the event loop continues into the thousands.
//!
//! Output is the same hand-rolled stable-key JSON as the other benches
//! (`BENCH_server.json` at the repo root, by convention).

use std::time::Duration;

use mhp_server::{mux_loadgen, Client, EventLoopConfig, MuxConfig, Server, ServerConfig};

/// Knobs for a server-scaling run.
#[derive(Debug, Clone)]
pub struct ServerBenchOptions {
    /// Session counts to run against the threaded front end.
    pub threaded_sessions: Vec<usize>,
    /// Session counts to run against the event loop.
    pub event_loop_sessions: Vec<usize>,
    /// Sessions per row that actively stream (the rest idle attached).
    pub active: usize,
    /// Events each active session streams.
    pub events_per_session: usize,
    /// Events per ingest chunk.
    pub chunk_events: usize,
    /// Per-row wall-clock cap before the run is declared stuck.
    pub deadline: Duration,
}

impl Default for ServerBenchOptions {
    fn default() -> Self {
        ServerBenchOptions {
            threaded_sessions: vec![8, 32],
            event_loop_sessions: vec![8, 32, 256, 1024, 2048],
            active: 8,
            events_per_session: 100_000,
            chunk_events: 4_096,
            deadline: Duration::from_secs(300),
        }
    }
}

/// One (mode, session-count) measurement.
#[derive(Debug, Clone)]
pub struct ServerBenchRow {
    /// `threaded` or `event-loop`.
    pub mode: String,
    /// Concurrent sessions held open for the whole row.
    pub sessions: usize,
    /// How many of them streamed events.
    pub active: usize,
    /// Events acknowledged across the row.
    pub events: u64,
    /// Error responses seen (retried, not fatal).
    pub errors: u64,
    /// Wall-clock for the row, connect to last ack.
    pub elapsed_secs: f64,
    /// Acknowledged ingest throughput.
    pub events_per_sec: f64,
    /// Median request round-trip, microseconds.
    pub p50_us: u64,
    /// Tail request round-trip, microseconds.
    pub p99_us: u64,
}

/// The full result set of one `mhp-bench server` run.
#[derive(Debug, Clone)]
pub struct ServerBenchReport {
    /// Options the run was configured with.
    pub options: ServerBenchOptions,
    /// One row per (mode, session count), in run order.
    pub rows: Vec<ServerBenchRow>,
}

fn bench_one(mode: &str, sessions: usize, opts: &ServerBenchOptions) -> ServerBenchRow {
    let config = ServerConfig {
        max_connections: sessions + 16,
        event_loop: (mode == "event-loop").then(EventLoopConfig::default),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", config).expect("bind bench server");
    let report = mux_loadgen(
        server.local_addr(),
        &MuxConfig {
            sessions,
            active: opts.active.min(sessions),
            events_per_session: opts.events_per_session,
            chunk_events: opts.chunk_events,
            session_prefix: format!("bench-{mode}-{sessions}"),
            deadline: opts.deadline,
            ..MuxConfig::default()
        },
    )
    .expect("mux loadgen run");
    assert_eq!(
        report.opened, sessions,
        "{mode}/{sessions}: not every session opened"
    );
    let mut probe = Client::connect(server.local_addr()).expect("probe connect");
    probe.shutdown_server().expect("shutdown");
    server.join();

    ServerBenchRow {
        mode: mode.to_string(),
        sessions,
        active: report.active,
        events: report.events,
        errors: report.errors,
        elapsed_secs: report.elapsed.as_secs_f64(),
        events_per_sec: report.events_per_sec(),
        p50_us: report.latency.quantile(0.50),
        p99_us: report.latency.quantile(0.99),
    }
}

/// Runs every configured (mode, session-count) row and collects the table.
pub fn run(opts: &ServerBenchOptions) -> ServerBenchReport {
    let mut rows = Vec::new();
    for &sessions in &opts.threaded_sessions {
        rows.push(bench_one("threaded", sessions, opts));
    }
    for &sessions in &opts.event_loop_sessions {
        rows.push(bench_one("event-loop", sessions, opts));
    }
    ServerBenchReport {
        options: opts.clone(),
        rows,
    }
}

impl ServerBenchReport {
    /// Stable-key JSON document, matching the other `BENCH_*.json` files.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"benchmark\": \"server\",\n");
        out.push_str(&format!("  \"active\": {},\n", self.options.active));
        out.push_str(&format!(
            "  \"events_per_session\": {},\n",
            self.options.events_per_session
        ));
        out.push_str(&format!(
            "  \"chunk_events\": {},\n",
            self.options.chunk_events
        ));
        out.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"mode\": \"{}\", \"sessions\": {}, \"active\": {}, \
                 \"events\": {}, \"errors\": {}, \"elapsed_secs\": {:.3}, \
                 \"events_per_sec\": {:.0}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
                r.mode,
                r.sessions,
                r.active,
                r.events,
                r.errors,
                r.elapsed_secs,
                r.events_per_sec,
                r.p50_us,
                r.p99_us,
                if i + 1 == self.rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable table for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "server scaling: {} active stream(s) x {} events, chunk {}\n",
            self.options.active, self.options.events_per_session, self.options.chunk_events
        ));
        out.push_str(&format!(
            "{:<12} {:>8} {:>12} {:>9} {:>9} {:>7}\n",
            "mode", "sessions", "events/sec", "p50_us", "p99_us", "errors"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>8} {:>12.0} {:>9} {:>9} {:>7}\n",
                r.mode, r.sessions, r.events_per_sec, r.p50_us, r.p99_us, r.errors
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_rows_for_both_modes() {
        let opts = ServerBenchOptions {
            threaded_sessions: vec![2],
            event_loop_sessions: vec![4],
            active: 2,
            events_per_session: 4_096,
            chunk_events: 4_096,
            deadline: Duration::from_secs(60),
        };
        let report = run(&opts);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].mode, "threaded");
        assert_eq!(report.rows[1].mode, "event-loop");
        for row in &report.rows {
            assert!(row.events > 0, "{}: no events acked", row.mode);
            assert!(row.events_per_sec > 0.0);
        }
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"server\""));
        assert!(json.contains("\"mode\": \"event-loop\""));
        assert!(report.render().contains("event-loop"));
    }
}
