//! # mhp-bench — experiment harness for the HPCA 2003 reproduction
//!
//! One runner per data-bearing figure of *"Catching Accurate Profiles in
//! Hardware"*. The `repro` binary is the command-line front end:
//!
//! ```text
//! repro fig12 --events 4000000 --seed 7
//! repro all
//! ```
//!
//! Every runner is also a library function (see [`figures`]) so integration
//! tests can execute scaled-down versions of each experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod fleet_bench;
pub mod harness;
pub mod hotpath;
pub mod profile;
pub mod server_bench;

pub use harness::{ProfilerKind, RunOptions};
