//! Shared experiment plumbing: profiler construction and run options.

use mhp_analysis::{run_comparison, ErrorSeries};
use mhp_core::{
    IntervalConfig, MultiHashConfig, MultiHashProfiler, SingleHashConfig, SingleHashProfiler, Tuple,
};
use mhp_stratified::{PeriodicSampler, RandomSampler, StratifiedConfig, StratifiedSampler};

/// Global knobs for an experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Events fed per (benchmark × configuration) run at the short interval
    /// length; long-interval runs are scaled up so that several intervals
    /// complete.
    pub events: u64,
    /// Stream seed (the same seed reproduces every number exactly).
    pub seed: u64,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Intervals dropped from the front of every error series before
    /// averaging. The paper averages hundreds of intervals per run, so its
    /// cold-start interval (empty accumulator, every candidate climbing at
    /// once) carries negligible weight; scaled-down runs drop it explicitly.
    /// Figure 13 ignores this (it plots the raw series).
    pub warmup_intervals: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            events: 2_000_000,
            seed: 0xCAFE,
            csv: false,
            warmup_intervals: 1,
        }
    }
}

impl RunOptions {
    /// Events to feed for a given interval configuration: at least
    /// `self.events`, and at least ten full intervals so that the cold-start
    /// transient of the first interval (empty accumulator, every candidate
    /// climbing through the hash tables at once) does not dominate the mean
    /// — the paper averages over hundreds of intervals.
    pub fn events_for(&self, interval: IntervalConfig) -> u64 {
        self.events.max(interval.interval_len() * 10)
    }
}

/// The profiler configurations the figures compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfilerKind {
    /// Single hash table with the paper's `P`/`R` switches (2K entries).
    SingleHash {
        /// Retaining (`P1`).
        retaining: bool,
        /// Resetting (`R1`).
        resetting: bool,
    },
    /// The paper's best single hash (`BSH` = `P1 R1`).
    BestSingleHash,
    /// Multi-hash with 2K total entries split over `tables` tables.
    MultiHash {
        /// Number of hash tables.
        tables: usize,
        /// Conservative update (`C1`).
        conservative: bool,
        /// Immediate resetting (`R1`).
        resetting: bool,
    },
    /// The stratified-sampler baseline (2K entries, tagged, aggregated).
    Stratified,
    /// A conventional periodic sampler (period 16, no hardware filtering).
    Periodic,
    /// A conventional random sampler (probability 1/16).
    Random,
}

impl ProfilerKind {
    /// Display label used in figure rows.
    pub fn label(&self) -> String {
        match *self {
            ProfilerKind::SingleHash {
                retaining,
                resetting,
            } => {
                format!("P{}, R{}", u8::from(retaining), u8::from(resetting))
            }
            ProfilerKind::BestSingleHash => "BSH".to_string(),
            ProfilerKind::MultiHash {
                tables,
                conservative,
                resetting,
            } => {
                format!(
                    "MH{tables} C{}, R{}",
                    u8::from(conservative),
                    u8::from(resetting)
                )
            }
            ProfilerKind::Stratified => "Stratified".to_string(),
            ProfilerKind::Periodic => "Periodic".to_string(),
            ProfilerKind::Random => "Random".to_string(),
        }
    }

    /// Builds the profiler and runs it against the perfect profiler over
    /// `events`, returning the error series with the first
    /// `warmup_intervals` intervals dropped.
    pub fn run_with_warmup<I>(
        &self,
        interval: IntervalConfig,
        seed: u64,
        events: I,
        warmup_intervals: usize,
    ) -> ErrorSeries
    where
        I: IntoIterator<Item = Tuple>,
    {
        let series = self.run(interval, seed, events);
        series
            .intervals()
            .iter()
            .skip(warmup_intervals)
            .cloned()
            .collect()
    }

    /// Builds the profiler and runs it against the perfect profiler over
    /// `events`, returning the full error series.
    pub fn run<I>(&self, interval: IntervalConfig, seed: u64, events: I) -> ErrorSeries
    where
        I: IntoIterator<Item = Tuple>,
    {
        match *self {
            ProfilerKind::SingleHash {
                retaining,
                resetting,
            } => {
                let config = SingleHashConfig::new(2048)
                    .expect("2048 is valid")
                    .with_retaining(retaining)
                    .with_resetting(resetting);
                let mut p = SingleHashProfiler::new(interval, config, seed)
                    .expect("valid single-hash profiler");
                run_comparison(&mut p, events).into_series()
            }
            ProfilerKind::BestSingleHash => {
                let mut p = SingleHashProfiler::new(interval, SingleHashConfig::best(), seed)
                    .expect("valid single-hash profiler");
                run_comparison(&mut p, events).into_series()
            }
            ProfilerKind::MultiHash {
                tables,
                conservative,
                resetting,
            } => {
                let config = MultiHashConfig::new(2048, tables)
                    .expect("2048 divides into the requested tables")
                    .with_conservative_update(conservative)
                    .with_resetting(resetting);
                let mut p = MultiHashProfiler::new(interval, config, seed)
                    .expect("valid multi-hash profiler");
                run_comparison(&mut p, events).into_series()
            }
            ProfilerKind::Stratified => {
                let config = StratifiedConfig::new(2048)
                    .expect("2048 is valid")
                    .with_sampling_threshold(16)
                    .with_tags(10, 64)
                    .with_aggregation(Default::default());
                let mut p = StratifiedSampler::new(interval, config, seed)
                    .expect("valid stratified sampler");
                run_comparison(&mut p, events).into_series()
            }
            ProfilerKind::Periodic => {
                let mut p = PeriodicSampler::new(interval, 16);
                run_comparison(&mut p, events).into_series()
            }
            ProfilerKind::Random => {
                let mut p = RandomSampler::new(interval, 16, seed);
                run_comparison(&mut p, events).into_series()
            }
        }
    }
}

/// The multi-hash design-space grid of Figures 10/11: `C{0,1} × R{0,1}` for
/// each table count.
pub fn design_space(tables: usize) -> [ProfilerKind; 4] {
    [
        ProfilerKind::MultiHash {
            tables,
            conservative: false,
            resetting: false,
        },
        ProfilerKind::MultiHash {
            tables,
            conservative: true,
            resetting: false,
        },
        ProfilerKind::MultiHash {
            tables,
            conservative: false,
            resetting: true,
        },
        ProfilerKind::MultiHash {
            tables,
            conservative: true,
            resetting: true,
        },
    ]
}

/// The paper's best multi-hash profiler (4 tables, `C1 R0`).
pub fn best_multi_hash() -> ProfilerKind {
    ProfilerKind::MultiHash {
        tables: 4,
        conservative: true,
        resetting: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_trace::Benchmark;

    #[test]
    fn labels_are_distinct_and_stable() {
        assert_eq!(ProfilerKind::BestSingleHash.label(), "BSH");
        assert_eq!(
            ProfilerKind::MultiHash {
                tables: 4,
                conservative: true,
                resetting: false
            }
            .label(),
            "MH4 C1, R0"
        );
        assert_eq!(
            ProfilerKind::SingleHash {
                retaining: true,
                resetting: false
            }
            .label(),
            "P1, R0"
        );
    }

    #[test]
    fn events_for_scales_to_interval_length() {
        let opts = RunOptions {
            events: 100_000,
            seed: 1,
            csv: false,
            warmup_intervals: 1,
        };
        assert_eq!(opts.events_for(IntervalConfig::short()), 100_000);
        assert_eq!(opts.events_for(IntervalConfig::long()), 10_000_000);
    }

    #[test]
    fn every_kind_runs_end_to_end() {
        let interval = IntervalConfig::new(5_000, 0.01).unwrap();
        for kind in [
            ProfilerKind::BestSingleHash,
            ProfilerKind::SingleHash {
                retaining: false,
                resetting: false,
            },
            best_multi_hash(),
            ProfilerKind::Stratified,
        ] {
            let events = Benchmark::Li.value_stream(1).take(10_000);
            let series = kind.run(interval, 1, events);
            assert_eq!(
                series.len(),
                2,
                "{} should complete 2 intervals",
                kind.label()
            );
        }
    }

    #[test]
    fn design_space_covers_all_four_combinations() {
        let grid = design_space(4);
        let labels: Vec<String> = grid.iter().map(ProfilerKind::label).collect();
        assert_eq!(labels.len(), 4);
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 4);
    }
}
