//! Smoke tests for the figure harness at reduced scale.

use mhp_bench::figures::{area, fig9, run_figure};
use mhp_bench::harness::{best_multi_hash, ProfilerKind};
use mhp_bench::RunOptions;
use mhp_core::IntervalConfig;
use mhp_trace::Benchmark;

fn tiny() -> RunOptions {
    RunOptions {
        events: 30_000,
        seed: 1,
        csv: false,
        warmup_intervals: 1,
    }
}

#[test]
fn fig9_and_area_run_instantly() {
    let f9 = fig9(&tiny());
    assert!(f9.render(false).contains("tables"));
    let fa = area(&tiny());
    assert!(fa.render(true).contains("7144"));
}

#[test]
fn fig9_theory_has_the_published_sweet_spots() {
    let fig = fig9(&tiny());
    let csv = fig.blocks[0].1.to_csv();
    // Row 4 (4 tables) should exist and carry five probability columns.
    let row4: Vec<&str> = csv
        .lines()
        .find(|l| l.starts_with("4,"))
        .expect("4-table row")
        .split(',')
        .collect();
    assert_eq!(row4.len(), 6);
}

#[test]
fn short_interval_figures_run_scaled_down() {
    // Exercise the full fig10 code path (two benchmarks, 16 runs) on a small
    // stream; 30_000 events at 10K intervals = 3 intervals per run.
    let fig = run_figure("fig10", &tiny());
    assert_eq!(fig.blocks.len(), 2);
    assert_eq!(fig.blocks[0].1.len(), 16, "4 table counts x 4 configs");
    let text = fig.render(false);
    assert!(text.contains("C1, R0"));
}

#[test]
fn best_multi_hash_outperforms_plain_on_a_real_figure_row() {
    let interval = IntervalConfig::short();
    let events = || Benchmark::Gcc.value_stream(2).take(100_000);
    let best = best_multi_hash()
        .run_with_warmup(interval, 2, events(), 1)
        .mean_total_percent();
    let plain = ProfilerKind::MultiHash {
        tables: 1,
        conservative: false,
        resetting: false,
    }
    .run_with_warmup(interval, 2, events(), 1)
    .mean_total_percent();
    assert!(
        best <= plain,
        "best multi-hash {best:.3}% should not lose to plain single-table {plain:.3}%"
    );
}

#[test]
fn samplers_figure_orders_the_ladder() {
    // At a tiny scale the full ladder should still order: conventional
    // sampling worse than the hash-based profilers on at least one noisy
    // benchmark.
    let fig = run_figure("samplers", &tiny());
    let table = &fig.blocks[0].1;
    assert_eq!(table.len(), 8 * 5, "8 benchmarks x 5 profilers");
    let csv = table.to_csv();
    assert!(csv.contains("Periodic"));
    assert!(csv.contains("MH4 C1, R0"));
}

#[test]
fn apps_figure_produces_all_rows() {
    let fig = run_figure("apps", &tiny());
    assert_eq!(fig.blocks.len(), 2);
    assert_eq!(fig.blocks[0].1.len(), 8);
    assert_eq!(fig.blocks[1].1.len(), 1);
    let csv = fig.blocks[1].1.to_csv();
    assert!(csv.contains("demo mix"));
}

#[test]
fn adaptive_figure_covers_every_benchmark() {
    let fig = run_figure("adaptive", &tiny());
    let csv = fig.blocks[0].1.to_csv();
    for bench in Benchmark::ALL {
        assert!(csv.contains(bench.name()));
    }
}

#[test]
fn stratified_figure_shows_the_overhead_tradeoff() {
    let fig = run_figure("stratified", &tiny());
    let table = &fig.blocks[0].1;
    assert_eq!(
        table.len(),
        2 * 3 * 3,
        "2 benchmarks x 3 thresholds x 3 variants"
    );
    let csv = table.to_csv();
    assert!(csv.contains("tagged+agg"));
}

#[test]
fn overhead_figure_reports_interrupts() {
    let fig = run_figure("overhead", &tiny());
    let csv = fig.blocks[0].1.to_csv();
    // Every benchmark row must be present.
    for bench in Benchmark::ALL {
        assert!(csv.contains(bench.name()), "{} missing", bench.name());
    }
}
