//! Event-generation throughput: the workload substrate must be much faster
//! than the profilers it feeds, or figure runs would measure the generator.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mhp_trace::sim::{programs, Machine, TupleCollector};
use mhp_trace::Benchmark;

const EVENTS: usize = 100_000;

fn bench_value_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_stream");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(20);
    for bench in [Benchmark::Gcc, Benchmark::Burg, Benchmark::M88ksim] {
        group.bench_function(bench.name(), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for t in bench.value_stream(black_box(3)).take(EVENTS) {
                    acc ^= t.pc().as_u64();
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_edge_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_stream");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(20);
    group.bench_function("gcc", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for t in Benchmark::Gcc.edge_stream(black_box(3)).take(EVENTS) {
                acc ^= t.value().as_u64();
            }
            acc
        })
    });
    group.finish();
}

fn bench_toy_cpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("toy_cpu");
    group.sample_size(20);
    group.bench_function("array_sum_10k", |b| {
        b.iter(|| {
            let mut machine = Machine::new(programs::array_sum(10_000));
            let mut hook = TupleCollector::new();
            machine.run(10_000_000, &mut hook).unwrap();
            hook.loads().len()
        })
    });
    group.bench_function("dispatch_loop_10k", |b| {
        b.iter(|| {
            let mut machine = Machine::new(programs::dispatch_loop(64, 10_000));
            let mut hook = TupleCollector::new();
            machine.run(100_000_000, &mut hook).unwrap();
            hook.edges().len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_value_streams,
    bench_edge_streams,
    bench_toy_cpu
);
criterion_main!(benches);
