//! Throughput of the cache substrate and the §2 optimization clients.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mhp_apps::{FrequentValueTable, TraceFormer};
use mhp_cache::{access::AccessPattern, Cache, CacheConfig, MissEvents};
use mhp_core::{Candidate, IntervalConfig, IntervalProfile, Tuple};
use mhp_trace::Benchmark;

const ACCESSES: usize = 100_000;

fn bench_cache_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(ACCESSES as u64));
    group.sample_size(20);
    for (label, assoc) in [("direct_mapped", 1usize), ("four_way", 4), ("eight_way", 8)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cache = Cache::new(CacheConfig::new(32 * 1024, 64, assoc).expect("valid"));
                let mut misses = 0u64;
                for a in AccessPattern::demo_mix(black_box(1))
                    .events()
                    .take(ACCESSES)
                {
                    if cache.access(a.addr).is_miss() {
                        misses += 1;
                    }
                }
                misses
            })
        });
    }
    group.finish();
}

fn bench_miss_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("miss_stream");
    group.throughput(Throughput::Elements(ACCESSES as u64));
    group.sample_size(20);
    group.bench_function("demo_mix_through_32k", |b| {
        b.iter(|| {
            let cache = Cache::new(CacheConfig::new(32 * 1024, 64, 4).expect("valid"));
            MissEvents::new(
                cache,
                AccessPattern::demo_mix(black_box(2))
                    .events()
                    .take(ACCESSES),
            )
            .count()
        })
    });
    group.finish();
}

fn sample_profile(n: usize) -> IntervalProfile {
    let candidates: Vec<Candidate> = (0..n as u64)
        .map(|i| Candidate::new(Tuple::new(0x1000 + i * 8, i % 16), 1_000 - i))
        .collect();
    IntervalProfile::from_candidates(0, IntervalConfig::short(), candidates)
}

fn bench_clients(c: &mut Criterion) {
    let profile = sample_profile(128);
    let events: Vec<Tuple> = Benchmark::Li.value_stream(3).take(50_000).collect();
    let mut group = c.benchmark_group("clients");
    group.sample_size(20);
    group.bench_function("fvc_from_profile_and_evaluate", |b| {
        b.iter(|| {
            let fvc = FrequentValueTable::from_profile(black_box(&profile), 16);
            fvc.evaluate(events.iter().copied()).ratio()
        })
    });
    group.bench_function("trace_former_form_traces", |b| {
        b.iter(|| {
            TraceFormer::from_profile(black_box(&profile))
                .form_traces(16, 8)
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_access,
    bench_miss_stream,
    bench_clients
);
criterion_main!(benches);
