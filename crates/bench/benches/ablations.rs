//! Ablation benches for the design choices DESIGN.md calls out: what each
//! optimization costs in per-event time (its *accuracy* effect is measured
//! by the `repro` harness, not here).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mhp_core::{
    EventProfiler, IntervalConfig, MultiHashConfig, MultiHashProfiler, SingleHashConfig,
    SingleHashProfiler, Tuple,
};
use mhp_trace::Benchmark;

const EVENTS: usize = 100_000;

fn stream() -> Vec<Tuple> {
    Benchmark::Gcc.value_stream(5).take(EVENTS).collect()
}

fn drive<P: EventProfiler>(profiler: &mut P, events: &[Tuple]) -> usize {
    let mut intervals = 0;
    for &t in events {
        if profiler.observe(black_box(t)).is_some() {
            intervals += 1;
        }
    }
    intervals
}

/// Conservative update reads all counters before deciding which to bump;
/// plain update just bumps. Measure the delta.
fn bench_update_policy(c: &mut Criterion) {
    let events = stream();
    let interval = IntervalConfig::short();
    let mut group = c.benchmark_group("ablation_update_policy");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(20);
    for (label, conservative) in [("plain_update", false), ("conservative_update", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = MultiHashConfig::new(2048, 4)
                    .unwrap()
                    .with_conservative_update(conservative);
                let mut p = MultiHashProfiler::new(interval, config, 1).unwrap();
                drive(&mut p, &events)
            })
        });
    }
    group.finish();
}

/// Retaining changes the end-of-interval sweep and keeps the accumulator
/// populated (more shield hits, fewer hash updates).
fn bench_retaining(c: &mut Criterion) {
    let events = stream();
    let interval = IntervalConfig::short();
    let mut group = c.benchmark_group("ablation_retaining");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(20);
    for (label, retaining) in [("without_retaining", false), ("with_retaining", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = MultiHashConfig::new(2048, 4)
                    .unwrap()
                    .with_retaining(retaining);
                let mut p = MultiHashProfiler::new(interval, config, 1).unwrap();
                drive(&mut p, &events)
            })
        });
    }
    group.finish();
}

/// Accumulator capacity drives the shield-lookup hash-map size: the paper's
/// 100-entry (1%) vs 1,000-entry (0.1%) designs.
fn bench_accumulator_capacity(c: &mut Criterion) {
    let events = stream();
    let mut group = c.benchmark_group("ablation_accumulator_capacity");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(20);
    for (label, threshold) in [("capacity_100", 0.01), ("capacity_1000", 0.001)] {
        let interval = IntervalConfig::new(10_000, threshold).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut p = SingleHashProfiler::new(interval, SingleHashConfig::best(), 1).unwrap();
                drive(&mut p, &events)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_update_policy,
    bench_retaining,
    bench_accumulator_capacity
);
criterion_main!(benches);
