//! Per-event cost of each profiling architecture on a gcc-like stream —
//! the software-simulation analogue of the paper's "no performance
//! overhead" claim (in hardware these updates are off the critical path;
//! here they bound simulation speed).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mhp_core::{
    EventProfiler, IntervalConfig, MultiHashConfig, MultiHashProfiler, PerfectProfiler,
    SingleHashConfig, SingleHashProfiler, Tuple,
};
use mhp_stratified::{StratifiedConfig, StratifiedSampler};
use mhp_trace::Benchmark;

const EVENTS: usize = 100_000;

fn stream() -> Vec<Tuple> {
    Benchmark::Gcc.value_stream(7).take(EVENTS).collect()
}

fn drive<P: EventProfiler>(profiler: &mut P, events: &[Tuple]) -> usize {
    let mut intervals = 0;
    for &t in events {
        if profiler.observe(black_box(t)).is_some() {
            intervals += 1;
        }
    }
    intervals
}

fn bench_architectures(c: &mut Criterion) {
    let events = stream();
    let interval = IntervalConfig::short();
    let mut group = c.benchmark_group("profiler_observe");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(20);

    group.bench_function("single_hash_best", |b| {
        b.iter(|| {
            let mut p = SingleHashProfiler::new(interval, SingleHashConfig::best(), 1).unwrap();
            drive(&mut p, &events)
        })
    });

    for tables in [1usize, 2, 4, 8, 16] {
        group.bench_function(format!("multi_hash_{tables}_tables"), |b| {
            b.iter(|| {
                let config = MultiHashConfig::new(2048, tables).unwrap();
                let mut p = MultiHashProfiler::new(interval, config, 1).unwrap();
                drive(&mut p, &events)
            })
        });
    }

    group.bench_function("stratified_sampler", |b| {
        b.iter(|| {
            let config = StratifiedConfig::new(2048)
                .unwrap()
                .with_sampling_threshold(16)
                .with_tags(10, 64);
            let mut p = StratifiedSampler::new(interval, config, 1).unwrap();
            drive(&mut p, &events)
        })
    });

    group.bench_function("perfect_profiler", |b| {
        b.iter(|| {
            let mut p = PerfectProfiler::new(interval);
            drive(&mut p, &events)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_architectures);
criterion_main!(benches);
