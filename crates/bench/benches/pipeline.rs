//! Ingest throughput of the sharded pipeline: events/sec for 1 vs 8 shards
//! (the ISSUE's acceptance benchmark), plus trace encode/decode speed.
//!
//! Parallel speedup here is bounded by the synthetic generator and the
//! per-event dispatch hash, both of which run on the single dispatcher
//! thread — the interesting number is how much profiler work the shards
//! take off that thread's critical path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mhp_core::{IntervalConfig, MultiHashConfig, Tuple};
use mhp_pipeline::{EngineConfig, ProfilerSpec, ShardedEngine, TraceReader, TraceWriter};
use mhp_trace::Benchmark;

const EVENTS: usize = 200_000;

fn stream() -> Vec<Tuple> {
    Benchmark::Gcc.value_stream(7).take(EVENTS).collect()
}

fn bench_sharded_ingest(c: &mut Criterion) {
    let events = stream();
    let interval = IntervalConfig::new(10_000, 0.01).unwrap();
    let mut group = c.benchmark_group("pipeline_ingest");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);

    for shards in [1usize, 2, 8] {
        group.bench_function(format!("multi_hash_{shards}_shards"), |b| {
            let engine = ShardedEngine::new(
                EngineConfig::new(shards),
                interval,
                ProfilerSpec::MultiHash(MultiHashConfig::best()),
                1,
            );
            b.iter(|| {
                let report = engine.run(events.iter().copied()).unwrap();
                black_box(report.intervals)
            })
        });
    }

    group.finish();
}

fn bench_trace_codec(c: &mut Criterion) {
    let events = stream();
    let mut group = c.benchmark_group("pipeline_trace");
    group.throughput(Throughput::Elements(EVENTS as u64));
    group.sample_size(10);

    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut writer = TraceWriter::new(Vec::new(), mhp_pipeline::TraceKind::Value);
            writer.write_all(events.iter().copied()).unwrap();
            black_box(writer.finish().unwrap().len())
        })
    });

    let mut writer = TraceWriter::new(Vec::new(), mhp_pipeline::TraceKind::Value);
    writer.write_all(events.iter().copied()).unwrap();
    let encoded = writer.finish().unwrap();

    group.bench_function("decode", |b| {
        b.iter(|| {
            let reader = TraceReader::new(encoded.as_slice()).unwrap();
            black_box(reader.count())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sharded_ingest, bench_trace_codec);
criterion_main!(benches);
