//! Micro-benchmarks for the hash-function family — the logic on the
//! profiler's critical path that real hardware would implement as wired
//! S-boxes and xor trees.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mhp_core::hash::{xor_fold, HashFamily, TupleHasher};
use mhp_core::Tuple;

fn bench_single_hasher(c: &mut Criterion) {
    let hasher = TupleHasher::new(2048, 1).unwrap();
    let tuples: Vec<Tuple> = (0..1024u64)
        .map(|i| Tuple::new(0x400000 + i * 4, i))
        .collect();
    let mut group = c.benchmark_group("hashing");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.bench_function("tuple_hasher_index_1k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &t in &tuples {
                acc ^= hasher.index(black_box(t));
            }
            acc
        })
    });
    group.finish();
}

fn bench_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_family");
    for tables in [1usize, 2, 4, 8, 16] {
        let family = HashFamily::new(tables, 2048 / tables, 1).unwrap();
        let tuples: Vec<Tuple> = (0..1024u64)
            .map(|i| Tuple::new(0x400000 + i * 4, i))
            .collect();
        group.throughput(Throughput::Elements(tuples.len() as u64));
        group.bench_function(format!("indices_{tables}_tables"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for &t in &tuples {
                    for idx in family.indices(black_box(t)) {
                        acc ^= idx;
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_xor_fold(c: &mut Criterion) {
    c.bench_function("xor_fold_11_bits", |b| {
        b.iter(|| xor_fold(black_box(0x1234_5678_9ABC_DEF0), black_box(11)))
    });
}

criterion_group!(benches, bench_single_hasher, bench_family, bench_xor_fold);
criterion_main!(benches);
