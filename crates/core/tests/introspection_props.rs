//! Property tests for the introspection layer: the per-interval counts a
//! [`SketchSnapshot`] reports must be *consistent* with the accumulator
//! state the profiler actually reached.
//!
//! The load-bearing invariant: within one interval the accumulator starts
//! with the entries retained from the previous interval, every promotion
//! adds exactly one entry (either into an empty slot or by evicting a
//! replaceable resident), so at interval end
//!
//! ```text
//! accumulator_len[i] == retained[i-1] + promotions[i] - evictions[i]
//! ```
//!
//! with `retained[-1] = 0`. This holds for every architecture and every
//! combination of the paper's optimizations (shielding, retaining,
//! resetting, conservative update).

use std::sync::Arc;

use mhp_core::{
    CollectingSink, EventProfiler, IntervalConfig, MultiHashConfig, MultiHashProfiler,
    SingleHashConfig, SingleHashProfiler, SketchSnapshot, Tuple,
};
use proptest::prelude::*;

/// Checks every cross-snapshot invariant over a profiler run's snapshots.
fn check_invariants(snapshots: &[SketchSnapshot]) {
    let mut prev_retained = 0u64;
    for (i, snap) in snapshots.iter().enumerate() {
        prop_assert_eq!(
            snap.interval_index,
            i as u64,
            "snapshots arrive in interval order"
        );
        prop_assert_eq!(
            snap.accumulator_len,
            prev_retained + snap.promotions - snap.evictions,
            "interval {}: len {} != retained {} + promotions {} - evictions {}",
            i,
            snap.accumulator_len,
            prev_retained,
            snap.promotions,
            snap.evictions
        );
        prop_assert!(
            snap.accumulator_len <= snap.accumulator_capacity,
            "accumulator never exceeds its capacity"
        );
        prop_assert!(
            snap.retained <= snap.accumulator_len,
            "can only retain entries that are resident"
        );
        prop_assert!(
            snap.counters_occupied <= snap.counters_total,
            "occupancy is bounded by the table size"
        );
        prop_assert!(
            snap.shield_hits + snap.promotions + snap.promotions_dropped <= snap.events,
            "every tallied event was observed"
        );
        prev_retained = snap.retained;
    }
}

/// Drives `profiler` over `events` (flushing any trailing partial interval)
/// and returns the snapshots its sink collected.
fn run_collecting<P: EventProfiler>(profiler: &mut P, events: &[Tuple]) -> Vec<SketchSnapshot> {
    let sink = Arc::new(CollectingSink::new());
    profiler.set_introspection_sink(Some(sink.clone()));
    for &t in events {
        profiler.observe(t);
    }
    if profiler.events_in_current_interval() > 0 {
        profiler.finish_interval();
    }
    sink.snapshots()
}

fn tuples(raw: &[(u64, u64)]) -> Vec<Tuple> {
    raw.iter().map(|&(pc, v)| Tuple::new(pc, v)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn multi_hash_counts_are_consistent_with_accumulator_state(
        raw in prop::collection::vec((0u64..32, 0u64..3), 1..2_000),
        interval_len in 16u64..400,
        shielding in any::<bool>(),
        retaining in any::<bool>(),
        resetting in any::<bool>(),
        conservative in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let events = tuples(&raw);
        let interval = IntervalConfig::new(interval_len, 0.05).unwrap();
        let config = MultiHashConfig::new(64, 4)
            .unwrap()
            .with_shielding(shielding)
            .with_retaining(retaining)
            .with_resetting(resetting)
            .with_conservative_update(conservative);
        let mut profiler = MultiHashProfiler::new(interval, config, seed).unwrap();
        let snapshots = run_collecting(&mut profiler, &events);
        prop_assert!(!snapshots.is_empty());
        check_invariants(&snapshots);
        if !retaining {
            prop_assert!(snapshots.iter().all(|s| s.retained == 0));
        }
    }

    #[test]
    fn single_hash_counts_are_consistent_with_accumulator_state(
        raw in prop::collection::vec((0u64..32, 0u64..3), 1..2_000),
        interval_len in 16u64..400,
        shielding in any::<bool>(),
        retaining in any::<bool>(),
        resetting in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let events = tuples(&raw);
        let interval = IntervalConfig::new(interval_len, 0.05).unwrap();
        let config = SingleHashConfig::new(64)
            .unwrap()
            .with_shielding(shielding)
            .with_retaining(retaining)
            .with_resetting(resetting);
        let mut profiler = SingleHashProfiler::new(interval, config, seed).unwrap();
        let snapshots = run_collecting(&mut profiler, &events);
        prop_assert!(!snapshots.is_empty());
        check_invariants(&snapshots);
    }

    #[test]
    fn batched_and_per_event_observation_tally_identically(
        raw in prop::collection::vec((0u64..24, 0u64..3), 1..1_200),
        interval_len in 16u64..300,
        seed in any::<u64>(),
    ) {
        let events = tuples(&raw);
        let interval = IntervalConfig::new(interval_len, 0.05).unwrap();
        let config = MultiHashConfig::best();

        let mut per_event = MultiHashProfiler::new(interval, config, seed).unwrap();
        let a = run_collecting(&mut per_event, &events);

        let sink = Arc::new(CollectingSink::new());
        let mut batched = MultiHashProfiler::new(interval, config, seed).unwrap();
        batched.set_introspection_sink(Some(sink.clone()));
        for chunk in events.chunks(97) {
            batched.observe_batch(chunk);
        }
        if batched.events_in_current_interval() > 0 {
            batched.finish_interval();
        }
        let b = sink.snapshots();

        prop_assert_eq!(a, b, "batch path and per-event path report identical snapshots");
    }
}
