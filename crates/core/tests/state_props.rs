//! Checkpoint round-trip properties: `save_state` → `restore_state` →
//! continue must be indistinguishable — bit for bit — from an uninterrupted
//! run, for every profiler architecture, at any stream position, including
//! cuts landing mid-interval. Plus adversarial snapshot tests: truncation,
//! bit flips, version/kind/config mismatches all fail with typed errors and
//! leave the live profiler untouched.

use mhp_core::state::{crc32, SNAPSHOT_MAGIC};
use mhp_core::{
    Candidate, EventProfiler, IntervalConfig, IntervalProfile, MultiHashConfig, MultiHashProfiler,
    PerfectProfiler, SingleHashConfig, SingleHashProfiler, SnapshotError, Tuple,
};
use proptest::prelude::*;

const SEED: u64 = 0xFEED_FACE;

/// The three profiler specs the service supports: single-hash (best, P1 R1),
/// multi-hash (C1 R0 — the paper's preferred corner) and the perfect
/// reference.
fn build(spec: u8) -> Box<dyn EventProfiler> {
    let interval = IntervalConfig::new(50, 0.1).unwrap();
    match spec % 3 {
        0 => Box::new(SingleHashProfiler::new(interval, SingleHashConfig::best(), SEED).unwrap()),
        1 => Box::new(
            MultiHashProfiler::new(interval, MultiHashConfig::new(64, 4).unwrap(), SEED).unwrap(),
        ),
        _ => Box::new(PerfectProfiler::new(interval)),
    }
}

/// Feeds `events`, forcing an external mid-interval cut after every position
/// listed in `cuts`; returns every completed interval profile.
fn drive(
    profiler: &mut dyn EventProfiler,
    events: &[(u64, u64)],
    cuts: &[usize],
) -> Vec<IntervalProfile> {
    let mut out = Vec::new();
    for (i, &(pc, value)) in events.iter().enumerate() {
        if let Some(p) = profiler.observe(Tuple::new(pc, value)) {
            out.push(p);
        }
        if cuts.contains(&i) {
            out.push(profiler.finish_interval());
        }
    }
    out
}

fn final_state(profiler: &mut dyn EventProfiler) -> (Vec<Candidate>, u64, u64, IntervalProfile) {
    let top = profiler.hot_tuples(16);
    let events = profiler.events_in_current_interval();
    let idx = profiler.interval_index();
    let flush = profiler.finish_interval();
    (top, events, idx, flush)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn save_restore_continue_equals_uninterrupted(
        spec in 0u8..3,
        raw in prop::collection::vec((0u64..16, 0u64..4), 1..400),
        cuts in prop::collection::vec(0usize..400, 0..4),
        split in 0usize..400,
    ) {
        let split = split % raw.len();

        // Reference: one uninterrupted run.
        let mut uninterrupted = build(spec);
        let expected = drive(uninterrupted.as_mut(), &raw, &cuts);
        let expected_final = final_state(uninterrupted.as_mut());

        // Interrupted run: prefix, snapshot, restore into a fresh profiler
        // of the same configuration, suffix.
        let mut first = build(spec);
        let mut got = drive(first.as_mut(), &raw[..split], &cuts);
        let snapshot = first.save_state().unwrap();
        prop_assert_eq!(
            &first.save_state().unwrap(),
            &snapshot,
            "saving twice must produce identical bytes"
        );

        let mut second = build(spec);
        second.restore_state(&snapshot).unwrap();
        prop_assert_eq!(
            &second.save_state().unwrap(),
            &snapshot,
            "a restored profiler must re-snapshot to the same bytes"
        );
        let tail_cuts: Vec<usize> = cuts
            .iter()
            .filter(|&&c| c >= split)
            .map(|&c| c - split)
            .collect();
        got.extend(drive(second.as_mut(), &raw[split..], &tail_cuts));

        prop_assert_eq!(got, expected);
        prop_assert_eq!(final_state(second.as_mut()), expected_final);
    }
}

/// Builds a mid-stream snapshot with non-trivial counter and accumulator
/// state for the corruption tests.
fn busy_snapshot(spec: u8) -> (Box<dyn EventProfiler>, Vec<u8>) {
    let mut p = build(spec);
    for i in 0..137u64 {
        p.observe(Tuple::new(i % 9, i % 3));
    }
    let snap = p.save_state().unwrap();
    (p, snap)
}

#[test]
fn every_truncation_fails_typed_and_leaves_state_untouched() {
    for spec in 0..3u8 {
        let (mut p, snap) = busy_snapshot(spec);
        let before = p.hot_tuples(16);
        for len in 0..snap.len() {
            let err = p.restore_state(&snap[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::CrcMismatch { .. }
                ),
                "spec {spec} len {len}: got {err}"
            );
        }
        assert_eq!(p.hot_tuples(16), before, "failed restore must not mutate");
    }
}

#[test]
fn every_bit_flip_fails_typed() {
    for spec in 0..3u8 {
        let (mut p, snap) = busy_snapshot(spec);
        // Step through the snapshot; every flipped byte must be caught by
        // the magic check or the CRC.
        for i in (0..snap.len()).step_by(7) {
            let mut bad = snap.clone();
            bad[i] ^= 0x20;
            let err = p.restore_state(&bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::BadMagic | SnapshotError::CrcMismatch { .. }
                ),
                "spec {spec} byte {i}: got {err}"
            );
        }
    }
}

/// Re-seals snapshot bytes with a fresh CRC so tampered fields get past the
/// integrity check and must be caught by the semantic validation.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    bytes.truncate(bytes.len() - 4);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

#[test]
fn version_bump_is_rejected() {
    let (mut p, snap) = busy_snapshot(0);
    let mut bad = snap;
    bad[SNAPSHOT_MAGIC.len()] = 99;
    assert_eq!(
        p.restore_state(&reseal(bad)).unwrap_err(),
        SnapshotError::UnsupportedVersion(99)
    );
}

#[test]
fn wrong_profiler_kind_is_rejected() {
    let (_, single_snap) = busy_snapshot(0);
    let mut multi = build(1);
    assert!(matches!(
        multi.restore_state(&single_snap).unwrap_err(),
        SnapshotError::KindMismatch { .. }
    ));
}

#[test]
fn config_mismatches_are_rejected() {
    let interval = IntervalConfig::new(50, 0.1).unwrap();
    let (_, snap) = busy_snapshot(0);

    // Different seed, same geometry.
    let mut other_seed =
        SingleHashProfiler::new(interval, SingleHashConfig::best(), SEED ^ 1).unwrap();
    assert_eq!(
        other_seed.restore_state(&snap).unwrap_err(),
        SnapshotError::ConfigMismatch {
            context: "hash seed"
        }
    );

    // Different table size.
    let mut other_size = SingleHashProfiler::new(
        interval,
        SingleHashConfig::new(4096)
            .unwrap()
            .with_resetting(true)
            .with_retaining(true),
        SEED,
    )
    .unwrap();
    assert!(matches!(
        other_size.restore_state(&snap).unwrap_err(),
        SnapshotError::ConfigMismatch { .. }
    ));

    // Different interval length.
    let mut other_interval = SingleHashProfiler::new(
        IntervalConfig::new(60, 0.1).unwrap(),
        SingleHashConfig::best(),
        SEED,
    )
    .unwrap();
    assert_eq!(
        other_interval.restore_state(&snap).unwrap_err(),
        SnapshotError::ConfigMismatch {
            context: "interval length"
        }
    );

    // Different option flags.
    let mut other_flags =
        SingleHashProfiler::new(interval, SingleHashConfig::new(2048).unwrap(), SEED).unwrap();
    assert!(matches!(
        other_flags.restore_state(&snap).unwrap_err(),
        SnapshotError::ConfigMismatch { .. }
    ));
}

#[test]
fn profilers_without_snapshot_support_report_unsupported() {
    struct Opaque;
    impl EventProfiler for Opaque {
        fn interval_config(&self) -> IntervalConfig {
            IntervalConfig::short()
        }
        fn observe(&mut self, _tuple: Tuple) -> Option<IntervalProfile> {
            None
        }
        fn finish_interval(&mut self) -> IntervalProfile {
            IntervalProfile::from_candidates(0, IntervalConfig::short(), Vec::new())
        }
        fn reset(&mut self) {}
        fn events_in_current_interval(&self) -> u64 {
            0
        }
        fn interval_index(&self) -> u64 {
            0
        }
    }
    let mut p = Opaque;
    assert_eq!(p.save_state().unwrap_err(), SnapshotError::Unsupported);
    assert_eq!(
        p.restore_state(&[]).unwrap_err(),
        SnapshotError::Unsupported
    );
}
