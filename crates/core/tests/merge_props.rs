//! Property tests for [`IntervalProfile::merge`]: merging per-shard profiles
//! is commutative and associative, and the merged result is invariant under
//! how the event stream was split across shards.
//!
//! These are the algebraic facts the sharded ingestion engine
//! (`mhp-pipeline`) and the profiling service (`mhp-server`) lean on: any
//! partitioning of an interval's events across any number of shards, merged
//! in any order or grouping, must produce the same global profile.

use std::collections::HashMap;

use mhp_core::{Candidate, IntervalConfig, IntervalProfile, Tuple};
use proptest::prelude::*;

/// Builds the profile a shard would report for its partition of an interval:
/// every tuple it saw, with its exact partition-local count.
fn shard_profile(events: &[Tuple]) -> IntervalProfile {
    let mut counts: HashMap<Tuple, u64> = HashMap::new();
    for &t in events {
        *counts.entry(t).or_insert(0) += 1;
    }
    let candidates: Vec<Candidate> = counts
        .into_iter()
        .map(|(t, c)| Candidate::new(t, c))
        .collect();
    IntervalProfile::from_candidates(0, IntervalConfig::short(), candidates)
}

/// Splits `events` into `ways` partitions according to `assignment`.
fn split(events: &[Tuple], assignment: &[usize], ways: usize) -> Vec<Vec<Tuple>> {
    let mut parts = vec![Vec::new(); ways];
    for (&t, &slot) in events.iter().zip(assignment) {
        parts[slot % ways].push(t);
    }
    parts
}

fn tuples(raw: &[(u64, u64)]) -> Vec<Tuple> {
    raw.iter().map(|&(pc, v)| Tuple::new(pc, v)).collect()
}

proptest! {
    #[test]
    fn merge_is_commutative_over_two_way_splits(
        raw in prop::collection::vec((0u64..24, 0u64..4), 1..300),
        assignment in prop::collection::vec(0usize..2, 300usize),
    ) {
        let events = tuples(&raw);
        let parts = split(&events, &assignment, 2);
        let a = shard_profile(&parts[0]);
        let b = shard_profile(&parts[1]);
        let ab = IntervalProfile::merge([a.clone(), b.clone()]).unwrap();
        let ba = IntervalProfile::merge([b, a]).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative_over_three_way_splits(
        raw in prop::collection::vec((0u64..24, 0u64..4), 1..300),
        assignment in prop::collection::vec(0usize..3, 300usize),
    ) {
        let events = tuples(&raw);
        let parts = split(&events, &assignment, 3);
        let [a, b, c] = [
            shard_profile(&parts[0]),
            shard_profile(&parts[1]),
            shard_profile(&parts[2]),
        ];

        let ab_then_c = IntervalProfile::merge([
            IntervalProfile::merge([a.clone(), b.clone()]).unwrap(),
            c.clone(),
        ])
        .unwrap();
        let a_then_bc = IntervalProfile::merge([
            a.clone(),
            IntervalProfile::merge([b.clone(), c.clone()]).unwrap(),
        ])
        .unwrap();
        let flat = IntervalProfile::merge([a, b, c]).unwrap();

        prop_assert_eq!(&ab_then_c, &a_then_bc);
        prop_assert_eq!(&ab_then_c, &flat);
    }

    #[test]
    fn merged_profile_is_invariant_under_the_split(
        raw in prop::collection::vec((0u64..24, 0u64..4), 1..300),
        assignment_a in prop::collection::vec(0usize..2, 300usize),
        assignment_b in prop::collection::vec(0usize..3, 300usize),
    ) {
        let events = tuples(&raw);
        // The unsplit reference: one "shard" saw everything.
        let reference = shard_profile(&events);

        let two = split(&events, &assignment_a, 2);
        let merged_two =
            IntervalProfile::merge(two.iter().map(|p| shard_profile(p))).unwrap();

        let three = split(&events, &assignment_b, 3);
        let merged_three =
            IntervalProfile::merge(three.iter().map(|p| shard_profile(p))).unwrap();

        prop_assert_eq!(&merged_two, &reference);
        prop_assert_eq!(&merged_three, &reference);
    }
}

/// Serializes a profile through the shared interchange codec and back —
/// the path every fleet hop (engine snapshot, server checkpoint,
/// aggregator pull) takes.
fn round_trip(profile: &IntervalProfile) -> IntervalProfile {
    use mhp_core::state::KIND_AGGREGATOR;
    use mhp_core::{put_profile, take_profile, SnapshotReader, SnapshotWriter};
    let mut w = SnapshotWriter::new(KIND_AGGREGATOR);
    put_profile(&mut w, profile);
    let bytes = w.finish();
    let mut r = SnapshotReader::open(&bytes, KIND_AGGREGATOR).unwrap();
    let back = take_profile(&mut r).unwrap();
    r.expect_end().unwrap();
    back
}

proptest! {
    /// N-way generalization: any number of shards, merged in any order
    /// and under any grouping (flat, left fold, pairwise tree), produces
    /// the same profile. This is what lets an aggregation tier of any
    /// shape claim the same answer as a single flat merge.
    #[test]
    fn n_way_merge_is_invariant_under_order_and_grouping(
        raw in prop::collection::vec((0u64..24, 0u64..4), 1..300),
        assignment in prop::collection::vec(0usize..6, 300usize),
        ways in 2usize..6,
        rotation in 0usize..6,
    ) {
        let events = tuples(&raw);
        let parts = split(&events, &assignment, ways);
        let shards: Vec<IntervalProfile> =
            parts.iter().map(|p| shard_profile(p)).collect();

        // Flat n-way merge in the original order.
        let flat = IntervalProfile::merge(shards.iter().cloned()).unwrap();

        // Same shards, rotated — commutativity at n.
        let mut rotated = shards.clone();
        rotated.rotate_left(rotation % ways);
        let flat_rotated = IntervalProfile::merge(rotated).unwrap();

        // Left fold, one shard at a time — associativity at n.
        let mut fold = shards[0].clone();
        for shard in &shards[1..] {
            fold = IntervalProfile::merge([fold, shard.clone()]).unwrap();
        }

        // Pairwise tree: merge adjacent pairs, then merge the layer —
        // the shape a hierarchical aggregator actually builds.
        let mut layer = shards.clone();
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| IntervalProfile::merge(pair.iter().cloned()).unwrap())
                .collect();
        }

        prop_assert_eq!(&flat, &flat_rotated);
        prop_assert_eq!(&flat, &fold);
        prop_assert_eq!(&flat, &layer[0]);
    }

    /// Snapshot round-trips commute with merging: serializing every shard
    /// profile through the shared codec and merging the restored copies
    /// equals merging the originals — and re-serializing both merged
    /// results yields identical bytes. This is the end-to-end guarantee
    /// behind "a restored aggregator answers bit-identically".
    #[test]
    fn merge_after_snapshot_round_trip_matches_direct_merge(
        raw in prop::collection::vec((0u64..24, 0u64..4), 1..300),
        assignment in prop::collection::vec(0usize..4, 300usize),
        ways in 2usize..4,
    ) {
        use mhp_core::state::KIND_AGGREGATOR;
        use mhp_core::{put_profile, SnapshotWriter};

        let events = tuples(&raw);
        let parts = split(&events, &assignment, ways);
        let shards: Vec<IntervalProfile> =
            parts.iter().map(|p| shard_profile(p)).collect();

        let direct = IntervalProfile::merge(shards.iter().cloned()).unwrap();
        let through_codec =
            IntervalProfile::merge(shards.iter().map(round_trip)).unwrap();
        prop_assert_eq!(&direct, &through_codec);

        // Equal profiles serialize to equal bytes, whichever path
        // produced them.
        let encode = |p: &IntervalProfile| {
            let mut w = SnapshotWriter::new(KIND_AGGREGATOR);
            put_profile(&mut w, p);
            w.finish()
        };
        prop_assert_eq!(encode(&direct), encode(&through_codec));
        prop_assert_eq!(round_trip(&direct), direct);
    }
}
