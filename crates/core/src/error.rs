//! Error types for profiler configuration.

use std::error::Error;
use std::fmt;

/// An error produced while validating a profiler configuration.
///
/// Returned by the constructors of [`IntervalConfig`](crate::IntervalConfig),
/// [`SingleHashConfig`](crate::SingleHashConfig),
/// [`MultiHashConfig`](crate::MultiHashConfig) and the profilers built from
/// them.
///
/// # Examples
///
/// ```
/// use mhp_core::{ConfigError, IntervalConfig};
/// let err = IntervalConfig::new(0, 0.01).unwrap_err();
/// assert_eq!(err, ConfigError::ZeroIntervalLength);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// The interval length was zero; an interval must contain at least one
    /// event.
    ZeroIntervalLength,
    /// The candidate threshold fraction was outside `(0, 1]`.
    ThresholdOutOfRange(f64),
    /// A hash table size must be a power of two (the xor-fold index hash
    /// produces `log2(size)`-bit indices), and at least two entries.
    EntriesNotPowerOfTwo(usize),
    /// A multi-hash profiler needs at least one hash table.
    ZeroTables,
    /// The total number of counters does not divide evenly among the
    /// requested number of tables.
    EntriesNotDivisible {
        /// Total counter budget requested.
        total: usize,
        /// Number of hash tables requested.
        tables: usize,
    },
    /// The accumulator table must have room for at least one entry.
    ZeroAccumulatorCapacity,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::ZeroIntervalLength => {
                write!(f, "interval length must be at least one event")
            }
            ConfigError::ThresholdOutOfRange(t) => {
                write!(f, "candidate threshold {t} is outside (0, 1]")
            }
            ConfigError::EntriesNotPowerOfTwo(n) => {
                write!(f, "hash table size {n} is not a power of two >= 2")
            }
            ConfigError::ZeroTables => write!(f, "at least one hash table is required"),
            ConfigError::EntriesNotDivisible { total, tables } => {
                write!(
                    f,
                    "{total} counters do not divide evenly into {tables} tables"
                )
            }
            ConfigError::ZeroAccumulatorCapacity => {
                write!(f, "accumulator capacity must be at least one entry")
            }
        }
    }
}

impl Error for ConfigError {}

/// An error produced while merging per-shard interval profiles into a global
/// profile (see [`IntervalProfile::merge`](crate::IntervalProfile::merge)).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum MergeError {
    /// No profiles were supplied; a merge needs at least one part.
    Empty,
    /// Two parts cover different intervals.
    IntervalMismatch {
        /// Interval index of the first part.
        expected: u64,
        /// Conflicting interval index found in a later part.
        found: u64,
    },
    /// Two parts were gathered under different interval lengths or
    /// candidate thresholds, so their counts are not comparable.
    ConfigMismatch,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MergeError::Empty => write!(f, "cannot merge zero interval profiles"),
            MergeError::IntervalMismatch { expected, found } => {
                write!(
                    f,
                    "cannot merge profiles of different intervals ({expected} vs {found})"
                )
            }
            MergeError::ConfigMismatch => {
                write!(
                    f,
                    "cannot merge profiles with different interval configurations"
                )
            }
        }
    }
}

impl Error for MergeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            ConfigError::ZeroIntervalLength,
            ConfigError::ThresholdOutOfRange(1.5),
            ConfigError::EntriesNotPowerOfTwo(3),
            ConfigError::ZeroTables,
            ConfigError::EntriesNotDivisible {
                total: 10,
                tables: 3,
            },
            ConfigError::ZeroAccumulatorCapacity,
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.chars().next().unwrap().is_uppercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ConfigError>();
        assert_bounds::<MergeError>();
    }

    #[test]
    fn merge_error_messages_are_lowercase_and_nonempty() {
        let errors = [
            MergeError::Empty,
            MergeError::IntervalMismatch {
                expected: 0,
                found: 3,
            },
            MergeError::ConfigMismatch,
        ];
        for err in errors {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.chars().next().unwrap().is_uppercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
