//! Versioned, CRC-guarded binary snapshots of profiler state.
//!
//! A production profiling service must survive restarts without losing the
//! interval it is half-way through. This module defines the on-disk/on-wire
//! envelope every profiler snapshot shares, plus the typed errors a restore
//! can fail with. The profilers themselves serialize their state through
//! [`EventProfiler::save_state`](crate::EventProfiler::save_state) /
//! [`EventProfiler::restore_state`](crate::EventProfiler::restore_state);
//! this module only owns the framing.
//!
//! ## Envelope layout
//!
//! All integers are little-endian:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "MHPSNAP\n"
//! 8       2     snapshot format version (currently 1)
//! 10      1     kind byte (which state the payload describes)
//! 11      n     payload (kind-specific)
//! 11+n    4     CRC-32 (IEEE) over bytes [0, 11+n)
//! ```
//!
//! The trailing CRC guards the *whole* snapshot including the header, so a
//! flipped kind byte or version is caught even before the kind-specific
//! parser runs. Restores are strict: trailing bytes after the declared
//! payload are rejected rather than ignored.

use std::fmt;

/// Leading magic of every snapshot (`MHPSNAP\n`).
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MHPSNAP\n";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Envelope overhead: magic + version + kind in front, CRC-32 behind.
pub const SNAPSHOT_OVERHEAD: usize = 8 + 2 + 1 + 4;

/// Kind byte of a [`SingleHashProfiler`](crate::SingleHashProfiler) snapshot.
pub const KIND_SINGLE_HASH: u8 = 1;
/// Kind byte of a [`MultiHashProfiler`](crate::MultiHashProfiler) snapshot.
pub const KIND_MULTI_HASH: u8 = 2;
/// Kind byte of a [`PerfectProfiler`](crate::PerfectProfiler) snapshot.
pub const KIND_PERFECT: u8 = 3;
/// Kind byte reserved for a sharded-engine session envelope (`mhp-pipeline`).
pub const KIND_ENGINE_SESSION: u8 = 16;
/// Kind byte reserved for a server session checkpoint (`mhp-server`).
pub const KIND_SERVER_SESSION: u8 = 17;
/// Kind byte reserved for an aggregator checkpoint (`mhp-agg`).
pub const KIND_AGGREGATOR: u8 = 18;

/// Why a snapshot could not be produced or restored.
///
/// Restore errors are *typed* so callers can distinguish "this file is from
/// a different build" ([`UnsupportedVersion`](Self::UnsupportedVersion))
/// from "this file is damaged" ([`CrcMismatch`](Self::CrcMismatch)) from
/// "this file belongs to a differently-configured profiler"
/// ([`ConfigMismatch`](Self::ConfigMismatch)).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The snapshot does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot's format version is not supported by this build.
    UnsupportedVersion(u16),
    /// The snapshot ended before the named field could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The trailing CRC-32 does not match the snapshot contents.
    CrcMismatch {
        /// CRC stored in the snapshot.
        expected: u32,
        /// CRC computed over the received bytes.
        actual: u32,
    },
    /// The snapshot describes a different kind of state than expected.
    KindMismatch {
        /// Kind byte the caller expected.
        expected: u8,
        /// Kind byte found in the snapshot.
        found: u8,
    },
    /// The snapshot was taken under a different configuration than the live
    /// profiler's (it would restore into nonsense, so it is refused).
    ConfigMismatch {
        /// Which configuration field disagreed.
        context: &'static str,
    },
    /// A field decoded but holds an impossible value (e.g. a counter above
    /// the hardware saturation limit, or duplicate accumulator entries).
    Corrupt {
        /// What was found to be invalid.
        context: &'static str,
    },
    /// This profiler does not implement snapshots.
    Unsupported,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a profiler snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (supported: {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::CrcMismatch { expected, actual } => write!(
                f,
                "snapshot crc mismatch: stored {expected:#010x}, computed {actual:#010x}"
            ),
            SnapshotError::KindMismatch { expected, found } => write!(
                f,
                "snapshot kind mismatch: expected kind {expected}, found kind {found}"
            ),
            SnapshotError::ConfigMismatch { context } => {
                write!(
                    f,
                    "snapshot was taken under a different configuration ({context})"
                )
            }
            SnapshotError::Corrupt { context } => write!(f, "snapshot is corrupt: {context}"),
            SnapshotError::Unsupported => {
                write!(f, "snapshots are not supported by this profiler")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// CRC-32 (IEEE, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE, reflected) of `bytes` — the same polynomial the trace
/// format uses, duplicated here because `mhp-core` sits below the pipeline
/// crate in the dependency order.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Builds one snapshot: envelope header up front, CRC appended by
/// [`finish`](Self::finish). All integers are written little-endian.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Starts a snapshot of the given kind.
    pub fn new(kind: u8) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.push(kind);
        SnapshotWriter { buf }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its little-endian IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes with a `u64` length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Seals the snapshot: computes the CRC over everything written so far
    /// and appends it.
    pub fn finish(mut self) -> Vec<u8> {
        let crc = crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// Validates a snapshot's envelope and reads its payload field by field.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Checks magic, version, CRC and kind, returning a reader positioned at
    /// the start of the payload.
    pub fn open(bytes: &'a [u8], expected_kind: u8) -> Result<Self, SnapshotError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() {
            return Err(SnapshotError::Truncated { context: "magic" });
        }
        if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < SNAPSHOT_OVERHEAD {
            return Err(SnapshotError::Truncated {
                context: "envelope",
            });
        }
        // CRC first: it covers the version and kind bytes too, so corruption
        // there is reported as corruption rather than a confusing mismatch.
        let body_len = bytes.len() - 4;
        let expected = u32::from_le_bytes(bytes[body_len..].try_into().expect("4 bytes"));
        let actual = crc32(&bytes[..body_len]);
        if expected != actual {
            return Err(SnapshotError::CrcMismatch { expected, actual });
        }
        let version = u16::from_le_bytes(bytes[8..10].try_into().expect("2 bytes"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let found = bytes[10];
        if found != expected_kind {
            return Err(SnapshotError::KindMismatch {
                expected: expected_kind,
                found,
            });
        }
        Ok(SnapshotReader {
            payload: &bytes[11..body_len],
            pos: 0,
        })
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.payload.len())
            .ok_or(SnapshotError::Truncated { context })?;
        let slice = &self.payload[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a bool byte, rejecting anything other than 0 or 1.
    pub fn take_bool(&mut self, context: &'static str) -> Result<bool, SnapshotError> {
        match self.take_u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Corrupt { context }),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its little-endian bit pattern.
    pub fn take_f64(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64(context)?))
    }

    /// Reads a `u64` length prefix and then that many raw bytes.
    pub fn take_bytes(&mut self, context: &'static str) -> Result<&'a [u8], SnapshotError> {
        let len = self.take_u64(context)?;
        let len = usize::try_from(len).map_err(|_| SnapshotError::Corrupt { context })?;
        self.take(len, context)
    }

    /// Reads a `u64` element count, rejecting counts that could not possibly
    /// fit in the remaining payload (each element needs at least
    /// `min_elem_bytes` bytes) — so a corrupt length cannot drive a huge
    /// allocation before the per-element reads fail.
    pub fn take_count(
        &mut self,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, SnapshotError> {
        let count = self.take_u64(context)?;
        let count = usize::try_from(count).map_err(|_| SnapshotError::Corrupt { context })?;
        let remaining = self.payload.len() - self.pos;
        if count
            .checked_mul(min_elem_bytes.max(1))
            .is_none_or(|need| need > remaining)
        {
            return Err(SnapshotError::Truncated { context });
        }
        Ok(count)
    }

    /// Asserts the payload has been fully consumed.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.pos == self.payload.len() {
            Ok(())
        } else {
            Err(SnapshotError::Corrupt {
                context: "trailing bytes after payload",
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Shared codec helpers.
// ---------------------------------------------------------------------------

use crate::accumulator::AccumulatorTable;
use crate::counter::COUNTER_MAX;
use crate::interval::IntervalConfig;
use crate::introspect::IntervalTally;
use crate::profile::{Candidate, IntervalProfile};
use crate::tuple::Tuple;

/// Serializes one [`IntervalProfile`] into a snapshot payload.
///
/// This is the interchange form every layer that persists or ships merged
/// profiles uses: engine-session snapshots (`mhp-pipeline`), server session
/// checkpoints (`mhp-server`) and aggregator checkpoints (`mhp-agg`).
/// Candidates are stored hottest-first with deterministic tie-breaking
/// (descending count, then ascending tuple), so equal profiles always
/// serialize to equal bytes.
pub fn put_profile(w: &mut SnapshotWriter, profile: &IntervalProfile) {
    w.put_u64(profile.interval_index());
    let config = profile.config();
    w.put_u64(config.interval_len());
    w.put_f64(config.threshold_fraction());
    w.put_bool(config.external_cut());
    w.put_u64(profile.len() as u64);
    for c in profile.candidates() {
        w.put_u64(c.tuple.pc().as_u64());
        w.put_u64(c.tuple.value().as_u64());
        w.put_u64(c.count);
    }
}

/// Reads back one [`IntervalProfile`] written by [`put_profile`].
///
/// The rebuilt profile is value-equal to the one serialized: candidates pass
/// through [`IntervalProfile::from_candidates`], which re-establishes the
/// same deterministic ordering the writer emitted, so a
/// put-profile/take-profile round trip is the identity.
pub fn take_profile(r: &mut SnapshotReader<'_>) -> Result<IntervalProfile, SnapshotError> {
    let interval_index = r.take_u64("profile interval index")?;
    let interval_len = r.take_u64("profile interval length")?;
    let threshold = r.take_f64("profile threshold fraction")?;
    let external_cut = r.take_bool("profile external-cut flag")?;
    let mut config =
        IntervalConfig::new(interval_len, threshold).map_err(|_| SnapshotError::Corrupt {
            context: "profile interval configuration",
        })?;
    if external_cut {
        config = config.with_external_cut();
    }
    let count = r.take_count(24, "profile candidates")?;
    let mut candidates = Vec::with_capacity(count);
    for _ in 0..count {
        let pc = r.take_u64("candidate pc")?;
        let value = r.take_u64("candidate value")?;
        let count = r.take_u64("candidate count")?;
        candidates.push(Candidate::new(Tuple::new(pc, value), count));
    }
    Ok(IntervalProfile::from_candidates(
        interval_index,
        config,
        candidates,
    ))
}

pub(crate) fn put_interval(w: &mut SnapshotWriter, interval: &IntervalConfig) {
    w.put_u64(interval.interval_len());
    w.put_f64(interval.threshold_fraction());
    w.put_bool(interval.external_cut());
}

/// Reads the interval fingerprint and checks it against the live profiler's.
pub(crate) fn check_interval(
    r: &mut SnapshotReader<'_>,
    live: &IntervalConfig,
) -> Result<(), SnapshotError> {
    let interval_len = r.take_u64("interval length")?;
    let threshold = r.take_f64("threshold fraction")?;
    let external_cut = r.take_bool("external-cut flag")?;
    if interval_len != live.interval_len() {
        return Err(SnapshotError::ConfigMismatch {
            context: "interval length",
        });
    }
    if threshold.to_bits() != live.threshold_fraction().to_bits() {
        return Err(SnapshotError::ConfigMismatch {
            context: "threshold fraction",
        });
    }
    if external_cut != live.external_cut() {
        return Err(SnapshotError::ConfigMismatch {
            context: "external-cut flag",
        });
    }
    Ok(())
}

pub(crate) fn put_counters(w: &mut SnapshotWriter, len: usize, values: impl Iterator<Item = u32>) {
    w.put_u64(len as u64);
    for v in values {
        w.put_u32(v);
    }
}

/// Reads a counter array whose length must match the live sketch geometry
/// (already validated against the config fingerprint) and whose values must
/// respect the hardware saturation limit.
pub(crate) fn take_counters(
    r: &mut SnapshotReader<'_>,
    expected_len: usize,
) -> Result<Vec<u32>, SnapshotError> {
    let count = r.take_count(4, "counter values")?;
    if count != expected_len {
        return Err(SnapshotError::Corrupt {
            context: "counter count disagrees with configuration",
        });
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        let v = r.take_u32("counter value")?;
        if v > COUNTER_MAX {
            return Err(SnapshotError::Corrupt {
                context: "counter value above saturation limit",
            });
        }
        values.push(v);
    }
    Ok(values)
}

pub(crate) fn put_accumulator(w: &mut SnapshotWriter, table: &AccumulatorTable) {
    // Sorted by tuple so equal state always snapshots to equal bytes.
    let mut entries: Vec<_> = table.iter().collect();
    entries.sort_by_key(|e| e.tuple);
    w.put_u64(entries.len() as u64);
    for e in entries {
        let (pc, value) = e.tuple.into();
        w.put_u64(pc);
        w.put_u64(value);
        w.put_u64(e.count);
        w.put_bool(e.replaceable);
    }
}

/// Reads accumulator entries, validating occupancy against `capacity` and
/// rejecting duplicate tuples.
pub(crate) fn take_accumulator(
    r: &mut SnapshotReader<'_>,
    capacity: usize,
) -> Result<Vec<(Tuple, u64, bool)>, SnapshotError> {
    let count = r.take_count(25, "accumulator entries")?;
    if count > capacity {
        return Err(SnapshotError::Corrupt {
            context: "accumulator occupancy above capacity",
        });
    }
    let mut entries = Vec::with_capacity(count);
    let mut last: Option<Tuple> = None;
    for _ in 0..count {
        let pc = r.take_u64("accumulator entry pc")?;
        let value = r.take_u64("accumulator entry value")?;
        let count = r.take_u64("accumulator entry count")?;
        let replaceable = r.take_bool("accumulator entry flag")?;
        let tuple = Tuple::new(pc, value);
        // Written sorted; anything out of order (or equal) is corruption.
        if last.is_some_and(|prev| prev >= tuple) {
            return Err(SnapshotError::Corrupt {
                context: "accumulator entries out of order",
            });
        }
        last = Some(tuple);
        entries.push((tuple, count, replaceable));
    }
    Ok(entries)
}

pub(crate) fn put_tally(w: &mut SnapshotWriter, tally: &IntervalTally) {
    w.put_u64(tally.shield_hits);
    w.put_u64(tally.promotions);
    w.put_u64(tally.promotions_dropped);
    w.put_u64(tally.evictions);
    w.put_u64(tally.saturations);
}

pub(crate) fn take_tally(r: &mut SnapshotReader<'_>) -> Result<IntervalTally, SnapshotError> {
    Ok(IntervalTally {
        shield_hits: r.take_u64("tally shield hits")?,
        promotions: r.take_u64("tally promotions")?,
        promotions_dropped: r.take_u64("tally dropped promotions")?,
        evictions: r.take_u64("tally evictions")?,
        saturations: r.take_u64("tally saturations")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sealed(kind: u8) -> Vec<u8> {
        let mut w = SnapshotWriter::new(kind);
        w.put_u64(0xDEAD_BEEF);
        w.put_bool(true);
        w.put_f64(0.25);
        w.put_bytes(b"abc");
        w.finish()
    }

    #[test]
    fn round_trips_every_field_type() {
        let bytes = sealed(KIND_MULTI_HASH);
        let mut r = SnapshotReader::open(&bytes, KIND_MULTI_HASH).unwrap();
        assert_eq!(r.take_u64("a").unwrap(), 0xDEAD_BEEF);
        assert!(r.take_bool("b").unwrap());
        assert_eq!(r.take_f64("c").unwrap(), 0.25);
        assert_eq!(r.take_bytes("d").unwrap(), b"abc");
        r.expect_end().unwrap();
    }

    #[test]
    fn profile_round_trips_and_is_byte_deterministic() {
        let config = IntervalConfig::short().with_external_cut();
        let profile = |order: &[(u64, u64)]| {
            IntervalProfile::from_candidates(
                5,
                config,
                order
                    .iter()
                    .map(|&(pc, n)| Candidate::new(Tuple::new(pc, pc), n))
                    .collect(),
            )
        };
        let a = profile(&[(1, 100), (2, 300), (3, 100)]);
        let mut w = SnapshotWriter::new(KIND_AGGREGATOR);
        put_profile(&mut w, &a);
        let bytes = w.finish();

        let mut r = SnapshotReader::open(&bytes, KIND_AGGREGATOR).unwrap();
        let back = take_profile(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back, a);
        assert_eq!(back.config(), config);

        // Equal profiles built from different input orders serialize to
        // equal bytes — the property aggregator checkpoints rely on.
        let b = profile(&[(3, 100), (1, 100), (2, 300)]);
        let mut w = SnapshotWriter::new(KIND_AGGREGATOR);
        put_profile(&mut w, &b);
        assert_eq!(w.finish(), bytes);
    }

    #[test]
    fn crc_matches_known_vector() {
        // Standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn bad_magic_is_detected() {
        let mut bytes = sealed(1);
        bytes[0] ^= 0xFF;
        assert_eq!(
            SnapshotReader::open(&bytes, 1).unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn any_flipped_byte_fails_the_crc() {
        let good = sealed(1);
        // Every byte past the magic (a magic flip reports BadMagic instead).
        for i in SNAPSHOT_MAGIC.len()..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            let err = SnapshotReader::open(&bad, 1).unwrap_err();
            assert!(
                matches!(err, SnapshotError::CrcMismatch { .. }),
                "byte {i}: expected crc mismatch, got {err}"
            );
        }
    }

    #[test]
    fn unsupported_version_is_detected() {
        // Re-seal with a bumped version so the CRC stays valid.
        let mut bytes = sealed(1);
        bytes.truncate(bytes.len() - 4);
        bytes[8] = 0x2A;
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            SnapshotReader::open(&bytes, 1).unwrap_err(),
            SnapshotError::UnsupportedVersion(0x2A)
        );
    }

    #[test]
    fn kind_mismatch_is_detected() {
        let bytes = sealed(KIND_PERFECT);
        assert_eq!(
            SnapshotReader::open(&bytes, KIND_SINGLE_HASH).unwrap_err(),
            SnapshotError::KindMismatch {
                expected: KIND_SINGLE_HASH,
                found: KIND_PERFECT,
            }
        );
    }

    #[test]
    fn every_truncation_length_is_rejected() {
        let good = sealed(1);
        for len in 0..good.len() {
            let err = SnapshotReader::open(&good[..len], 1).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::CrcMismatch { .. }
                ),
                "length {len}: got {err}"
            );
        }
    }

    #[test]
    fn payload_truncation_is_reported_with_context() {
        let mut w = SnapshotWriter::new(1);
        w.put_u32(7);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes, 1).unwrap();
        assert_eq!(r.take_u32("first").unwrap(), 7);
        assert_eq!(
            r.take_u64("second"),
            Err(SnapshotError::Truncated { context: "second" })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let bytes = sealed(1);
        let mut r = SnapshotReader::open(&bytes, 1).unwrap();
        let _ = r.take_u64("a").unwrap();
        assert!(matches!(r.expect_end(), Err(SnapshotError::Corrupt { .. })));
    }

    #[test]
    fn bogus_bool_is_corrupt() {
        let mut w = SnapshotWriter::new(1);
        w.put_u8(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes, 1).unwrap();
        assert_eq!(
            r.take_bool("flag"),
            Err(SnapshotError::Corrupt { context: "flag" })
        );
    }

    #[test]
    fn absurd_count_is_rejected_before_allocation() {
        let mut w = SnapshotWriter::new(1);
        w.put_u64(u64::MAX);
        let bytes = w.finish();
        let mut r = SnapshotReader::open(&bytes, 1).unwrap();
        assert!(r.take_count(24, "entries").is_err());
    }

    #[test]
    fn error_messages_are_lowercase_and_nonempty() {
        let errors = [
            SnapshotError::BadMagic,
            SnapshotError::UnsupportedVersion(9),
            SnapshotError::Truncated { context: "x" },
            SnapshotError::CrcMismatch {
                expected: 1,
                actual: 2,
            },
            SnapshotError::KindMismatch {
                expected: 1,
                found: 2,
            },
            SnapshotError::ConfigMismatch { context: "seed" },
            SnapshotError::Corrupt { context: "x" },
            SnapshotError::Unsupported,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing period: {msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnapshotError>();
    }
}
