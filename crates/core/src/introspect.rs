//! Optional per-interval introspection of the sketch profilers.
//!
//! The paper's error analysis (§4, Eq. 1) is driven entirely by what
//! happens *inside* the profiler — counter saturation, promotions, shield
//! hits, accumulator evictions and retentions — none of which is visible
//! in the final [`IntervalProfile`](crate::IntervalProfile). This module
//! exposes that state through an optional [`IntrospectionSink`]: install
//! one with
//! [`EventProfiler::set_introspection_sink`](crate::EventProfiler::set_introspection_sink)
//! and receive one [`SketchSnapshot`] per completed interval.
//!
//! **Overhead contract:** the per-event cost of introspection is a handful
//! of unconditional plain `u64` register increments (no atomics, no
//! branches on the sink); everything that could cost anything — the
//! occupancy scan and the sink call itself — happens once per interval,
//! and only when a sink is actually installed. With no sink installed the
//! hot path is allocation-free and within noise of the uninstrumented
//! profiler (verified by `mhp-bench hotpath`).

use std::sync::{Arc, Mutex};

use crate::accumulator::InsertOutcome;

/// Per-interval introspection counts reported by a sketch profiler.
///
/// All counts cover exactly one interval (they reset at every interval
/// boundary, natural or forced).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SketchSnapshot {
    /// Index of the interval these counts describe.
    pub interval_index: u64,
    /// Events observed in the interval.
    pub events: u64,
    /// Events absorbed by a resident accumulator entry (the shield).
    pub shield_hits: u64,
    /// Tuples promoted into the accumulator (empty slot or eviction).
    pub promotions: u64,
    /// Promotions dropped because the table was full of non-replaceable
    /// entries.
    pub promotions_dropped: u64,
    /// Promotions that had to evict a replaceable resident entry.
    pub evictions: u64,
    /// Events whose post-update minimum counter was pinned at the
    /// hardware saturation ceiling
    /// ([`COUNTER_MAX`](crate::counter::COUNTER_MAX)).
    pub saturations: u64,
    /// Candidates retained (shield kept) into the next interval; 0 when
    /// retaining is off.
    pub retained: u64,
    /// Hash counters holding a non-zero value at interval end (before the
    /// end-of-interval flush).
    pub counters_occupied: u64,
    /// Total hash counters in the sketch.
    pub counters_total: u64,
    /// Accumulator entries resident at interval end (before retention or
    /// flush).
    pub accumulator_len: u64,
    /// Accumulator capacity.
    pub accumulator_capacity: u64,
}

/// A consumer of per-interval [`SketchSnapshot`]s.
///
/// Implementations must be cheap and non-blocking: `on_interval` runs on
/// the profiling thread at every interval boundary.
pub trait IntrospectionSink: Send + Sync {
    /// Called once per completed interval with that interval's counts.
    fn on_interval(&self, snapshot: &SketchSnapshot);
}

/// A shared, optional sink slot held by each profiler.
///
/// The handle clones with its profiler (clones share the same sink), and
/// the uninstalled state is a plain `None` check on the once-per-interval
/// path — nothing is touched per event.
#[derive(Clone, Default)]
pub struct SinkHandle {
    sink: Option<Arc<dyn IntrospectionSink>>,
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.sink.is_some() {
            "SinkHandle(installed)"
        } else {
            "SinkHandle(none)"
        })
    }
}

impl SinkHandle {
    /// An empty handle (no sink installed).
    pub fn none() -> Self {
        SinkHandle::default()
    }

    /// Installs (or, with `None`, removes) the sink.
    pub fn set(&mut self, sink: Option<Arc<dyn IntrospectionSink>>) {
        self.sink = sink;
    }

    /// Whether a sink is installed.
    #[inline]
    pub fn is_installed(&self) -> bool {
        self.sink.is_some()
    }

    /// Delivers a snapshot to the sink, if one is installed.
    #[inline]
    pub fn emit(&self, snapshot: &SketchSnapshot) {
        if let Some(sink) = &self.sink {
            sink.on_interval(snapshot);
        }
    }
}

/// Per-interval running tallies a profiler keeps in plain (non-atomic)
/// integers; folded into a [`SketchSnapshot`] and reset at every interval
/// boundary.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct IntervalTally {
    pub(crate) shield_hits: u64,
    pub(crate) promotions: u64,
    pub(crate) promotions_dropped: u64,
    pub(crate) evictions: u64,
    pub(crate) saturations: u64,
}

impl IntervalTally {
    /// Zeroes every tally for the next interval.
    pub(crate) fn reset(&mut self) {
        *self = IntervalTally::default();
    }

    /// Folds one promotion attempt's outcome into the tallies.
    #[inline]
    pub(crate) fn note_insert(&mut self, outcome: InsertOutcome) {
        match outcome {
            InsertOutcome::InsertedEmpty => self.promotions += 1,
            InsertOutcome::InsertedEvicting => {
                self.promotions += 1;
                self.evictions += 1;
            }
            InsertOutcome::Dropped => self.promotions_dropped += 1,
        }
    }
}

/// An [`IntrospectionSink`] that appends every snapshot to an in-memory
/// list — the test/bench consumer.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use mhp_core::{
///     CollectingSink, EventProfiler, IntervalConfig, MultiHashConfig, MultiHashProfiler, Tuple,
/// };
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// let sink = Arc::new(CollectingSink::new());
/// let mut profiler = MultiHashProfiler::new(
///     IntervalConfig::new(100, 0.1)?,
///     MultiHashConfig::best(),
///     7,
/// )?;
/// profiler.set_introspection_sink(Some(sink.clone()));
/// for i in 0..200u64 {
///     profiler.observe(Tuple::new(i % 3, 0));
/// }
/// let snapshots = sink.snapshots();
/// assert_eq!(snapshots.len(), 2);
/// assert_eq!(snapshots[0].events, 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CollectingSink {
    snapshots: Mutex<Vec<SketchSnapshot>>,
}

impl CollectingSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        CollectingSink::default()
    }

    /// A copy of every snapshot collected so far, in interval order.
    pub fn snapshots(&self) -> Vec<SketchSnapshot> {
        self.snapshots
            .lock()
            .expect("collector lock poisoned")
            .clone()
    }

    /// Takes (and clears) the collected snapshots.
    pub fn take(&self) -> Vec<SketchSnapshot> {
        std::mem::take(&mut *self.snapshots.lock().expect("collector lock poisoned"))
    }
}

impl IntrospectionSink for CollectingSink {
    fn on_interval(&self, snapshot: &SketchSnapshot) {
        self.snapshots
            .lock()
            .expect("collector lock poisoned")
            .push(*snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_emits_only_when_installed() {
        let sink = Arc::new(CollectingSink::new());
        let mut handle = SinkHandle::none();
        assert!(!handle.is_installed());
        handle.emit(&SketchSnapshot::default()); // no-op
        handle.set(Some(sink.clone()));
        assert!(handle.is_installed());
        handle.emit(&SketchSnapshot {
            interval_index: 3,
            ..SketchSnapshot::default()
        });
        assert_eq!(sink.snapshots().len(), 1);
        assert_eq!(sink.snapshots()[0].interval_index, 3);
        handle.set(None);
        handle.emit(&SketchSnapshot::default());
        assert_eq!(sink.snapshots().len(), 1, "removed sink sees nothing");
    }

    #[test]
    fn collecting_sink_take_drains() {
        let sink = CollectingSink::new();
        sink.on_interval(&SketchSnapshot::default());
        assert_eq!(sink.take().len(), 1);
        assert!(sink.snapshots().is_empty());
    }

    #[test]
    fn cloned_handles_share_the_sink() {
        let sink = Arc::new(CollectingSink::new());
        let mut a = SinkHandle::none();
        a.set(Some(sink.clone()));
        let b = a.clone();
        b.emit(&SketchSnapshot::default());
        assert_eq!(sink.snapshots().len(), 1);
        assert_eq!(format!("{a:?}"), "SinkHandle(installed)");
        assert_eq!(format!("{:?}", SinkHandle::none()), "SinkHandle(none)");
    }
}
