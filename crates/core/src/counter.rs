//! Saturating hardware counter arrays.
//!
//! The paper's hardware budget (§7) uses 3-byte counters: a 2K-entry hash
//! table costs 6 KB. Counters therefore saturate at `2^24 - 1` instead of
//! wrapping — a wrapped counter would silently forget a hot event, while a
//! saturated counter merely stops distinguishing "very hot" from "extremely
//! hot", which is harmless above the candidate threshold.

/// Saturation limit of a 3-byte (24-bit) hardware counter.
pub const COUNTER_MAX: u32 = (1 << 24) - 1;

/// A fixed-size array of saturating counters modelling one hash table's
/// counter storage.
///
/// # Examples
///
/// ```
/// use mhp_core::CounterArray;
/// let mut counters = CounterArray::new(8);
/// assert_eq!(counters.increment(3), 1);
/// assert_eq!(counters.increment(3), 2);
/// assert_eq!(counters.get(3), 2);
/// counters.clear();
/// assert_eq!(counters.get(3), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterArray {
    counters: Vec<u32>,
}

impl CounterArray {
    /// Creates `len` counters, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "a counter array must have at least one counter");
        CounterArray {
            counters: vec![0; len],
        }
    }

    /// Number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` if the array has no counters (never true for a
    /// constructed array).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Current value of counter `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        self.counters[idx]
    }

    /// Increments counter `idx`, saturating at [`COUNTER_MAX`]; returns the
    /// new value.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn increment(&mut self, idx: usize) -> u32 {
        let c = &mut self.counters[idx];
        if *c < COUNTER_MAX {
            *c += 1;
        }
        *c
    }

    /// Resets counter `idx` to zero (the paper's *resetting* optimization
    /// applies this on promotion).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn reset(&mut self, idx: usize) {
        self.counters[idx] = 0;
    }

    /// Zeroes every counter (the end-of-interval hash-table flush).
    #[inline]
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// Iterates over the counter values in index order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.counters.iter().copied()
    }

    /// Number of counters whose value is at least `threshold` — used by the
    /// theoretical model's empirical validation.
    pub fn count_at_least(&self, threshold: u32) -> usize {
        self.counters.iter().filter(|&&c| c >= threshold).count()
    }

    /// Bytes of hardware storage this array represents (3 bytes per counter,
    /// per the paper's area accounting).
    pub fn storage_bytes(&self) -> usize {
        self.counters.len() * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_counters_start_at_zero() {
        let c = CounterArray::new(4);
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|v| v == 0));
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_length_is_rejected() {
        CounterArray::new(0);
    }

    #[test]
    fn increment_returns_new_value() {
        let mut c = CounterArray::new(2);
        assert_eq!(c.increment(0), 1);
        assert_eq!(c.increment(0), 2);
        assert_eq!(c.get(1), 0, "other counters untouched");
    }

    #[test]
    fn counters_saturate_at_24_bits() {
        let mut c = CounterArray::new(1);
        c.counters[0] = COUNTER_MAX - 1;
        assert_eq!(c.increment(0), COUNTER_MAX);
        assert_eq!(c.increment(0), COUNTER_MAX, "must saturate, not wrap");
    }

    #[test]
    fn reset_zeroes_one_counter() {
        let mut c = CounterArray::new(3);
        c.increment(1);
        c.increment(2);
        c.reset(1);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(2), 1);
    }

    #[test]
    fn clear_zeroes_all_counters() {
        let mut c = CounterArray::new(3);
        for i in 0..3 {
            c.increment(i);
        }
        c.clear();
        assert!(c.iter().all(|v| v == 0));
    }

    #[test]
    fn count_at_least_counts_correctly() {
        let mut c = CounterArray::new(4);
        c.increment(0);
        c.increment(1);
        c.increment(1);
        assert_eq!(c.count_at_least(1), 2);
        assert_eq!(c.count_at_least(2), 1);
        assert_eq!(c.count_at_least(3), 0);
    }

    #[test]
    fn storage_matches_paper_budget() {
        // "the size of the hash table was 6 Kilobytes (2K entries of 3 byte
        // counters)" — §7.
        let c = CounterArray::new(2048);
        assert_eq!(c.storage_bytes(), 6 * 1024);
    }
}
