//! Saturating hardware counter arrays.
//!
//! The paper's hardware budget (§7) uses 3-byte counters: a 2K-entry hash
//! table costs 6 KB. Counters therefore saturate at `2^24 - 1` instead of
//! wrapping — a wrapped counter would silently forget a hot event, while a
//! saturated counter merely stops distinguishing "very hot" from "extremely
//! hot", which is harmless above the candidate threshold.

/// Saturation limit of a 3-byte (24-bit) hardware counter.
pub const COUNTER_MAX: u32 = (1 << 24) - 1;

/// A fixed-size array of saturating counters modelling one hash table's
/// counter storage.
///
/// # Examples
///
/// ```
/// use mhp_core::CounterArray;
/// let mut counters = CounterArray::new(8);
/// assert_eq!(counters.increment(3), 1);
/// assert_eq!(counters.increment(3), 2);
/// assert_eq!(counters.get(3), 2);
/// counters.clear();
/// assert_eq!(counters.get(3), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterArray {
    counters: Vec<u32>,
}

impl CounterArray {
    /// Creates `len` counters, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "a counter array must have at least one counter");
        CounterArray {
            counters: vec![0; len],
        }
    }

    /// Number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Returns `true` if the array has no counters (never true for a
    /// constructed array).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Current value of counter `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> u32 {
        self.counters[idx]
    }

    /// Increments counter `idx`, saturating at [`COUNTER_MAX`]; returns the
    /// new value.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn increment(&mut self, idx: usize) -> u32 {
        let c = &mut self.counters[idx];
        if *c < COUNTER_MAX {
            *c += 1;
        }
        *c
    }

    /// Resets counter `idx` to zero (the paper's *resetting* optimization
    /// applies this on promotion).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[inline]
    pub fn reset(&mut self, idx: usize) {
        self.counters[idx] = 0;
    }

    /// Zeroes every counter (the end-of-interval hash-table flush).
    #[inline]
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// Iterates over the counter values in index order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.counters.iter().copied()
    }

    /// Number of counters whose value is at least `threshold` — used by the
    /// theoretical model's empirical validation.
    pub fn count_at_least(&self, threshold: u32) -> usize {
        self.counters.iter().filter(|&&c| c >= threshold).count()
    }

    /// Number of counters holding a non-zero value — the table's occupancy,
    /// reported by sketch introspection at interval end.
    pub fn occupied(&self) -> usize {
        self.counters.iter().filter(|&&c| c > 0).count()
    }

    /// Bytes of hardware storage this array represents (3 bytes per counter,
    /// per the paper's area accounting).
    pub fn storage_bytes(&self) -> usize {
        self.counters.len() * 3
    }

    /// Overwrites every counter from a snapshot (the crate-internal restore
    /// path; callers validate length and saturation bounds first).
    pub(crate) fn load(&mut self, values: Vec<u32>) {
        debug_assert_eq!(values.len(), self.counters.len());
        debug_assert!(values.iter().all(|&v| v <= COUNTER_MAX));
        self.counters = values;
    }
}

/// A bank of `tables × stride` saturating counters in **one contiguous
/// allocation**, table `t` occupying the half-open range
/// `t*stride .. (t+1)*stride`.
///
/// This is the storage layout of the multi-hash profiler's hot path: a
/// tuple's n counters live at n *flat* indices into the same block, so the
/// per-event walk touches one predictable allocation instead of chasing n
/// separate `Vec` headers. Flat indices come from
/// [`flat_index`](Self::flat_index) (or equivalently `t * stride + slot`).
///
/// # Examples
///
/// ```
/// use mhp_core::CounterBlock;
/// let mut block = CounterBlock::new(4, 512);
/// let flat = block.flat_index(2, 17);
/// assert_eq!(block.increment(flat), 1);
/// assert_eq!(block.table(2)[17], 1);
/// assert_eq!(block.table(0)[17], 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBlock {
    values: Vec<u32>,
    tables: usize,
    stride: usize,
}

impl CounterBlock {
    /// Creates `tables` tables of `stride` counters each, all zero.
    ///
    /// # Panics
    ///
    /// Panics if `tables` or `stride` is zero.
    pub fn new(tables: usize, stride: usize) -> Self {
        assert!(tables > 0, "a counter block needs at least one table");
        assert!(stride > 0, "a counter table needs at least one counter");
        CounterBlock {
            values: vec![0; tables * stride],
            tables,
            stride,
        }
    }

    /// Number of tables.
    #[inline]
    pub fn tables(&self) -> usize {
        self.tables
    }

    /// Counters per table.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Total number of counters across all tables.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the block has no counters (never true for a
    /// constructed block).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The flat index of slot `slot` in table `table`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that both coordinates are in range.
    #[inline]
    pub fn flat_index(&self, table: usize, slot: usize) -> usize {
        debug_assert!(table < self.tables && slot < self.stride);
        table * self.stride + slot
    }

    /// Current value of the counter at `flat`.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of bounds.
    #[inline]
    pub fn get(&self, flat: usize) -> u32 {
        self.values[flat]
    }

    /// Increments the counter at `flat`, saturating at [`COUNTER_MAX`];
    /// returns the new value.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of bounds.
    #[inline]
    pub fn increment(&mut self, flat: usize) -> u32 {
        let c = &mut self.values[flat];
        if *c < COUNTER_MAX {
            *c += 1;
        }
        *c
    }

    /// Stores a value the caller already proved is `<= COUNTER_MAX` (the
    /// conservative-update fast path writes `min + 1` after reading every
    /// counter exactly once).
    #[inline]
    pub(crate) fn store(&mut self, flat: usize, value: u32) {
        debug_assert!(value <= COUNTER_MAX);
        self.values[flat] = value;
    }

    /// Resets the counter at `flat` to zero.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of bounds.
    #[inline]
    pub fn reset(&mut self, flat: usize) {
        self.values[flat] = 0;
    }

    /// Zeroes every counter in every table (one `memset` over the block —
    /// the end-of-interval flush).
    #[inline]
    pub fn clear(&mut self) {
        self.values.fill(0);
    }

    /// The counter values of table `table`, as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `table` is out of range.
    #[inline]
    pub fn table(&self, table: usize) -> &[u32] {
        assert!(table < self.tables, "table {table} out of range");
        &self.values[table * self.stride..(table + 1) * self.stride]
    }

    /// Iterates over all counter values, table 0 first.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.values.iter().copied()
    }

    /// Number of counters (across all tables) holding a non-zero value —
    /// the sketch's occupancy, reported by introspection at interval end.
    pub fn occupied(&self) -> usize {
        self.values.iter().filter(|&&c| c > 0).count()
    }

    /// Direct mutable access for tests that need to preset counters (e.g.
    /// saturation scenarios that would otherwise take 2^24 increments).
    #[cfg(test)]
    pub(crate) fn values_mut(&mut self) -> &mut [u32] {
        &mut self.values
    }

    /// Bytes of hardware storage this block represents (3 bytes per
    /// counter, per the paper's area accounting).
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * 3
    }

    /// Overwrites every counter from a snapshot (the crate-internal restore
    /// path; callers validate length and saturation bounds first).
    pub(crate) fn load(&mut self, values: Vec<u32>) {
        debug_assert_eq!(values.len(), self.values.len());
        debug_assert!(values.iter().all(|&v| v <= COUNTER_MAX));
        self.values = values;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_counters_start_at_zero() {
        let c = CounterArray::new(4);
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|v| v == 0));
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn zero_length_is_rejected() {
        CounterArray::new(0);
    }

    #[test]
    fn increment_returns_new_value() {
        let mut c = CounterArray::new(2);
        assert_eq!(c.increment(0), 1);
        assert_eq!(c.increment(0), 2);
        assert_eq!(c.get(1), 0, "other counters untouched");
    }

    #[test]
    fn counters_saturate_at_24_bits() {
        let mut c = CounterArray::new(1);
        c.counters[0] = COUNTER_MAX - 1;
        assert_eq!(c.increment(0), COUNTER_MAX);
        assert_eq!(c.increment(0), COUNTER_MAX, "must saturate, not wrap");
    }

    #[test]
    fn reset_zeroes_one_counter() {
        let mut c = CounterArray::new(3);
        c.increment(1);
        c.increment(2);
        c.reset(1);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.get(2), 1);
    }

    #[test]
    fn clear_zeroes_all_counters() {
        let mut c = CounterArray::new(3);
        for i in 0..3 {
            c.increment(i);
        }
        c.clear();
        assert!(c.iter().all(|v| v == 0));
    }

    #[test]
    fn count_at_least_counts_correctly() {
        let mut c = CounterArray::new(4);
        c.increment(0);
        c.increment(1);
        c.increment(1);
        assert_eq!(c.count_at_least(1), 2);
        assert_eq!(c.count_at_least(2), 1);
        assert_eq!(c.count_at_least(3), 0);
    }

    #[test]
    fn storage_matches_paper_budget() {
        // "the size of the hash table was 6 Kilobytes (2K entries of 3 byte
        // counters)" — §7.
        let c = CounterArray::new(2048);
        assert_eq!(c.storage_bytes(), 6 * 1024);
    }

    #[test]
    fn block_layout_is_contiguous_per_table() {
        let mut block = CounterBlock::new(3, 4);
        assert_eq!(block.len(), 12);
        assert_eq!(block.flat_index(2, 3), 11);
        block.increment(block.flat_index(1, 0));
        assert_eq!(block.table(1), &[1, 0, 0, 0]);
        assert_eq!(block.table(0), &[0, 0, 0, 0]);
        assert_eq!(block.iter().sum::<u32>(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn block_rejects_zero_tables() {
        CounterBlock::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one counter")]
    fn block_rejects_zero_stride() {
        CounterBlock::new(4, 0);
    }

    #[test]
    fn block_increment_saturates_and_reset_clears() {
        let mut block = CounterBlock::new(1, 2);
        block.values_mut()[0] = COUNTER_MAX - 1;
        assert_eq!(block.increment(0), COUNTER_MAX);
        assert_eq!(block.increment(0), COUNTER_MAX, "must saturate, not wrap");
        block.increment(1);
        block.reset(0);
        assert_eq!(block.get(0), 0);
        assert_eq!(block.get(1), 1);
        block.clear();
        assert!(block.iter().all(|v| v == 0));
    }

    #[test]
    fn block_storage_matches_paper_budget() {
        // The paper's best multi-hash sketch: 4 tables × 512 counters = 6 KB.
        let block = CounterBlock::new(4, 512);
        assert_eq!(block.storage_bytes(), 6 * 1024);
    }
}
