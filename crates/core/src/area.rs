//! Hardware area accounting (§7).
//!
//! The paper's headline area claim: the whole profiler fits in **7 to 16
//! kilobytes** — a 6 KB hash-table budget (2K entries × 3-byte counters)
//! plus an accumulator of 1 KB (100 entries, 1 % threshold) or 10 KB
//! (1,000 entries, 0.1 % threshold).

use crate::interval::IntervalConfig;

/// Bytes per hash-table counter (3-byte / 24-bit counters).
pub const COUNTER_BYTES: usize = 3;

/// Bytes per accumulator entry (tuple tag plus counter; the paper's budget
/// works out to 10 bytes per entry).
pub const ACCUMULATOR_ENTRY_BYTES: usize = 10;

/// A hardware-area model for one profiler configuration.
///
/// # Examples
///
/// ```
/// use mhp_core::{AreaModel, IntervalConfig};
/// let short = AreaModel::new(2048, IntervalConfig::short());
/// assert_eq!(short.hash_table_bytes(), 6 * 1024);
/// assert_eq!(short.accumulator_bytes(), 1_000);
/// assert!(short.total_bytes() <= 7 * 1024);       // the paper's "7 KB"
///
/// let long = AreaModel::new(2048, IntervalConfig::long());
/// assert!(long.total_bytes() <= 16 * 1024);       // the paper's "16 KB"
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaModel {
    hash_entries: usize,
    accumulator_entries: usize,
}

impl AreaModel {
    /// Builds the area model for `hash_entries` total counters and the
    /// accumulator size implied by `interval`.
    pub fn new(hash_entries: usize, interval: IntervalConfig) -> Self {
        AreaModel {
            hash_entries,
            accumulator_entries: interval.accumulator_capacity(),
        }
    }

    /// Builds the model from explicit table sizes.
    pub fn from_entries(hash_entries: usize, accumulator_entries: usize) -> Self {
        AreaModel {
            hash_entries,
            accumulator_entries,
        }
    }

    /// Total hash-table counters (across all tables of a multi-hash design —
    /// splitting a fixed budget does not change its area).
    #[inline]
    pub fn hash_entries(&self) -> usize {
        self.hash_entries
    }

    /// Accumulator capacity in entries.
    #[inline]
    pub fn accumulator_entries(&self) -> usize {
        self.accumulator_entries
    }

    /// Bytes of counter storage.
    #[inline]
    pub fn hash_table_bytes(&self) -> usize {
        self.hash_entries * COUNTER_BYTES
    }

    /// Bytes of accumulator storage.
    #[inline]
    pub fn accumulator_bytes(&self) -> usize {
        self.accumulator_entries * ACCUMULATOR_ENTRY_BYTES
    }

    /// Total modelled bytes.
    #[inline]
    pub fn total_bytes(&self) -> usize {
        self.hash_table_bytes() + self.accumulator_bytes()
    }
}

impl std::fmt::Display for AreaModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} B hash + {} B accumulator = {} B total",
            self.hash_table_bytes(),
            self.accumulator_bytes(),
            self.total_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_short_config_is_about_7kb() {
        let area = AreaModel::new(2048, IntervalConfig::short());
        assert_eq!(area.hash_table_bytes(), 6144);
        assert_eq!(area.accumulator_bytes(), 1000);
        assert_eq!(area.total_bytes(), 7144);
    }

    #[test]
    fn paper_long_config_is_about_16kb() {
        let area = AreaModel::new(2048, IntervalConfig::long());
        assert_eq!(area.accumulator_bytes(), 10_000);
        assert_eq!(area.total_bytes(), 16_144);
    }

    #[test]
    fn explicit_entries_constructor() {
        let area = AreaModel::from_entries(1024, 50);
        assert_eq!(area.hash_entries(), 1024);
        assert_eq!(area.accumulator_entries(), 50);
        assert_eq!(area.total_bytes(), 1024 * 3 + 500);
    }

    #[test]
    fn display_is_informative() {
        let s = AreaModel::from_entries(2, 1).to_string();
        assert!(s.contains("6 B hash"));
        assert!(s.contains("total"));
    }
}
