//! The single-hash interval profiler (§5).
//!
//! One untagged hash table of counters feeds the accumulator table. The table
//! has no tags, so distinct tuples that hash to the same counter *alias*:
//! their combined count can push the counter over the threshold and promote a
//! tuple that is not actually a candidate (a false positive). The paper's
//! single-hash optimizations attack exactly this:
//!
//! * **shielding** (always on, §5.2) — accumulated tuples stop feeding the
//!   hash table, lowering pressure;
//! * **resetting** (`R1`, §5.4.2) — a counter is zeroed when its tuple is
//!   promoted, so aliasing followers do not inherit a hot counter;
//! * **retaining** (`P1`, §5.4.1) — last interval's candidates stay resident
//!   (and shielded) into the next interval.

use std::sync::Arc;

use crate::accumulator::AccumulatorTable;
use crate::counter::{CounterArray, COUNTER_MAX};
use crate::error::ConfigError;
use crate::hash::TupleHasher;
use crate::interval::IntervalConfig;
use crate::introspect::{IntervalTally, IntrospectionSink, SinkHandle, SketchSnapshot};
use crate::profile::{Candidate, IntervalProfile};
use crate::profiler::EventProfiler;
use crate::state::{self, SnapshotError, SnapshotReader, SnapshotWriter, KIND_SINGLE_HASH};
use crate::tuple::Tuple;

/// Configuration of a [`SingleHashProfiler`]: hash-table size and the paper's
/// `P` (retaining) / `R` (resetting) switches.
///
/// # Examples
///
/// ```
/// use mhp_core::SingleHashConfig;
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// // The paper's "best single hash" (BSH): 2K entries, P1 R1.
/// let best = SingleHashConfig::best();
/// assert_eq!(best.entries(), 2048);
/// assert!(best.retaining() && best.resetting());
///
/// // The plain P0 R0 baseline:
/// let plain = SingleHashConfig::new(2048)?;
/// assert!(!plain.retaining() && !plain.resetting());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingleHashConfig {
    entries: usize,
    resetting: bool,
    retaining: bool,
    shielding: bool,
}

impl SingleHashConfig {
    /// Creates a configuration with a hash table of `entries` counters and
    /// both optimizations off (the paper's `P0 R0`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EntriesNotPowerOfTwo`] if `entries` is not a
    /// power of two of at least 2.
    pub fn new(entries: usize) -> Result<Self, ConfigError> {
        if entries < 2 || !entries.is_power_of_two() {
            return Err(ConfigError::EntriesNotPowerOfTwo(entries));
        }
        Ok(SingleHashConfig {
            entries,
            resetting: false,
            retaining: false,
            shielding: true,
        })
    }

    /// The paper's best single-hash configuration (`BSH`): 2K entries with
    /// retaining and resetting enabled (`P1 R1`).
    pub fn best() -> Self {
        SingleHashConfig::new(2048)
            .expect("2048 is a power of two")
            .with_resetting(true)
            .with_retaining(true)
    }

    /// Enables or disables the resetting optimization (`R`).
    pub fn with_resetting(mut self, resetting: bool) -> Self {
        self.resetting = resetting;
        self
    }

    /// Enables or disables the retaining optimization (`P`).
    pub fn with_retaining(mut self, retaining: bool) -> Self {
        self.retaining = retaining;
        self
    }

    /// Enables or disables shielding (§5.2). The paper's designs always
    /// shield; turning it off exists for ablation studies only — resident
    /// tuples then keep hammering the hash table.
    pub fn with_shielding(mut self, shielding: bool) -> Self {
        self.shielding = shielding;
        self
    }

    /// Number of hash-table counters.
    #[inline]
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Whether resetting (`R1`) is enabled.
    #[inline]
    pub fn resetting(&self) -> bool {
        self.resetting
    }

    /// Whether retaining (`P1`) is enabled.
    #[inline]
    pub fn retaining(&self) -> bool {
        self.retaining
    }

    /// Whether shielding is enabled (always on in the paper's designs).
    #[inline]
    pub fn shielding(&self) -> bool {
        self.shielding
    }

    /// A compact label in the paper's notation, e.g. `"P1, R0"`.
    pub fn label(&self) -> String {
        format!(
            "P{}, R{}",
            u8::from(self.retaining),
            u8::from(self.resetting)
        )
    }
}

/// The single-hash hardware profiler of §5 (Figure 2).
///
/// # Examples
///
/// ```
/// use mhp_core::{EventProfiler, IntervalConfig, SingleHashConfig, SingleHashProfiler, Tuple};
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// let interval = IntervalConfig::new(1_000, 0.01)?;
/// let mut profiler =
///     SingleHashProfiler::new(interval, SingleHashConfig::best(), 42)?;
/// let hot = Tuple::new(0x400100, 3);
/// let mut last = None;
/// for i in 0..1_000u64 {
///     let t = if i % 10 == 0 { hot } else { Tuple::new(i, i) };
///     if let Some(p) = profiler.observe(t) {
///         last = Some(p);
///     }
/// }
/// let profile = last.expect("one full interval");
/// assert!(profile.contains(hot));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SingleHashProfiler {
    interval: IntervalConfig,
    config: SingleHashConfig,
    hasher: TupleHasher,
    counters: CounterArray,
    accumulator: AccumulatorTable,
    threshold: u64,
    /// The hash seed, kept for the snapshot configuration fingerprint (the
    /// hasher itself is fully derived from it).
    seed: u64,
    events: u64,
    interval_idx: u64,
    /// Per-interval introspection tallies (plain register adds; folded
    /// into a [`SketchSnapshot`] only when a sink is installed).
    tally: IntervalTally,
    /// Optional per-interval introspection sink.
    sink: SinkHandle,
}

impl SingleHashProfiler {
    /// Builds a profiler. The `seed` selects the hardwired hash function.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the hash table and accumulator
    /// construction.
    pub fn new(
        interval: IntervalConfig,
        config: SingleHashConfig,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let hasher = TupleHasher::new(config.entries(), seed)?;
        let accumulator = AccumulatorTable::new(interval.accumulator_capacity())?;
        Ok(SingleHashProfiler {
            interval,
            config,
            hasher,
            counters: CounterArray::new(config.entries()),
            accumulator,
            threshold: interval.threshold_count(),
            seed,
            events: 0,
            interval_idx: 0,
            tally: IntervalTally::default(),
            sink: SinkHandle::none(),
        })
    }

    /// This profiler's hash-table configuration.
    #[inline]
    pub fn config(&self) -> SingleHashConfig {
        self.config
    }

    /// Read-only view of the accumulator table.
    #[inline]
    pub fn accumulator(&self) -> &AccumulatorTable {
        &self.accumulator
    }

    /// Read-only view of the hash-table counters.
    #[inline]
    pub fn counters(&self) -> &CounterArray {
        &self.counters
    }

    /// Total hardware storage modelled, in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.counters.storage_bytes() + self.accumulator.storage_bytes()
    }

    fn end_interval(&mut self) -> IntervalProfile {
        // Occupancy is scanned only when someone is listening; the scan
        // must happen before the flush below wipes the table.
        let introspecting = self.sink.is_installed();
        let (counters_occupied, accumulator_len) = if introspecting {
            (
                self.counters.occupied() as u64,
                self.accumulator.len() as u64,
            )
        } else {
            (0, 0)
        };
        let events = self.events;
        let candidates = self
            .accumulator
            .finish_interval(self.config.retaining, self.threshold);
        self.counters.clear();
        if introspecting {
            let retained = if self.config.retaining {
                candidates.len() as u64
            } else {
                0
            };
            self.sink.emit(&SketchSnapshot {
                interval_index: self.interval_idx,
                events,
                shield_hits: self.tally.shield_hits,
                promotions: self.tally.promotions,
                promotions_dropped: self.tally.promotions_dropped,
                evictions: self.tally.evictions,
                saturations: self.tally.saturations,
                retained,
                counters_occupied,
                counters_total: self.counters.len() as u64,
                accumulator_len,
                accumulator_capacity: self.accumulator.capacity() as u64,
            });
        }
        self.tally.reset();
        let profile =
            IntervalProfile::from_candidates(self.interval_idx, self.interval, candidates);
        self.interval_idx += 1;
        self.events = 0;
        profile
    }

    /// The batched hot path, monomorphized per configuration corner so the
    /// `resetting` / `shielding` branches are resolved at compile time
    /// instead of per event. Bit-for-bit identical to calling
    /// [`EventProfiler::observe`] on every element of `batch`.
    fn batch_loop<const RESETTING: bool, const SHIELDING: bool>(
        &mut self,
        batch: &[Tuple],
        out: &mut Vec<IntervalProfile>,
    ) {
        let threshold = self.threshold;
        for &tuple in batch {
            let resident = self.accumulator.observe(tuple, threshold);
            if !resident {
                let idx = self.hasher.index(tuple);
                let value = self.counters.increment(idx);
                self.tally.saturations += u64::from(value >= COUNTER_MAX);
                if u64::from(value) >= threshold {
                    let outcome = self.accumulator.insert_tracked(tuple, threshold);
                    self.tally.note_insert(outcome);
                    if RESETTING && outcome.inserted() {
                        self.counters.reset(idx);
                    }
                }
            } else {
                self.tally.shield_hits += 1;
                if !SHIELDING {
                    // Ablation mode: resident tuples still update the hash
                    // table (but are never re-promoted — already resident).
                    let value = self.counters.increment(self.hasher.index(tuple));
                    self.tally.saturations += u64::from(value >= COUNTER_MAX);
                }
            }
            self.events += 1;
            if self.interval.is_boundary(self.events) {
                out.push(self.end_interval());
            }
        }
    }
}

impl EventProfiler for SingleHashProfiler {
    fn interval_config(&self) -> IntervalConfig {
        self.interval
    }

    fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
        // Shielding: resident tuples are counted in the accumulator only.
        if !self.accumulator.observe(tuple, self.threshold) {
            let idx = self.hasher.index(tuple);
            let value = self.counters.increment(idx);
            self.tally.saturations += u64::from(value >= COUNTER_MAX);
            if u64::from(value) >= self.threshold {
                let outcome = self.accumulator.insert_tracked(tuple, self.threshold);
                self.tally.note_insert(outcome);
                if outcome.inserted() && self.config.resetting {
                    self.counters.reset(idx);
                }
            }
        } else {
            self.tally.shield_hits += 1;
            if !self.config.shielding {
                // Ablation mode: resident tuples still update the hash
                // table (but are never re-promoted — already resident).
                let idx = self.hasher.index(tuple);
                let value = self.counters.increment(idx);
                self.tally.saturations += u64::from(value >= COUNTER_MAX);
            }
        }
        self.events += 1;
        if self.interval.is_boundary(self.events) {
            Some(self.end_interval())
        } else {
            None
        }
    }

    fn observe_batch(&mut self, batch: &[Tuple]) -> Vec<IntervalProfile> {
        let mut out = Vec::new();
        // One two-way branch per batch selects the monomorphized loop.
        match (self.config.resetting, self.config.shielding) {
            (false, false) => self.batch_loop::<false, false>(batch, &mut out),
            (false, true) => self.batch_loop::<false, true>(batch, &mut out),
            (true, false) => self.batch_loop::<true, false>(batch, &mut out),
            (true, true) => self.batch_loop::<true, true>(batch, &mut out),
        }
        out
    }

    fn finish_interval(&mut self) -> IntervalProfile {
        self.end_interval()
    }

    fn hot_tuples(&self, k: usize) -> Vec<Candidate> {
        self.accumulator
            .top_k(k)
            .into_iter()
            .map(|e| Candidate::new(e.tuple, e.count))
            .collect()
    }

    fn reset(&mut self) {
        self.counters.clear();
        self.accumulator.clear();
        self.events = 0;
        self.interval_idx = 0;
        self.tally.reset();
    }

    fn events_in_current_interval(&self) -> u64 {
        self.events
    }

    fn interval_index(&self) -> u64 {
        self.interval_idx
    }

    fn set_introspection_sink(&mut self, sink: Option<Arc<dyn IntrospectionSink>>) {
        self.sink.set(sink);
    }

    fn save_state(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new(KIND_SINGLE_HASH);
        // Configuration fingerprint.
        w.put_u64(self.config.entries() as u64);
        w.put_bool(self.config.resetting());
        w.put_bool(self.config.retaining());
        w.put_bool(self.config.shielding());
        w.put_u64(self.seed);
        state::put_interval(&mut w, &self.interval);
        // Dynamic state.
        w.put_u64(self.events);
        w.put_u64(self.interval_idx);
        state::put_tally(&mut w, &self.tally);
        state::put_counters(&mut w, self.counters.len(), self.counters.iter());
        state::put_accumulator(&mut w, &self.accumulator);
        Ok(w.finish())
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::open(snapshot, KIND_SINGLE_HASH)?;
        if r.take_u64("table entries")? != self.config.entries() as u64 {
            return Err(SnapshotError::ConfigMismatch {
                context: "hash-table entries",
            });
        }
        for (flag, live, context) in [
            ("resetting flag", self.config.resetting(), "resetting"),
            ("retaining flag", self.config.retaining(), "retaining"),
            ("shielding flag", self.config.shielding(), "shielding"),
        ] {
            if r.take_bool(flag)? != live {
                return Err(SnapshotError::ConfigMismatch { context });
            }
        }
        if r.take_u64("hash seed")? != self.seed {
            return Err(SnapshotError::ConfigMismatch {
                context: "hash seed",
            });
        }
        state::check_interval(&mut r, &self.interval)?;
        let events = r.take_u64("event count")?;
        let interval_idx = r.take_u64("interval index")?;
        let tally = state::take_tally(&mut r)?;
        let counters = state::take_counters(&mut r, self.counters.len())?;
        let entries = state::take_accumulator(&mut r, self.accumulator.capacity())?;
        r.expect_end()?;
        // All fields validated: commit (errors above leave state untouched).
        self.events = events;
        self.interval_idx = interval_idx;
        self.tally = tally;
        self.counters.load(counters);
        self.accumulator.restore_entries(entries);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval(len: u64, frac: f64) -> IntervalConfig {
        IntervalConfig::new(len, frac).unwrap()
    }

    fn profiler(len: u64, frac: f64, cfg: SingleHashConfig) -> SingleHashProfiler {
        SingleHashProfiler::new(interval(len, frac), cfg, 7).unwrap()
    }

    /// Finds two distinct tuples that alias to the same hash bucket.
    fn aliasing_pair(p: &SingleHashProfiler) -> (Tuple, Tuple) {
        let a = Tuple::new(0x1000, 1);
        let target = p.hasher.index(a);
        for i in 0..100_000u64 {
            let b = Tuple::new(0x2000 + i * 8, i);
            if b != a && p.hasher.index(b) == target {
                return (a, b);
            }
        }
        panic!("no aliasing pair found");
    }

    #[test]
    fn config_rejects_bad_sizes() {
        assert!(SingleHashConfig::new(0).is_err());
        assert!(SingleHashConfig::new(1000).is_err());
        assert!(SingleHashConfig::new(1024).is_ok());
    }

    #[test]
    fn config_label_uses_paper_notation() {
        assert_eq!(SingleHashConfig::best().label(), "P1, R1");
        assert_eq!(SingleHashConfig::new(2048).unwrap().label(), "P0, R0");
    }

    #[test]
    fn hot_tuple_is_captured() {
        let mut p = profiler(1_000, 0.01, SingleHashConfig::new(2048).unwrap());
        let hot = Tuple::new(0x400100, 7);
        let mut profiles = Vec::new();
        for i in 0..1_000u64 {
            let t = if i % 5 == 0 {
                hot
            } else {
                Tuple::new(0x500000 + i, i)
            };
            if let Some(pr) = p.observe(t) {
                profiles.push(pr);
            }
        }
        assert_eq!(profiles.len(), 1);
        // 200 occurrences, threshold 10: captured, with f_h >= threshold.
        let count = profiles[0].count_of(hot).expect("hot tuple captured");
        assert!(count >= 10);
        assert!(count <= 200 + 10, "count {count} wildly inflated");
    }

    #[test]
    fn cold_stream_produces_no_candidates() {
        let mut p = profiler(1_000, 0.05, SingleHashConfig::new(4096).unwrap());
        let mut profiles = Vec::new();
        for i in 0..1_000u64 {
            // Every tuple unique: none can reach 5% = 50 occurrences, and with
            // a 4K table aliasing to 50 is implausible.
            if let Some(pr) = p.observe(Tuple::new(i * 8, i)) {
                profiles.push(pr);
            }
        }
        assert_eq!(profiles.len(), 1);
        assert!(profiles[0].is_empty());
    }

    #[test]
    fn promotion_initializes_count_at_threshold() {
        let mut p = profiler(100, 0.1, SingleHashConfig::new(2048).unwrap());
        let hot = Tuple::new(1, 1);
        // Exactly 10 occurrences (= threshold), then 90 unique fillers.
        for _ in 0..10 {
            p.observe(hot);
        }
        assert_eq!(p.accumulator().count_of(hot), Some(10));
    }

    #[test]
    fn shielding_stops_hash_updates_after_promotion() {
        let mut p = profiler(1_000, 0.01, SingleHashConfig::new(2048).unwrap());
        let hot = Tuple::new(1, 1);
        for _ in 0..10 {
            p.observe(hot);
        }
        let idx = p.hasher.index(hot);
        let counter_at_promotion = p.counters().get(idx);
        for _ in 0..50 {
            p.observe(hot);
        }
        assert_eq!(
            p.counters().get(idx),
            counter_at_promotion,
            "shielded tuple must not touch the hash table"
        );
        assert_eq!(p.accumulator().count_of(hot), Some(60));
    }

    #[test]
    fn resetting_clears_the_promoted_counter() {
        let mut p = profiler(
            1_000,
            0.01,
            SingleHashConfig::new(2048).unwrap().with_resetting(true),
        );
        let hot = Tuple::new(1, 1);
        for _ in 0..10 {
            p.observe(hot);
        }
        let idx = p.hasher.index(hot);
        assert_eq!(
            p.counters().get(idx),
            0,
            "R1 must zero the counter on promotion"
        );
    }

    #[test]
    fn without_resetting_alias_rides_the_hot_counter() {
        // R0: after tuple A saturates a counter past the threshold, a single
        // occurrence of aliasing tuple B promotes B — the false-positive
        // mechanism the paper describes.
        let cfg = SingleHashConfig::new(2048).unwrap();
        let mut p = profiler(10_000, 0.001, cfg);
        let (a, b) = aliasing_pair(&p);
        for _ in 0..10 {
            p.observe(a); // threshold is 10; A promoted, counter stays at 10
        }
        p.observe(b);
        assert!(
            p.accumulator().contains(b),
            "alias must be falsely promoted under R0"
        );
    }

    #[test]
    fn with_resetting_alias_must_earn_promotion() {
        let cfg = SingleHashConfig::new(2048).unwrap().with_resetting(true);
        let mut p = profiler(10_000, 0.001, cfg);
        let (a, b) = aliasing_pair(&p);
        for _ in 0..10 {
            p.observe(a);
        }
        p.observe(b);
        assert!(
            !p.accumulator().contains(b),
            "R1 zeroed the counter, so one occurrence of the alias cannot promote"
        );
    }

    #[test]
    fn disabling_shielding_keeps_hash_counters_growing() {
        let cfg = SingleHashConfig::new(2048).unwrap().with_shielding(false);
        let mut p = profiler(1_000, 0.01, cfg);
        let hot = Tuple::new(1, 1);
        for _ in 0..10 {
            p.observe(hot);
        }
        let idx = p.hasher.index(hot);
        let at_promotion = p.counters().get(idx);
        for _ in 0..50 {
            p.observe(hot);
        }
        assert_eq!(
            p.counters().get(idx),
            at_promotion + 50,
            "without shielding, resident tuples keep updating the table"
        );
        // The accumulator count stays exact regardless.
        assert_eq!(p.accumulator().count_of(hot), Some(60));
    }

    #[test]
    fn retaining_keeps_candidates_across_intervals() {
        let cfg = SingleHashConfig::new(2048).unwrap().with_retaining(true);
        let mut p = profiler(100, 0.1, cfg);
        let hot = Tuple::new(1, 1);
        let mut profiles = Vec::new();
        for i in 0..200u64 {
            let t = if i % 2 == 0 {
                hot
            } else {
                Tuple::new(100 + i, i)
            };
            if let Some(pr) = p.observe(t) {
                profiles.push(pr);
            }
        }
        assert_eq!(profiles.len(), 2);
        // Second interval: hot was retained, so its count is exact (50), not
        // threshold-initialized.
        assert_eq!(profiles[1].count_of(hot), Some(50));
    }

    #[test]
    fn without_retaining_accumulator_starts_interval_empty() {
        let cfg = SingleHashConfig::new(2048).unwrap();
        let mut p = profiler(100, 0.1, cfg);
        let hot = Tuple::new(1, 1);
        for _ in 0..100 {
            p.observe(hot);
        }
        assert!(p.accumulator().is_empty(), "P0 flushes at interval end");
    }

    #[test]
    fn interval_profile_counts_are_at_least_threshold() {
        let mut p = profiler(1_000, 0.01, SingleHashConfig::best());
        let mut profile = None;
        for i in 0..1_000u64 {
            let t = Tuple::new(i % 17, 0); // several hot tuples
            if let Some(pr) = p.observe(t) {
                profile = Some(pr);
            }
        }
        let profile = profile.unwrap();
        assert!(!profile.is_empty());
        for c in profile.candidates() {
            assert!(c.count >= 10);
        }
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = profiler(1_000, 0.01, SingleHashConfig::best());
        for i in 0..500u64 {
            p.observe(Tuple::new(i % 3, 0));
        }
        p.reset();
        assert_eq!(p.events_in_current_interval(), 0);
        assert_eq!(p.interval_index(), 0);
        assert!(p.accumulator().is_empty());
        assert!(p.counters().iter().all(|c| c == 0));
    }

    #[test]
    fn observe_batch_matches_per_event_for_every_corner() {
        let stream: Vec<Tuple> = (0..3_000u64).map(|i| Tuple::new(i % 37, i % 5)).collect();
        for resetting in [false, true] {
            for shielding in [false, true] {
                let cfg = SingleHashConfig::new(256)
                    .unwrap()
                    .with_resetting(resetting)
                    .with_shielding(shielding);
                let mut a = profiler(500, 0.05, cfg);
                let mut b = a.clone();
                let expected: Vec<IntervalProfile> =
                    stream.iter().filter_map(|&t| a.observe(t)).collect();
                let mut got = Vec::new();
                for chunk in stream.chunks(257) {
                    got.extend(b.observe_batch(chunk));
                }
                assert_eq!(got, expected, "R{resetting} S{shielding}");
                assert_eq!(a.counters(), b.counters());
                assert_eq!(
                    a.accumulator().top_k(usize::MAX),
                    b.accumulator().top_k(usize::MAX)
                );
                assert_eq!(
                    a.events_in_current_interval(),
                    b.events_in_current_interval()
                );
            }
        }
    }

    #[test]
    fn storage_bytes_match_paper_for_best_config() {
        // 2K entries * 3 B = 6 KB hash table, 100-entry accumulator = 1 KB.
        let p = profiler(10_000, 0.01, SingleHashConfig::best());
        assert_eq!(p.storage_bytes(), 6 * 1024 + 1_000);
    }
}
