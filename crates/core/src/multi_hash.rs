//! The multi-hash interval profiler (§6) — the paper's main contribution.
//!
//! Instead of one hash table, the profiler keeps *n* smaller tables indexed
//! by *n* independent hash functions. A tuple is promoted to the accumulator
//! only when **all** of its counters cross the candidate threshold. Two
//! tuples that alias in one table will, with high probability, map to
//! different counters in at least one other table — so false positives fall
//! roughly as `(100·n / (t·Z))^n` (see [`crate::theory`]).
//!
//! Options (§6.1, §6.3):
//!
//! * **conservative update** (`C1`, borrowed from Estan & Varghese's traffic
//!   measurement work): only the counter(s) holding the *minimum* value among
//!   the tuple's n counters are incremented. When there is no aliasing all n
//!   counters agree, so nothing is lost; when there is aliasing the inflated
//!   counters stop growing, sharply cutting error.
//! * **immediate resetting** (`R1`): all n counters are zeroed when the tuple
//!   is promoted. The paper finds this *hurts* multi-hash (it wipes counts
//!   that aliasing neighbours had legitimately accumulated), so the best
//!   configuration is `C1 R0` with 4 tables.

use std::sync::Arc;

use crate::accumulator::AccumulatorTable;
use crate::counter::{CounterBlock, COUNTER_MAX};
use crate::error::ConfigError;
use crate::hash::HashFamily;
use crate::interval::IntervalConfig;
use crate::introspect::{IntervalTally, IntrospectionSink, SinkHandle, SketchSnapshot};
use crate::profile::{Candidate, IntervalProfile};
use crate::profiler::EventProfiler;
use crate::state::{self, SnapshotError, SnapshotReader, SnapshotWriter, KIND_MULTI_HASH};
use crate::tuple::Tuple;

/// Configuration of a [`MultiHashProfiler`]: total counter budget, number of
/// tables, and the paper's `C` (conservative update) / `R` (resetting)
/// switches. Retaining is on by default (the paper uses it for every
/// multi-hash result; §6.3).
///
/// # Examples
///
/// ```
/// use mhp_core::MultiHashConfig;
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// // The paper's best configuration: 2K counters over 4 tables, C1 R0.
/// let best = MultiHashConfig::best();
/// assert_eq!(best.num_tables(), 4);
/// assert_eq!(best.table_entries(), 512);
/// assert!(best.conservative_update() && !best.resetting());
///
/// let custom = MultiHashConfig::new(2048, 8)?.with_conservative_update(false);
/// assert_eq!(custom.table_entries(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiHashConfig {
    total_entries: usize,
    num_tables: usize,
    conservative_update: bool,
    resetting: bool,
    retaining: bool,
    shielding: bool,
}

impl MultiHashConfig {
    /// Creates a configuration splitting `total_entries` counters evenly over
    /// `num_tables` hash tables, with conservative update **on**, resetting
    /// **off** and retaining **on** (the paper's preferred `C1 R0`).
    ///
    /// # Errors
    ///
    /// * [`ConfigError::ZeroTables`] if `num_tables == 0`;
    /// * [`ConfigError::EntriesNotDivisible`] if the split is uneven;
    /// * [`ConfigError::EntriesNotPowerOfTwo`] if the per-table size is not a
    ///   power of two of at least 2.
    pub fn new(total_entries: usize, num_tables: usize) -> Result<Self, ConfigError> {
        if num_tables == 0 {
            return Err(ConfigError::ZeroTables);
        }
        if !total_entries.is_multiple_of(num_tables) {
            return Err(ConfigError::EntriesNotDivisible {
                total: total_entries,
                tables: num_tables,
            });
        }
        let per_table = total_entries / num_tables;
        if per_table < 2 || !per_table.is_power_of_two() {
            return Err(ConfigError::EntriesNotPowerOfTwo(per_table));
        }
        Ok(MultiHashConfig {
            total_entries,
            num_tables,
            conservative_update: true,
            resetting: false,
            retaining: true,
            shielding: true,
        })
    }

    /// The paper's best multi-hash configuration: 2K total counters over 4
    /// tables, conservative update, no resetting, retaining (§6.4).
    pub fn best() -> Self {
        MultiHashConfig::new(2048, 4).expect("paper constants are valid")
    }

    /// Enables or disables conservative update (`C`).
    pub fn with_conservative_update(mut self, on: bool) -> Self {
        self.conservative_update = on;
        self
    }

    /// Enables or disables immediate resetting on promotion (`R`).
    pub fn with_resetting(mut self, on: bool) -> Self {
        self.resetting = on;
        self
    }

    /// Enables or disables retaining across intervals.
    pub fn with_retaining(mut self, on: bool) -> Self {
        self.retaining = on;
        self
    }

    /// Enables or disables shielding (§5.2). The paper's designs always
    /// shield; turning it off exists for ablation studies only.
    pub fn with_shielding(mut self, on: bool) -> Self {
        self.shielding = on;
        self
    }

    /// Total number of counters across all tables.
    #[inline]
    pub fn total_entries(&self) -> usize {
        self.total_entries
    }

    /// Number of hash tables.
    #[inline]
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Counters per table.
    #[inline]
    pub fn table_entries(&self) -> usize {
        self.total_entries / self.num_tables
    }

    /// Whether conservative update (`C1`) is enabled.
    #[inline]
    pub fn conservative_update(&self) -> bool {
        self.conservative_update
    }

    /// Whether immediate resetting (`R1`) is enabled.
    #[inline]
    pub fn resetting(&self) -> bool {
        self.resetting
    }

    /// Whether retaining is enabled.
    #[inline]
    pub fn retaining(&self) -> bool {
        self.retaining
    }

    /// Whether shielding is enabled (always on in the paper's designs).
    #[inline]
    pub fn shielding(&self) -> bool {
        self.shielding
    }

    /// A compact label in the paper's notation, e.g. `"C1, R0"`.
    pub fn label(&self) -> String {
        format!(
            "C{}, R{}",
            u8::from(self.conservative_update),
            u8::from(self.resetting)
        )
    }
}

/// The multi-hash hardware profiler of §6 (Figure 8).
///
/// # Examples
///
/// ```
/// use mhp_core::{EventProfiler, IntervalConfig, MultiHashConfig, MultiHashProfiler, Tuple};
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// let mut profiler = MultiHashProfiler::new(
///     IntervalConfig::new(1_000, 0.01)?,
///     MultiHashConfig::best(),
///     42,
/// )?;
/// let hot = Tuple::new(0x400100, 3);
/// let mut last = None;
/// for i in 0..1_000u64 {
///     let t = if i % 10 == 0 { hot } else { Tuple::new(i, i) };
///     if let Some(p) = profiler.observe(t) {
///         last = Some(p);
///     }
/// }
/// assert!(last.expect("one full interval").contains(hot));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiHashProfiler {
    interval: IntervalConfig,
    config: MultiHashConfig,
    family: HashFamily,
    /// All n tables' counters, flattened into one contiguous block (table
    /// `t` at flat offset `t * table_entries`) so a tuple's n counters land
    /// on predictable cache lines.
    block: CounterBlock,
    accumulator: AccumulatorTable,
    threshold: u64,
    /// The hash-family seed, kept for the snapshot configuration
    /// fingerprint (the family itself is fully derived from it).
    seed: u64,
    events: u64,
    interval_idx: u64,
    /// Scratch buffer holding the current tuple's *flat* block indices
    /// (avoids an allocation on every event).
    scratch: Vec<usize>,
    /// Scratch buffer holding the counter values read at those indices, so
    /// the conservative-update path reads each counter exactly once.
    vals: Vec<u32>,
    /// Per-interval introspection tallies (plain register adds; folded
    /// into a [`SketchSnapshot`] only when a sink is installed).
    tally: IntervalTally,
    /// Optional per-interval introspection sink.
    sink: SinkHandle,
}

impl MultiHashProfiler {
    /// Builds a profiler. The `seed` selects the family of independent
    /// hardwired hash functions.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the hash family and accumulator
    /// construction.
    pub fn new(
        interval: IntervalConfig,
        config: MultiHashConfig,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        let family = HashFamily::new(config.num_tables(), config.table_entries(), seed)?;
        let block = CounterBlock::new(config.num_tables(), config.table_entries());
        let accumulator = AccumulatorTable::new(interval.accumulator_capacity())?;
        Ok(MultiHashProfiler {
            interval,
            config,
            family,
            block,
            accumulator,
            threshold: interval.threshold_count(),
            seed,
            events: 0,
            interval_idx: 0,
            scratch: vec![0; config.num_tables()],
            vals: vec![0; config.num_tables()],
            tally: IntervalTally::default(),
            sink: SinkHandle::none(),
        })
    }

    /// This profiler's sketch configuration.
    #[inline]
    pub fn config(&self) -> MultiHashConfig {
        self.config
    }

    /// Read-only view of the accumulator table.
    #[inline]
    pub fn accumulator(&self) -> &AccumulatorTable {
        &self.accumulator
    }

    /// The flattened counter block: all n tables in one contiguous
    /// allocation, table `t` at [`CounterBlock::table`]`(t)`.
    #[inline]
    pub fn counters(&self) -> &CounterBlock {
        &self.block
    }

    /// Counter values of table `t`, in slot order — the per-table view over
    /// the flat [`counters`](Self::counters) block.
    #[inline]
    pub fn table_values(&self, t: usize) -> &[u32] {
        self.block.table(t)
    }

    /// The hash-function family in use.
    #[inline]
    pub fn hash_family(&self) -> &HashFamily {
        &self.family
    }

    /// The minimum counter value this tuple currently sees across all tables
    /// — the sketch's (over-)estimate of its count this interval.
    pub fn sketch_estimate(&self, tuple: Tuple) -> u64 {
        self.family
            .indices(tuple)
            .enumerate()
            .map(|(t, idx)| u64::from(self.block.get(self.block.flat_index(t, idx))))
            .min()
            .unwrap_or(0)
    }

    /// Total hardware storage modelled, in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.block.storage_bytes() + self.accumulator.storage_bytes()
    }

    fn end_interval(&mut self) -> IntervalProfile {
        // Occupancy is scanned only when someone is listening; the scan
        // must happen before the flush below wipes the tables.
        let introspecting = self.sink.is_installed();
        let (counters_occupied, accumulator_len) = if introspecting {
            (self.block.occupied() as u64, self.accumulator.len() as u64)
        } else {
            (0, 0)
        };
        let events = self.events;
        let candidates = self
            .accumulator
            .finish_interval(self.config.retaining, self.threshold);
        self.block.clear();
        if introspecting {
            let retained = if self.config.retaining {
                candidates.len() as u64
            } else {
                0
            };
            self.sink.emit(&SketchSnapshot {
                interval_index: self.interval_idx,
                events,
                shield_hits: self.tally.shield_hits,
                promotions: self.tally.promotions,
                promotions_dropped: self.tally.promotions_dropped,
                evictions: self.tally.evictions,
                saturations: self.tally.saturations,
                retained,
                counters_occupied,
                counters_total: self.block.len() as u64,
                accumulator_len,
                accumulator_capacity: self.accumulator.capacity() as u64,
            });
        }
        self.tally.reset();
        let profile =
            IntervalProfile::from_candidates(self.interval_idx, self.interval, candidates);
        self.interval_idx += 1;
        self.events = 0;
        profile
    }

    /// Writes the tuple's *flat* block indices into `scratch`.
    #[inline]
    fn fill_scratch(&mut self, tuple: Tuple) {
        self.family.indices_into(tuple, &mut self.scratch);
        let stride = self.block.stride();
        for (t, slot) in self.scratch.iter_mut().enumerate() {
            *slot += t * stride;
        }
    }

    /// Conservative update (Estan & Varghese): increment only the counter(s)
    /// holding the minimum value; ties mean all minima move. Reads every
    /// counter exactly once (values are cached in `vals`), and short-circuits
    /// when the minimum is already saturated — at [`COUNTER_MAX`] every tie
    /// is a "minimum", so without the short-circuit a fully saturated tuple
    /// would touch all n counters on every event for no effect.
    ///
    /// Returns the post-update minimum. Requires `scratch` to be filled.
    #[inline]
    fn bump_conservative(&mut self) -> u64 {
        let mut min = u32::MAX;
        for (&flat, val) in self.scratch.iter().zip(self.vals.iter_mut()) {
            let v = self.block.get(flat);
            *val = v;
            min = min.min(v);
        }
        if min >= COUNTER_MAX {
            return u64::from(COUNTER_MAX);
        }
        // Every counter equal to `min` moves to `min + 1`; every other
        // counter already exceeds it, so the new minimum is exactly
        // `min + 1` — no second read of the block needed.
        let new_min = min + 1;
        for (&flat, &val) in self.scratch.iter().zip(self.vals.iter()) {
            if val == min {
                self.block.store(flat, new_min);
            }
        }
        u64::from(new_min)
    }

    /// Plain update: increment all n counters, return the new minimum.
    /// Requires `scratch` to be filled.
    #[inline]
    fn bump_plain(&mut self) -> u64 {
        let mut new_min = u32::MAX;
        for &flat in &self.scratch {
            new_min = new_min.min(self.block.increment(flat));
        }
        u64::from(new_min)
    }

    /// Applies the update function to the tuple's counters and returns the
    /// post-update minimum counter value.
    fn update_counters(&mut self, tuple: Tuple) -> u64 {
        self.fill_scratch(tuple);
        if self.config.conservative_update {
            self.bump_conservative()
        } else {
            self.bump_plain()
        }
    }

    /// The batched hot path, monomorphized per configuration corner so the
    /// `conservative` / `resetting` / `shielding` branches are resolved at
    /// compile time instead of per event. Bit-for-bit identical to calling
    /// [`EventProfiler::observe`] on every element of `batch`.
    fn batch_loop<const CONSERVATIVE: bool, const RESETTING: bool, const SHIELDING: bool>(
        &mut self,
        batch: &[Tuple],
        out: &mut Vec<IntervalProfile>,
    ) {
        let threshold = self.threshold;
        for &tuple in batch {
            let resident = self.accumulator.observe(tuple, threshold);
            if !resident {
                self.fill_scratch(tuple);
                let min_after = if CONSERVATIVE {
                    self.bump_conservative()
                } else {
                    self.bump_plain()
                };
                self.tally.saturations += u64::from(min_after >= u64::from(COUNTER_MAX));
                if min_after >= threshold {
                    let outcome = self.accumulator.insert_tracked(tuple, threshold);
                    self.tally.note_insert(outcome);
                    if RESETTING && outcome.inserted() {
                        // `scratch` still holds this tuple's flat indices.
                        for &flat in &self.scratch {
                            self.block.reset(flat);
                        }
                    }
                }
            } else {
                self.tally.shield_hits += 1;
                if !SHIELDING {
                    // Ablation mode: resident tuples still update the hash
                    // tables (but are never re-promoted — already resident).
                    self.fill_scratch(tuple);
                    let min_after = if CONSERVATIVE {
                        self.bump_conservative()
                    } else {
                        self.bump_plain()
                    };
                    self.tally.saturations += u64::from(min_after >= u64::from(COUNTER_MAX));
                }
            }
            self.events += 1;
            if self.interval.is_boundary(self.events) {
                out.push(self.end_interval());
            }
        }
    }
}

impl EventProfiler for MultiHashProfiler {
    fn interval_config(&self) -> IntervalConfig {
        self.interval
    }

    fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
        // Shielding: resident tuples are counted in the accumulator only.
        let resident = self.accumulator.observe(tuple, self.threshold);
        if resident {
            self.tally.shield_hits += 1;
            if !self.config.shielding {
                // Ablation mode: resident tuples still update the hash
                // tables (but are never re-promoted — already resident).
                let min_after = self.update_counters(tuple);
                self.tally.saturations += u64::from(min_after >= u64::from(COUNTER_MAX));
            }
        } else {
            let min_after = self.update_counters(tuple);
            self.tally.saturations += u64::from(min_after >= u64::from(COUNTER_MAX));
            // Promotion requires *every* counter at or above the threshold,
            // i.e. the minimum crossed it.
            if min_after >= self.threshold {
                let outcome = self.accumulator.insert_tracked(tuple, self.threshold);
                self.tally.note_insert(outcome);
                if outcome.inserted() && self.config.resetting {
                    // `scratch` still holds this tuple's flat indices.
                    for &flat in &self.scratch {
                        self.block.reset(flat);
                    }
                }
            }
        }
        self.events += 1;
        if self.interval.is_boundary(self.events) {
            Some(self.end_interval())
        } else {
            None
        }
    }

    fn observe_batch(&mut self, batch: &[Tuple]) -> Vec<IntervalProfile> {
        let mut out = Vec::new();
        // One three-way branch per batch selects the monomorphized loop.
        match (
            self.config.conservative_update,
            self.config.resetting,
            self.config.shielding,
        ) {
            (false, false, false) => self.batch_loop::<false, false, false>(batch, &mut out),
            (false, false, true) => self.batch_loop::<false, false, true>(batch, &mut out),
            (false, true, false) => self.batch_loop::<false, true, false>(batch, &mut out),
            (false, true, true) => self.batch_loop::<false, true, true>(batch, &mut out),
            (true, false, false) => self.batch_loop::<true, false, false>(batch, &mut out),
            (true, false, true) => self.batch_loop::<true, false, true>(batch, &mut out),
            (true, true, false) => self.batch_loop::<true, true, false>(batch, &mut out),
            (true, true, true) => self.batch_loop::<true, true, true>(batch, &mut out),
        }
        out
    }

    fn finish_interval(&mut self) -> IntervalProfile {
        self.end_interval()
    }

    fn hot_tuples(&self, k: usize) -> Vec<Candidate> {
        self.accumulator
            .top_k(k)
            .into_iter()
            .map(|e| Candidate::new(e.tuple, e.count))
            .collect()
    }

    fn reset(&mut self) {
        self.block.clear();
        self.accumulator.clear();
        self.events = 0;
        self.interval_idx = 0;
        self.tally.reset();
    }

    fn events_in_current_interval(&self) -> u64 {
        self.events
    }

    fn interval_index(&self) -> u64 {
        self.interval_idx
    }

    fn set_introspection_sink(&mut self, sink: Option<Arc<dyn IntrospectionSink>>) {
        self.sink.set(sink);
    }

    fn save_state(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new(KIND_MULTI_HASH);
        // Configuration fingerprint.
        w.put_u64(self.config.total_entries() as u64);
        w.put_u64(self.config.num_tables() as u64);
        w.put_bool(self.config.conservative_update());
        w.put_bool(self.config.resetting());
        w.put_bool(self.config.retaining());
        w.put_bool(self.config.shielding());
        w.put_u64(self.seed);
        state::put_interval(&mut w, &self.interval);
        // Dynamic state.
        w.put_u64(self.events);
        w.put_u64(self.interval_idx);
        state::put_tally(&mut w, &self.tally);
        state::put_counters(&mut w, self.block.len(), self.block.iter());
        state::put_accumulator(&mut w, &self.accumulator);
        Ok(w.finish())
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::open(snapshot, KIND_MULTI_HASH)?;
        if r.take_u64("total entries")? != self.config.total_entries() as u64 {
            return Err(SnapshotError::ConfigMismatch {
                context: "total counter entries",
            });
        }
        if r.take_u64("table count")? != self.config.num_tables() as u64 {
            return Err(SnapshotError::ConfigMismatch {
                context: "number of tables",
            });
        }
        for (flag, live, context) in [
            (
                "conservative flag",
                self.config.conservative_update(),
                "conservative update",
            ),
            ("resetting flag", self.config.resetting(), "resetting"),
            ("retaining flag", self.config.retaining(), "retaining"),
            ("shielding flag", self.config.shielding(), "shielding"),
        ] {
            if r.take_bool(flag)? != live {
                return Err(SnapshotError::ConfigMismatch { context });
            }
        }
        if r.take_u64("hash seed")? != self.seed {
            return Err(SnapshotError::ConfigMismatch {
                context: "hash seed",
            });
        }
        state::check_interval(&mut r, &self.interval)?;
        let events = r.take_u64("event count")?;
        let interval_idx = r.take_u64("interval index")?;
        let tally = state::take_tally(&mut r)?;
        let counters = state::take_counters(&mut r, self.block.len())?;
        let entries = state::take_accumulator(&mut r, self.accumulator.capacity())?;
        r.expect_end()?;
        // All fields validated: commit (errors above leave state untouched).
        self.events = events;
        self.interval_idx = interval_idx;
        self.tally = tally;
        self.block.load(counters);
        self.accumulator.restore_entries(entries);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiler(len: u64, frac: f64, cfg: MultiHashConfig) -> MultiHashProfiler {
        MultiHashProfiler::new(IntervalConfig::new(len, frac).unwrap(), cfg, 7).unwrap()
    }

    #[test]
    fn config_validates_inputs() {
        assert!(matches!(
            MultiHashConfig::new(2048, 0),
            Err(ConfigError::ZeroTables)
        ));
        assert!(matches!(
            MultiHashConfig::new(2048, 3),
            Err(ConfigError::EntriesNotDivisible { .. })
        ));
        // 2044 / 4 = 511 — the split is even, so it must be the
        // power-of-two check (with the exact per-table size) that fires.
        assert!(matches!(
            MultiHashConfig::new(2044, 4),
            Err(ConfigError::EntriesNotPowerOfTwo(511))
        ));
        // 2045 / 4 genuinely does not divide: the divisibility check fires
        // first, reporting the inputs as given.
        assert!(matches!(
            MultiHashConfig::new(2045, 4),
            Err(ConfigError::EntriesNotDivisible {
                total: 2045,
                tables: 4
            })
        ));
        assert!(MultiHashConfig::new(2048, 16).is_ok()); // 128 per table
    }

    #[test]
    fn best_config_matches_paper() {
        let best = MultiHashConfig::best();
        assert_eq!(best.total_entries(), 2048);
        assert_eq!(best.num_tables(), 4);
        assert!(best.conservative_update());
        assert!(!best.resetting());
        assert!(best.retaining());
        assert_eq!(best.label(), "C1, R0");
    }

    #[test]
    fn single_table_multi_hash_degenerates_to_single_hash_filtering() {
        // n = 1 must behave like a single hash table (sanity anchor used by
        // the design-space figures).
        let cfg = MultiHashConfig::new(2048, 1)
            .unwrap()
            .with_conservative_update(false);
        let mut p = profiler(1_000, 0.01, cfg);
        let hot = Tuple::new(1, 1);
        for _ in 0..10 {
            p.observe(hot);
        }
        assert!(p.accumulator().contains(hot));
    }

    #[test]
    fn hot_tuple_promoted_exactly_at_threshold() {
        let mut p = profiler(1_000, 0.01, MultiHashConfig::best());
        let hot = Tuple::new(1, 1);
        for i in 0..9 {
            p.observe(hot);
            assert!(!p.accumulator().contains(hot), "not yet at occurrence {i}");
        }
        p.observe(hot);
        assert!(p.accumulator().contains(hot));
        assert_eq!(p.accumulator().count_of(hot), Some(10));
    }

    #[test]
    fn conservative_update_increments_only_minima() {
        let cfg = MultiHashConfig::new(64, 4).unwrap(); // tiny tables, C1
        let mut p = profiler(10_000, 0.01, cfg);
        let t = Tuple::new(5, 5);
        p.observe(t);
        // With no prior aliasing all four counters were 0 (the minimum), so
        // all four got incremented to 1.
        let values: Vec<u32> = p
            .family
            .indices(t)
            .enumerate()
            .map(|(table, idx)| p.table_values(table)[idx])
            .collect();
        assert_eq!(values, vec![1, 1, 1, 1]);
        assert_eq!(p.sketch_estimate(t), 1);
    }

    #[test]
    fn conservative_update_never_undercounts() {
        let cfg = MultiHashConfig::new(64, 4).unwrap();
        let mut p = profiler(100_000, 0.01, cfg);
        // Noise from many tuples, then check a tracked tuple's estimate.
        let tracked = Tuple::new(77, 77);
        let mut true_count = 0u64;
        for i in 0..5_000u64 {
            if i % 7 == 0 {
                p.observe(tracked);
                true_count += 1;
            } else {
                p.observe(Tuple::new(i, i * 3));
            }
            if p.accumulator().contains(tracked) {
                break; // promoted; sketch no longer tracks it
            }
            assert!(
                p.sketch_estimate(tracked) >= true_count,
                "sketch undercounted: est {} < true {}",
                p.sketch_estimate(tracked),
                true_count
            );
        }
    }

    #[test]
    fn conservative_update_bounds_counts_below_plain_update() {
        let seed = 99;
        let interval = IntervalConfig::new(100_000, 0.01).unwrap();
        let mk = |conservative| {
            MultiHashProfiler::new(
                interval,
                MultiHashConfig::new(64, 4)
                    .unwrap()
                    .with_conservative_update(conservative),
                seed,
            )
            .unwrap()
        };
        let mut plain = mk(false);
        let mut cons = mk(true);
        for i in 0..5_000u64 {
            let t = Tuple::new(i % 97, i % 13);
            plain.observe(t);
            cons.observe(t);
        }
        // Counter-by-counter, conservative update never exceeds plain update.
        for (vp, vc) in plain.counters().iter().zip(cons.counters().iter()) {
            assert!(vc <= vp, "conservative {vc} > plain {vp}");
        }
    }

    #[test]
    fn promotion_requires_all_tables_not_just_one() {
        // Artificially heat one table's counter via an aliasing tuple, then
        // verify the victim is not promoted on its first occurrences.
        let cfg = MultiHashConfig::new(32, 2)
            .unwrap()
            .with_conservative_update(false);
        let p0 = profiler(100_000, 0.0001, cfg); // threshold = 10
                                                 // Find tuples a, b aliasing in table 0 but not table 1.
        let a = Tuple::new(0x10, 1);
        let h = p0.family.hashers();
        let mut b = None;
        for i in 0..100_000u64 {
            let cand = Tuple::new(0x9000 + i, i);
            if h[0].index(cand) == h[0].index(a) && h[1].index(cand) != h[1].index(a) {
                b = Some(cand);
                break;
            }
        }
        let b = b.expect("aliasing tuple in table 0 only");
        let mut p = p0;
        for _ in 0..10 {
            p.observe(a); // saturates the shared table-0 counter past 10
        }
        p.observe(b);
        assert!(
            !p.accumulator().contains(b),
            "one hot table must not suffice for promotion"
        );
    }

    #[test]
    fn resetting_zeroes_all_of_the_tuples_counters() {
        let cfg = MultiHashConfig::best()
            .with_resetting(true)
            .with_conservative_update(false);
        let mut p = profiler(1_000, 0.01, cfg);
        let hot = Tuple::new(1, 1);
        for _ in 0..10 {
            p.observe(hot);
        }
        assert!(p.accumulator().contains(hot));
        for (table, idx) in p.family.indices(hot).enumerate() {
            assert_eq!(
                p.table_values(table)[idx],
                0,
                "R1 must zero every table's counter"
            );
        }
    }

    #[test]
    fn interval_boundary_flushes_all_tables() {
        let mut p = profiler(100, 0.1, MultiHashConfig::best());
        for i in 0..100u64 {
            p.observe(Tuple::new(i % 5, 0));
        }
        assert!(
            p.counters().iter().all(|c| c == 0),
            "tables flushed at interval end"
        );
        assert_eq!(p.interval_index(), 1);
    }

    #[test]
    fn disabling_shielding_keeps_hash_counters_growing() {
        let cfg = MultiHashConfig::best().with_shielding(false);
        let mut p = profiler(1_000, 0.01, cfg);
        let hot = Tuple::new(1, 1);
        for _ in 0..60 {
            p.observe(hot);
        }
        // Promotion happened at 10; without shielding all four counters kept
        // counting the remaining 50 occurrences.
        for (table, idx) in p.family.indices(hot).enumerate() {
            let value = p.table_values(table)[idx];
            assert!(
                value >= 60,
                "counter {value} should keep growing without shielding"
            );
        }
        assert_eq!(p.accumulator().count_of(hot), Some(60));
    }

    #[test]
    fn retaining_carries_candidates_into_next_interval() {
        let mut p = profiler(100, 0.1, MultiHashConfig::best());
        let hot = Tuple::new(1, 1);
        let mut profiles = Vec::new();
        for i in 0..200u64 {
            let t = if i % 2 == 0 {
                hot
            } else {
                Tuple::new(100 + i, i)
            };
            if let Some(pr) = p.observe(t) {
                profiles.push(pr);
            }
        }
        assert_eq!(
            profiles[1].count_of(hot),
            Some(50),
            "retained => exact count"
        );
    }

    #[test]
    fn hot_tuples_reports_accumulator_contents_mid_interval() {
        let mut p = profiler(10_000, 0.01, MultiHashConfig::best());
        let hot = Tuple::new(1, 1);
        let warm = Tuple::new(2, 2);
        for _ in 0..300 {
            p.observe(hot);
        }
        for _ in 0..150 {
            p.observe(warm);
        }
        let top = p.hot_tuples(8);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].tuple, hot);
        assert_eq!(top[0].count, 300);
        assert_eq!(top[1].tuple, warm);
        assert_eq!(p.hot_tuples(1).len(), 1);
    }

    #[test]
    fn storage_bytes_match_paper_budget() {
        let p = profiler(10_000, 0.01, MultiHashConfig::best());
        assert_eq!(p.storage_bytes(), 6 * 1024 + 1_000); // 6 KB sketch + 1 KB accumulator
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = profiler(1_000, 0.01, MultiHashConfig::best());
        for i in 0..500u64 {
            p.observe(Tuple::new(i % 3, 0));
        }
        p.reset();
        assert_eq!(p.events_in_current_interval(), 0);
        assert_eq!(p.interval_index(), 0);
        assert!(p.accumulator().is_empty());
        assert!(p.counters().iter().all(|c| c == 0));
    }

    #[test]
    fn counter_block_is_contiguous_with_per_table_offsets() {
        let p = profiler(1_000, 0.01, MultiHashConfig::best());
        let block = p.counters();
        assert_eq!(block.tables(), 4);
        assert_eq!(block.stride(), 512);
        assert_eq!(block.len(), 2048);
        // Flat index arithmetic matches the per-table views.
        assert_eq!(block.flat_index(3, 511), 2047);
    }

    #[test]
    fn saturated_minima_short_circuit_under_c1() {
        // Threshold far above COUNTER_MAX: the tuple can never be promoted,
        // so every occurrence keeps driving the (saturating) counters.
        let interval = IntervalConfig::new(1 << 33, 0.5).unwrap();
        let cfg = MultiHashConfig::new(64, 4).unwrap(); // C1
        let mut p = MultiHashProfiler::new(interval, cfg, 7).unwrap();
        let t = Tuple::new(42, 42);

        // Preset the tuple's four counters just below saturation.
        let flats: Vec<usize> = {
            let mut scratch = vec![0usize; 4];
            p.hash_family().indices_into(t, &mut scratch);
            scratch
                .iter()
                .enumerate()
                .map(|(table, &idx)| p.counters().flat_index(table, idx))
                .collect()
        };
        for &flat in &flats {
            p.block.values_mut()[flat] = COUNTER_MAX - 2;
        }

        let mut true_count = u64::from(COUNTER_MAX - 2);
        for _ in 0..10 {
            assert!(p.observe(t).is_none());
            true_count += 1;
            // The estimate must never undercount, up to the hardware
            // counters' saturation ceiling.
            assert_eq!(
                p.sketch_estimate(t),
                true_count.min(u64::from(COUNTER_MAX)),
                "sketch undercounted at true count {true_count}"
            );
        }
        // All four counters pinned at saturation — ties at COUNTER_MAX are
        // all "minima", and the short-circuit leaves them untouched.
        for &flat in &flats {
            assert_eq!(p.counters().get(flat), COUNTER_MAX);
        }
        assert!(!p.accumulator().contains(t), "threshold above COUNTER_MAX");
    }

    #[test]
    fn observe_batch_matches_per_event_for_every_corner() {
        // Deterministic cross-check over all C×R×shielding corners; the
        // randomized version lives in tests/batch_equivalence.rs.
        let stream: Vec<Tuple> = (0..3_000u64).map(|i| Tuple::new(i % 37, i % 5)).collect();
        for conservative in [false, true] {
            for resetting in [false, true] {
                for shielding in [false, true] {
                    let cfg = MultiHashConfig::new(64, 4)
                        .unwrap()
                        .with_conservative_update(conservative)
                        .with_resetting(resetting)
                        .with_shielding(shielding);
                    let mut a = profiler(500, 0.05, cfg);
                    let mut b = a.clone();
                    let expected: Vec<IntervalProfile> =
                        stream.iter().filter_map(|&t| a.observe(t)).collect();
                    let mut got = Vec::new();
                    for chunk in stream.chunks(257) {
                        got.extend(b.observe_batch(chunk));
                    }
                    assert_eq!(got, expected, "C{conservative} R{resetting} S{shielding}");
                    assert_eq!(a.counters(), b.counters());
                    assert_eq!(
                        a.accumulator().top_k(usize::MAX),
                        b.accumulator().top_k(usize::MAX)
                    );
                    assert_eq!(
                        a.events_in_current_interval(),
                        b.events_in_current_interval()
                    );
                }
            }
        }
    }
}
