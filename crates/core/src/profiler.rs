//! The common interface every profiling architecture implements.

use std::sync::Arc;

use crate::interval::IntervalConfig;
use crate::introspect::IntrospectionSink;
use crate::profile::{Candidate, IntervalProfile};
use crate::state::SnapshotError;
use crate::tuple::Tuple;

/// An interval-based profiler that consumes a stream of tuples and emits an
/// [`IntervalProfile`] each time a profile interval completes.
///
/// Implemented by [`SingleHashProfiler`](crate::SingleHashProfiler),
/// [`MultiHashProfiler`](crate::MultiHashProfiler),
/// [`PerfectProfiler`](crate::PerfectProfiler) and the stratified-sampler
/// baseline in `mhp-stratified`.
///
/// # Examples
///
/// Driving any profiler generically:
///
/// ```
/// use mhp_core::{EventProfiler, IntervalConfig, PerfectProfiler, Tuple};
///
/// fn run<P: EventProfiler>(profiler: &mut P, events: &[Tuple]) -> usize {
///     events
///         .iter()
///         .filter_map(|&t| profiler.observe(t))
///         .count()
/// }
///
/// let mut perfect = PerfectProfiler::new(IntervalConfig::new(4, 0.5).unwrap());
/// let events = vec![Tuple::new(1, 1); 8];
/// assert_eq!(run(&mut perfect, &events), 2); // two complete 4-event intervals
/// ```
pub trait EventProfiler {
    /// The interval configuration this profiler was built with.
    fn interval_config(&self) -> IntervalConfig;

    /// Feeds one profiling event. Returns `Some(profile)` exactly when this
    /// event completes a profile interval.
    fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile>;

    /// Feeds a run of events, returning the profiles of every interval the
    /// batch completed (usually none for externally-cut shard profilers, in
    /// which case no allocation happens at all).
    ///
    /// Semantically identical — bit-for-bit — to calling
    /// [`observe`](Self::observe) per event and collecting the `Some`
    /// results; the profiler architectures override the default with
    /// branch-hoisted loops that resolve their configuration switches once
    /// per batch instead of once per event. This is the ingest hot path of
    /// the sharded engine (`mhp-pipeline`), which also uses the single
    /// per-batch virtual call to avoid dynamic dispatch per event.
    fn observe_batch(&mut self, batch: &[Tuple]) -> Vec<IntervalProfile> {
        batch
            .iter()
            .filter_map(|&tuple| self.observe(tuple))
            .collect()
    }

    /// Ends the current interval immediately, as if the configured number of
    /// events had elapsed, and returns the profile gathered so far.
    ///
    /// Two callers need this: sharded ingestion engines, which cut intervals
    /// on the *global* event count rather than any one shard's local count
    /// (see `mhp-pipeline`), and end-of-stream flushing of a trailing
    /// partial interval. End-of-interval bookkeeping (counter clearing,
    /// retention, interval-index advance) happens exactly as it would on a
    /// natural boundary.
    fn finish_interval(&mut self) -> IntervalProfile;

    /// Clears all profiling state (hash counters, accumulator contents and
    /// the position within the current interval), as if freshly constructed.
    fn reset(&mut self);

    /// The `k` hottest tuples the profiler is tracking *right now*, within
    /// the current incomplete interval, highest count first (ties broken by
    /// ascending tuple order).
    ///
    /// This is the live-query view a profiling service serves between
    /// interval boundaries: for the hardware architectures it is the current
    /// contents of the accumulator table
    /// ([`AccumulatorTable::top_k`](crate::AccumulatorTable::top_k)); for
    /// the perfect profiler it is the exact count map. Reading it never
    /// disturbs profiling state. The default implementation returns an empty
    /// list for profilers with no queryable mid-interval state.
    fn hot_tuples(&self, _k: usize) -> Vec<Candidate> {
        Vec::new()
    }

    /// Number of events observed within the *current*, incomplete interval.
    fn events_in_current_interval(&self) -> u64;

    /// Index of the interval currently being gathered (completed intervals
    /// are numbered `0..interval_index()`).
    fn interval_index(&self) -> u64;

    /// Installs (or, with `None`, removes) an [`IntrospectionSink`] that
    /// receives one [`SketchSnapshot`](crate::SketchSnapshot) per completed
    /// interval.
    ///
    /// The default implementation ignores the sink — profilers with no
    /// sketch state to introspect (e.g. the perfect reference profiler)
    /// simply never report. The hardware architectures override this; with
    /// no sink installed their hot path stays free of any per-event
    /// introspection cost beyond a few plain register increments.
    fn set_introspection_sink(&mut self, sink: Option<Arc<dyn IntrospectionSink>>) {
        let _ = sink;
    }

    /// Serializes the profiler's complete state — counters, accumulator
    /// contents, interval position and configuration fingerprint — into a
    /// versioned, CRC-guarded snapshot (see [`crate::state`]).
    ///
    /// A profiler restored from the snapshot via
    /// [`restore_state`](Self::restore_state) and fed the remainder of an
    /// event stream produces results bit-identical to one that ran
    /// uninterrupted. The default implementation reports
    /// [`SnapshotError::Unsupported`] for profilers with no durable state.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] if this profiler cannot snapshot.
    fn save_state(&self) -> Result<Vec<u8>, SnapshotError> {
        Err(SnapshotError::Unsupported)
    }

    /// Replaces the profiler's state with the contents of a snapshot
    /// previously produced by [`save_state`](Self::save_state) on a profiler
    /// with the *same* configuration (interval, sketch geometry, seed).
    ///
    /// On any error the profiler's current state is left untouched. The
    /// default implementation reports [`SnapshotError::Unsupported`].
    ///
    /// # Errors
    ///
    /// Typed [`SnapshotError`]s: bad magic, unsupported version, truncation,
    /// CRC mismatch, kind or configuration mismatch, or corrupt field
    /// values.
    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), SnapshotError> {
        let _ = snapshot;
        Err(SnapshotError::Unsupported)
    }

    /// Feeds every event from `events`, collecting the completed interval
    /// profiles.
    fn observe_all<I>(&mut self, events: I) -> Vec<IntervalProfile>
    where
        I: IntoIterator<Item = Tuple>,
        Self: Sized,
    {
        events
            .into_iter()
            .filter_map(|tuple| self.observe(tuple))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perfect::PerfectProfiler;

    #[test]
    fn trait_is_object_safe() {
        let config = IntervalConfig::new(2, 0.5).unwrap();
        let mut profiler: Box<dyn EventProfiler> = Box::new(PerfectProfiler::new(config));
        assert!(profiler.observe(Tuple::new(1, 1)).is_none());
        assert!(profiler.observe(Tuple::new(1, 1)).is_some());
    }

    #[test]
    fn finish_interval_flushes_partial_interval() {
        let config = IntervalConfig::new(100, 0.01).unwrap();
        let mut profiler = PerfectProfiler::new(config);
        for _ in 0..5 {
            assert!(profiler.observe(Tuple::new(1, 1)).is_none());
        }
        let profile = profiler.finish_interval();
        assert_eq!(profile.interval_index(), 0);
        assert_eq!(profile.count_of(Tuple::new(1, 1)), Some(5));
        assert_eq!(profiler.events_in_current_interval(), 0);
        assert_eq!(profiler.interval_index(), 1);
    }

    #[test]
    fn externally_cut_profiler_never_self_cuts() {
        let config = IntervalConfig::new(4, 0.5).unwrap().with_external_cut();
        let mut profiler = PerfectProfiler::new(config);
        for _ in 0..10 {
            assert!(profiler.observe(Tuple::new(1, 1)).is_none());
        }
        let profile = profiler.finish_interval();
        assert_eq!(profile.count_of(Tuple::new(1, 1)), Some(10));
    }

    #[test]
    fn hot_tuples_sees_the_current_partial_interval() {
        let config = IntervalConfig::new(1_000, 0.01).unwrap();
        let mut profiler = PerfectProfiler::new(config);
        for i in 0..10u64 {
            profiler.observe(Tuple::new(i % 3, 0));
        }
        let hot = profiler.hot_tuples(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].tuple, Tuple::new(0, 0)); // 4 occurrences
        assert_eq!(hot[0].count, 4);
        assert_eq!(hot[1].count, 3);
        // Querying does not disturb the interval position.
        assert_eq!(profiler.events_in_current_interval(), 10);
    }

    #[test]
    fn default_observe_batch_matches_per_event() {
        let config = IntervalConfig::new(3, 0.5).unwrap();
        let events = vec![Tuple::new(1, 1); 10];
        let mut per_event = PerfectProfiler::new(config);
        let expected: Vec<IntervalProfile> = events
            .iter()
            .filter_map(|&t| per_event.observe(t))
            .collect();
        // Drive the *default* implementation through a trait object (the
        // perfect profiler overrides it; a plain `dyn` call through a shim
        // type would not, so test via the trait's default directly).
        struct Shim(PerfectProfiler);
        impl EventProfiler for Shim {
            fn interval_config(&self) -> IntervalConfig {
                self.0.interval_config()
            }
            fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
                self.0.observe(tuple)
            }
            fn finish_interval(&mut self) -> IntervalProfile {
                self.0.finish_interval()
            }
            fn reset(&mut self) {
                self.0.reset()
            }
            fn events_in_current_interval(&self) -> u64 {
                self.0.events_in_current_interval()
            }
            fn interval_index(&self) -> u64 {
                self.0.interval_index()
            }
        }
        let mut batched: Box<dyn EventProfiler> = Box::new(Shim(PerfectProfiler::new(config)));
        assert_eq!(batched.observe_batch(&events), expected);
        assert_eq!(batched.events_in_current_interval(), 1);
    }

    #[test]
    fn observe_all_collects_completed_intervals() {
        let config = IntervalConfig::new(3, 0.5).unwrap();
        let mut profiler = PerfectProfiler::new(config);
        let events = vec![Tuple::new(1, 1); 10];
        let profiles = profiler.observe_all(events);
        assert_eq!(profiles.len(), 3); // 10 events -> 3 complete 3-event intervals
        assert_eq!(profiler.events_in_current_interval(), 1);
        assert_eq!(profiler.interval_index(), 3);
    }
}
