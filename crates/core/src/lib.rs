//! # mhp-core — interval-based hardware profiler architectures
//!
//! This crate implements the profiling architectures from *"Catching Accurate
//! Profiles in Hardware"* (Narayanasamy, Sherwood, Sair, Calder, Varghese —
//! HPCA 2003): a pure-hardware profiler that captures the most frequently
//! occurring profiling events of a program without any software support.
//!
//! ## Architecture overview
//!
//! Execution is divided into fixed-length **intervals** of profiling events
//! (tuples). Events whose per-interval frequency crosses a **candidate
//! threshold** (a fraction of the interval length) are *candidate tuples* and
//! should end the interval resident in a small, fully associative
//! **accumulator table** with an accurate count. Filtering which tuples get to
//! enter the accumulator is the job of one or more untagged **hash tables of
//! counters**:
//!
//! * [`SingleHashProfiler`] — one hash table (§5 of the paper), with the
//!   optional *retaining* and *resetting* optimizations;
//! * [`MultiHashProfiler`] — the paper's headline contribution (§6): *n*
//!   independent hash tables; a tuple is promoted only when **all** of its
//!   counters cross the threshold, optionally with *conservative update*;
//! * [`PerfectProfiler`] — an exact (unbounded) reference profiler used as
//!   ground truth when measuring error.
//!
//! All architectures implement the [`EventProfiler`] trait: feed tuples with
//! [`EventProfiler::observe`] and collect an [`IntervalProfile`] every time an
//! interval completes.
//!
//! ## Quick example
//!
//! ```
//! use mhp_core::{EventProfiler, IntervalConfig, MultiHashConfig, MultiHashProfiler, Tuple};
//!
//! # fn main() -> Result<(), mhp_core::ConfigError> {
//! let interval = IntervalConfig::new(10_000, 0.01)?; // 10K events, 1% threshold
//! let config = MultiHashConfig::new(2048, 4)?        // 2K counters over 4 tables
//!     .with_conservative_update(true);
//! let mut profiler = MultiHashProfiler::new(interval, config, 0xC0FFEE)?;
//!
//! let mut profiles = Vec::new();
//! for i in 0..20_000u64 {
//!     // A hot tuple every other event, noise otherwise.
//!     let tuple = if i % 2 == 0 { Tuple::new(0x400100, 7) } else { Tuple::new(i, i) };
//!     if let Some(profile) = profiler.observe(tuple) {
//!         profiles.push(profile);
//!     }
//! }
//! assert_eq!(profiles.len(), 2);
//! assert!(profiles[0].contains(Tuple::new(0x400100, 7)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod accumulator;
pub mod area;
pub mod counter;
pub mod error;
pub mod hash;
pub mod interval;
pub mod introspect;
pub mod multi_hash;
pub mod perfect;
pub mod profile;
pub mod profiler;
pub mod rank;
pub mod single_hash;
pub mod state;
pub mod theory;
pub mod tuple;

pub use accumulator::{AccumulatorEntry, AccumulatorTable, InsertOutcome};
pub use area::AreaModel;
pub use counter::{CounterArray, CounterBlock, COUNTER_MAX};
pub use error::{ConfigError, MergeError};
pub use hash::{HashFamily, TupleHasher};
pub use interval::IntervalConfig;
pub use introspect::{CollectingSink, IntrospectionSink, SinkHandle, SketchSnapshot};
pub use multi_hash::{MultiHashConfig, MultiHashProfiler};
pub use perfect::{ExactCounts, PerfectProfiler};
pub use profile::{Candidate, IntervalProfile};
pub use profiler::EventProfiler;
pub use rank::top_k_by_count;
pub use single_hash::{SingleHashConfig, SingleHashProfiler};
pub use state::{
    put_profile, take_profile, SnapshotError, SnapshotReader, SnapshotWriter, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use tuple::{Pc, Tuple, Value};
