//! The hash-function family used to index the counter tables (§5.3).
//!
//! For a tuple `<pc, value>` the paper computes the table index as
//!
//! ```text
//! npc   = flip(randomize(pc));
//! nv    = randomize(value);
//! index = xor_fold(npc ^ nv, index_bits);
//! ```
//!
//! * `randomize` substitutes every byte of its input through a 256-entry
//!   random byte table — a hardwired S-box that magnifies the small
//!   bit-variation between temporally close PCs and values;
//! * `flip` reverses the byte order, moving the PC's low-byte variation into
//!   the high bytes so that xor-ing with the value mixes both ends;
//! * `xor_fold` folds the 64-bit result down to an `index_bits`-bit table
//!   index by xor-ing successive chunks.
//!
//! The multi-hash architecture needs *independent* hash functions; following
//! the paper, independence comes from giving each function its own random
//! byte tables ([`HashFamily`]).
//!
//! The byte tables here are random **permutations** of `0..=255`, which makes
//! `randomize` a bijection on `u64` (a byte-wise substitution cipher) and
//! therefore preserves the even index distribution the paper reports.
//!
//! ## The precomputed-fold fast path
//!
//! `xor_fold` is XOR-linear (`fold(a ^ b) == fold(a) ^ fold(b)`) and `flip`
//! is a byte permutation, so the paper's pipeline distributes over the eight
//! input bytes independently:
//!
//! ```text
//! index = ⊕ᵢ fold(flip(S_pc[pcᵢ] << 8i))  ⊕  ⊕ᵢ fold(S_v[vᵢ] << 8i)
//! ```
//!
//! Each term depends only on (byte position, byte value), so a hasher
//! precomputes two 8×256 *fold-contribution* tables at construction and
//! [`TupleHasher::index`] becomes 16 table loads XOR-ed together — no fold
//! loop, no byte swap, no data-dependent branches. [`HashFamily`] goes one
//! step further: when every hasher's index fits a 16-bit lane and there are
//! at most four tables, the per-hasher contributions are packed into one
//! `u64` entry per (position, byte), and [`HashFamily::indices_into`]
//! computes *all* indices with the same 16 loads — the gather-friendly
//! shape the hardware proposal implies. Both paths are bit-identical to the
//! reference formulation (asserted by tests).

use crate::tuple::Tuple;

/// Maximum number of index bits `xor_fold` supports (the input is 64 bits;
/// folding to >= 64 bits would be the identity and tables that large defeat
/// the point of a hardware profiler).
pub const MAX_INDEX_BITS: u32 = 32;

/// A deterministic 64-bit split-mix generator used to derive the random byte
/// tables from a seed. Small, fast and reproducible across platforms — the
/// hardware analogue is a table burned in at design time.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` via rejection-free multiply-shift.
    fn next_below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A 256-entry random byte-substitution table (one S-box).
#[derive(Clone)]
struct ByteTable {
    table: [u8; 256],
}

impl ByteTable {
    /// Builds a random permutation of `0..=255` from the generator.
    fn random(rng: &mut SplitMix64) -> Self {
        let mut table = [0u8; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            *slot = i as u8;
        }
        // Fisher-Yates shuffle.
        for i in (1..256usize).rev() {
            let j = rng.next_below((i + 1) as u64) as usize;
            table.swap(i, j);
        }
        ByteTable { table }
    }

    /// Substitutes every byte of `v` through the table ("randomize" in the
    /// paper).
    #[inline]
    fn randomize(&self, v: u64) -> u64 {
        let bytes = v.to_le_bytes();
        let mut out = [0u8; 8];
        for (o, b) in out.iter_mut().zip(bytes.iter()) {
            *o = self.table[*b as usize];
        }
        u64::from_le_bytes(out)
    }
}

impl std::fmt::Debug for ByteTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteTable([{}, {}, ..])", self.table[0], self.table[1])
    }
}

/// Reverses the byte order of `v` (the paper's `flip`).
#[inline]
pub fn flip(v: u64) -> u64 {
    v.swap_bytes()
}

/// Folds `v` down to `bits` bits by xor-ing successive `bits`-wide chunks
/// (the paper's `xor-fold`).
///
/// # Panics
///
/// Panics if `bits` is zero or greater than [`MAX_INDEX_BITS`].
///
/// # Examples
///
/// ```
/// use mhp_core::hash::xor_fold;
/// assert_eq!(xor_fold(0xFF00_FF00_FF00_FF00, 8), 0);       // chunks cancel
/// assert!(xor_fold(0x1234_5678_9ABC_DEF0, 11) < (1 << 11)); // in range
/// ```
#[inline]
pub fn xor_fold(v: u64, bits: u32) -> u64 {
    assert!(
        (1..=MAX_INDEX_BITS).contains(&bits),
        "xor_fold requires 1..={MAX_INDEX_BITS} bits, got {bits}"
    );
    let mask = (1u64 << bits) - 1;
    let mut acc = 0u64;
    let mut x = v;
    while x != 0 {
        acc ^= x & mask;
        x >>= bits;
    }
    acc
}

/// One hardwired tuple-to-index hash function (§5.3).
///
/// Each `TupleHasher` owns two byte-substitution tables (one for the PC, one
/// for the value) and produces indices in `0..table_size` where `table_size`
/// is a power of two.
///
/// # Examples
///
/// ```
/// use mhp_core::{hash::TupleHasher, Tuple};
/// let hasher = TupleHasher::new(2048, 1).unwrap();
/// let idx = hasher.index(Tuple::new(0x400100, 42));
/// assert!(idx < 2048);
/// // Deterministic for the same seed:
/// let again = TupleHasher::new(2048, 1).unwrap();
/// assert_eq!(idx, again.index(Tuple::new(0x400100, 42)));
/// ```
#[derive(Debug, Clone)]
pub struct TupleHasher {
    pc_table: ByteTable,
    value_table: ByteTable,
    /// `pc_fold[i][b]` = `xor_fold(flip(S_pc[b] placed at byte i), bits)`:
    /// the finished index contribution of PC byte value `b` at position `i`.
    pc_fold: Box<FoldTable>,
    /// Same, for the value's (un-flipped) substitution table.
    value_fold: Box<FoldTable>,
    index_bits: u32,
    table_size: usize,
}

/// Per-(byte position, byte value) fold contributions; `u32` entries cover
/// every legal `index_bits` (≤ [`MAX_INDEX_BITS`]).
type FoldTable = [[u32; 256]; 8];

/// Builds the fold-contribution table for one substitution table.
/// `flipped` selects the PC side, whose substituted bytes pass through
/// `flip` before folding.
fn fold_table(table: &ByteTable, index_bits: u32, flipped: bool) -> Box<FoldTable> {
    let mut out: Box<FoldTable> = Box::new([[0u32; 256]; 8]);
    for (i, row) in out.iter_mut().enumerate() {
        for (b, slot) in row.iter_mut().enumerate() {
            let substituted = u64::from(table.table[b]) << (8 * i);
            let placed = if flipped {
                flip(substituted)
            } else {
                substituted
            };
            *slot = xor_fold(placed, index_bits) as u32;
        }
    }
    out
}

impl TupleHasher {
    /// Creates a hasher producing indices in `0..table_size`.
    ///
    /// The `seed` selects the random byte tables; two hashers with different
    /// seeds behave as independent hash functions.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::EntriesNotPowerOfTwo`] if `table_size` is not a
    /// power of two of at least 2.
    ///
    /// [`ConfigError::EntriesNotPowerOfTwo`]: crate::ConfigError::EntriesNotPowerOfTwo
    pub fn new(table_size: usize, seed: u64) -> Result<Self, crate::ConfigError> {
        if table_size < 2 || !table_size.is_power_of_two() {
            return Err(crate::ConfigError::EntriesNotPowerOfTwo(table_size));
        }
        let mut rng = SplitMix64::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
        let pc_table = ByteTable::random(&mut rng);
        let value_table = ByteTable::random(&mut rng);
        let index_bits = table_size.trailing_zeros();
        let pc_fold = fold_table(&pc_table, index_bits, true);
        let value_fold = fold_table(&value_table, index_bits, false);
        Ok(TupleHasher {
            pc_table,
            value_table,
            pc_fold,
            value_fold,
            index_bits,
            table_size,
        })
    }

    /// Number of counters this hasher indexes.
    #[inline]
    pub fn table_size(&self) -> usize {
        self.table_size
    }

    /// Number of bits in a produced index.
    #[inline]
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Computes the counter-table index for `tuple`.
    ///
    /// Uses the precomputed fold-contribution tables: 16 loads XOR-ed
    /// together, bit-identical to [`index_reference`](Self::index_reference).
    #[inline]
    pub fn index(&self, tuple: Tuple) -> usize {
        let pc = tuple.pc().as_u64().to_le_bytes();
        let value = tuple.value().as_u64().to_le_bytes();
        let mut acc = 0u32;
        for i in 0..8 {
            acc ^= self.pc_fold[i][pc[i] as usize];
            acc ^= self.value_fold[i][value[i] as usize];
        }
        acc as usize
    }

    /// The paper's formulation computed literally —
    /// `xor_fold(flip(randomize(pc)) ^ randomize(value))` — kept as the
    /// correctness reference for the fold-table fast path.
    pub fn index_reference(&self, tuple: Tuple) -> usize {
        let npc = flip(self.pc_table.randomize(tuple.pc().as_u64()));
        let nv = self.value_table.randomize(tuple.value().as_u64());
        xor_fold(npc ^ nv, self.index_bits) as usize
    }
}

/// A family of independent hash functions for the multi-hash architecture.
///
/// Per §5.3: *"We obtained such independent hash functions by just choosing
/// different random number tables used by the function randomize."*
///
/// # Examples
///
/// ```
/// use mhp_core::{hash::HashFamily, Tuple};
/// let family = HashFamily::new(4, 512, 7).unwrap();
/// assert_eq!(family.len(), 4);
/// let t = Tuple::new(0x400100, 42);
/// let indices: Vec<usize> = family.indices(t).collect();
/// assert_eq!(indices.len(), 4);
/// assert!(indices.iter().all(|&i| i < 512));
/// ```
#[derive(Debug, Clone)]
pub struct HashFamily {
    hashers: Vec<TupleHasher>,
    /// Lane-packed fold tables covering *every* hasher at once, present
    /// when the family fits the packing limits (≤ 4 tables of ≤ 16 index
    /// bits — which includes every configuration the paper evaluates).
    packed: Option<PackedFold>,
}

/// All hashers' fold contributions packed into 16-bit lanes of one `u64`
/// per (byte position, byte value): XOR-ing the 16 entries a tuple selects
/// yields every table index in one accumulator.
#[derive(Debug, Clone)]
struct PackedFold {
    pc: Box<[[u64; 256]; 8]>,
    value: Box<[[u64; 256]; 8]>,
}

/// Width of one packed index lane, in bits.
const PACKED_LANE_BITS: u32 = 16;
/// Most hashers a packed `u64` can hold.
const PACKED_MAX_LANES: usize = 4;

impl PackedFold {
    fn build(hashers: &[TupleHasher]) -> Option<Self> {
        if hashers.is_empty()
            || hashers.len() > PACKED_MAX_LANES
            || hashers.iter().any(|h| h.index_bits() > PACKED_LANE_BITS)
        {
            return None;
        }
        let mut pc: Box<[[u64; 256]; 8]> = Box::new([[0u64; 256]; 8]);
        let mut value: Box<[[u64; 256]; 8]> = Box::new([[0u64; 256]; 8]);
        for (lane, hasher) in hashers.iter().enumerate() {
            let shift = PACKED_LANE_BITS * lane as u32;
            for i in 0..8 {
                for b in 0..256 {
                    pc[i][b] |= u64::from(hasher.pc_fold[i][b]) << shift;
                    value[i][b] |= u64::from(hasher.value_fold[i][b]) << shift;
                }
            }
        }
        Some(PackedFold { pc, value })
    }

    /// XORs the 16 entries `tuple` selects; lane `h` of the result is
    /// hasher `h`'s index.
    #[inline]
    fn lanes(&self, tuple: Tuple) -> u64 {
        let pc = tuple.pc().as_u64().to_le_bytes();
        let value = tuple.value().as_u64().to_le_bytes();
        let mut acc = 0u64;
        for i in 0..8 {
            acc ^= self.pc[i][pc[i] as usize];
            acc ^= self.value[i][value[i] as usize];
        }
        acc
    }
}

impl HashFamily {
    /// Creates `num_tables` independent hashers, each indexing a table of
    /// `table_size` counters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroTables`] if `num_tables` is zero, or
    /// [`ConfigError::EntriesNotPowerOfTwo`] if `table_size` is invalid.
    ///
    /// [`ConfigError::ZeroTables`]: crate::ConfigError::ZeroTables
    /// [`ConfigError::EntriesNotPowerOfTwo`]: crate::ConfigError::EntriesNotPowerOfTwo
    pub fn new(
        num_tables: usize,
        table_size: usize,
        seed: u64,
    ) -> Result<Self, crate::ConfigError> {
        if num_tables == 0 {
            return Err(crate::ConfigError::ZeroTables);
        }
        let hashers = (0..num_tables)
            .map(|i| TupleHasher::new(table_size, seed.wrapping_add(0x9E37 * (i as u64 + 1))))
            .collect::<Result<Vec<_>, _>>()?;
        let packed = PackedFold::build(&hashers);
        Ok(HashFamily { hashers, packed })
    }

    /// Number of hash functions in the family.
    #[inline]
    pub fn len(&self) -> usize {
        self.hashers.len()
    }

    /// Returns `true` if the family contains no hashers (never true for a
    /// successfully constructed family).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.hashers.is_empty()
    }

    /// The hashers in table order.
    #[inline]
    pub fn hashers(&self) -> &[TupleHasher] {
        &self.hashers
    }

    /// Computes `tuple`'s index in every table, in table order.
    #[inline]
    pub fn indices(&self, tuple: Tuple) -> impl Iterator<Item = usize> + '_ {
        self.hashers.iter().map(move |h| h.index(tuple))
    }

    /// Writes `tuple`'s index in every table into `out`, in table order —
    /// the allocation-free twin of [`indices`](Self::indices) used by the
    /// profiler hot path (the caller owns a scratch buffer sized once at
    /// construction).
    ///
    /// When the family fits the lane-packing limits (every configuration
    /// from the paper does), all indices come from 16 shared table loads;
    /// otherwise each hasher's own fold tables are consulted in turn.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.len()`.
    #[inline]
    pub fn indices_into(&self, tuple: Tuple, out: &mut [usize]) {
        assert_eq!(
            out.len(),
            self.hashers.len(),
            "scratch buffer must hold one index per table"
        );
        if let Some(packed) = &self.packed {
            let lanes = packed.lanes(tuple);
            for (h, slot) in out.iter_mut().enumerate() {
                *slot = ((lanes >> (PACKED_LANE_BITS * h as u32)) & u64::from(u16::MAX)) as usize;
            }
        } else {
            for (slot, hasher) in out.iter_mut().zip(&self.hashers) {
                *slot = hasher.index(tuple);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn byte_table_is_a_permutation() {
        let mut rng = SplitMix64::new(1);
        let t = ByteTable::random(&mut rng);
        let mut seen = [false; 256];
        for &b in t.table.iter() {
            assert!(!seen[b as usize], "duplicate byte {b}");
            seen[b as usize] = true;
        }
    }

    #[test]
    fn randomize_is_bijective_per_byte() {
        let mut rng = SplitMix64::new(2);
        let t = ByteTable::random(&mut rng);
        // Distinct single-byte inputs must stay distinct.
        let outs: Vec<u64> = (0..256u64).map(|v| t.randomize(v)).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256);
    }

    #[test]
    fn flip_reverses_bytes() {
        assert_eq!(flip(0x0102_0304_0506_0708), 0x0807_0605_0403_0201);
        assert_eq!(flip(flip(0xdead_beef)), 0xdead_beef);
    }

    #[test]
    fn xor_fold_stays_in_range() {
        for bits in 1..=16 {
            for v in [0u64, 1, u64::MAX, 0x1234_5678_9ABC_DEF0] {
                assert!(xor_fold(v, bits) < (1 << bits));
            }
        }
    }

    #[test]
    fn xor_fold_of_zero_is_zero() {
        assert_eq!(xor_fold(0, 11), 0);
    }

    #[test]
    #[should_panic(expected = "xor_fold requires")]
    fn xor_fold_rejects_zero_bits() {
        xor_fold(1, 0);
    }

    #[test]
    fn hasher_rejects_non_power_of_two() {
        assert!(TupleHasher::new(0, 1).is_err());
        assert!(TupleHasher::new(1, 1).is_err());
        assert!(TupleHasher::new(3, 1).is_err());
        assert!(TupleHasher::new(2049, 1).is_err());
        assert!(TupleHasher::new(2048, 1).is_ok());
    }

    #[test]
    fn hasher_is_deterministic_and_seed_sensitive() {
        let a = TupleHasher::new(1024, 5).unwrap();
        let b = TupleHasher::new(1024, 5).unwrap();
        let c = TupleHasher::new(1024, 6).unwrap();
        let mut differs = false;
        for i in 0..64u64 {
            let t = Tuple::new(0x400000 + i * 4, i);
            assert_eq!(a.index(t), b.index(t));
            if a.index(t) != c.index(t) {
                differs = true;
            }
        }
        assert!(differs, "different seeds should give different functions");
    }

    #[test]
    fn hasher_distributes_sequential_pcs_evenly() {
        // The whole point of randomize/flip: temporally close PCs with small
        // variation must spread across the table. Chi-square-ish check: no
        // bucket should get more than ~8x its fair share.
        let size = 256;
        let h = TupleHasher::new(size, 99).unwrap();
        let n = 64 * size;
        let mut histogram = vec![0u32; size];
        for i in 0..n {
            let t = Tuple::new(0x400000 + (i as u64) * 4, 7);
            histogram[h.index(t)] += 1;
        }
        let expected = (n / size) as u32;
        let max = *histogram.iter().max().unwrap();
        assert!(
            max < expected * 8,
            "max bucket {max} vs expected {expected}: distribution too skewed"
        );
    }

    #[test]
    fn family_members_are_pairwise_distinct_functions() {
        let family = HashFamily::new(4, 512, 11).unwrap();
        let probes: Vec<Tuple> = (0..256u64).map(|i| Tuple::new(i * 8, i)).collect();
        for a in 0..family.len() {
            for b in (a + 1)..family.len() {
                let same = probes
                    .iter()
                    .filter(|&&t| family.hashers()[a].index(t) == family.hashers()[b].index(t))
                    .count();
                // Random collisions happen at rate 1/512; all-equal means the
                // functions are not independent.
                assert!(
                    same < probes.len() / 8,
                    "hashers {a} and {b} too correlated: {same}"
                );
            }
        }
    }

    #[test]
    fn family_rejects_zero_tables() {
        assert!(matches!(
            HashFamily::new(0, 512, 1),
            Err(crate::ConfigError::ZeroTables)
        ));
    }

    #[test]
    fn family_indices_match_individual_hashers() {
        let family = HashFamily::new(3, 128, 3).unwrap();
        let t = Tuple::new(0x1000, 55);
        let via_iter: Vec<usize> = family.indices(t).collect();
        let via_hashers: Vec<usize> = family.hashers().iter().map(|h| h.index(t)).collect();
        assert_eq!(via_iter, via_hashers);
    }

    #[test]
    fn indices_into_matches_indices() {
        let family = HashFamily::new(4, 256, 9).unwrap();
        let mut scratch = [0usize; 4];
        for i in 0..64u64 {
            let t = Tuple::new(0x400000 + i * 4, i);
            family.indices_into(t, &mut scratch);
            let via_iter: Vec<usize> = family.indices(t).collect();
            assert_eq!(scratch.as_slice(), via_iter.as_slice());
        }
    }

    #[test]
    #[should_panic(expected = "one index per table")]
    fn indices_into_rejects_wrong_scratch_len() {
        let family = HashFamily::new(4, 256, 9).unwrap();
        let mut scratch = [0usize; 3];
        family.indices_into(Tuple::new(1, 1), &mut scratch);
    }

    /// An adversarial-ish tuple set for equivalence sweeps: byte-diverse
    /// PCs and values, plus the extremes.
    fn probe_tuples() -> Vec<Tuple> {
        let mut rng = SplitMix64::new(0xF01D);
        let mut tuples: Vec<Tuple> = (0..512)
            .map(|_| Tuple::new(rng.next_u64(), rng.next_u64()))
            .collect();
        tuples.extend([
            Tuple::new(0, 0),
            Tuple::new(u64::MAX, u64::MAX),
            Tuple::new(0x0400_0100, 42),
            Tuple::new(u64::MAX, 0),
            Tuple::new(0, u64::MAX),
        ]);
        tuples
    }

    #[test]
    fn fold_table_index_matches_the_reference_formulation() {
        // The fast path must be bit-identical to the paper's literal
        // randomize/flip/xor-fold pipeline, for every table size.
        for (size, seed) in [(2usize, 1u64), (256, 99), (2048, 5), (1 << 20, 7)] {
            let h = TupleHasher::new(size, seed).unwrap();
            for &t in &probe_tuples() {
                assert_eq!(
                    h.index(t),
                    h.index_reference(t),
                    "size {size} seed {seed} tuple {t:?}"
                );
            }
        }
    }

    #[test]
    fn packed_family_indices_match_per_hasher_indices() {
        // Packing limits: ≤ 4 lanes, ≤ 16 index bits. Sweep configurations
        // inside the limits (packed) and outside them (fallback); both must
        // agree with the per-hasher reference exactly.
        for (tables, size) in [
            (1usize, 512usize),
            (2, 2048),
            (4, 512),
            (4, 1 << 16),
            (6, 512),
        ] {
            let family = HashFamily::new(tables, size, 31).unwrap();
            let mut scratch = vec![0usize; tables];
            for &t in &probe_tuples() {
                family.indices_into(t, &mut scratch);
                let expected: Vec<usize> = family
                    .hashers()
                    .iter()
                    .map(|h| h.index_reference(t))
                    .collect();
                assert_eq!(scratch, expected, "{tables} tables of {size}");
            }
        }
    }
}
