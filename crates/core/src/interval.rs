//! Interval-based profiling parameters (§5.1).
//!
//! Two parameters govern every profiler in this crate:
//!
//! * the **profile interval length** — the number of profiling events that
//!   make up one interval; and
//! * the **candidate threshold** — the fraction of the interval length an
//!   event must reach to be a *candidate tuple*.
//!
//! Together they bound the accumulator table: if only tuples above fraction
//! `t` are captured, at most `1/t` tuples can qualify in any interval, so an
//! accumulator of `ceil(1/t)` entries never overflows with true candidates
//! (§5.1: 100 entries for 1 %, 1,000 entries for 0.1 %).

use crate::error::ConfigError;

/// The paper's short configuration: 10,000-event intervals with a 1 %
/// candidate threshold (fast training, light table pressure).
pub const SHORT_INTERVAL: (u64, f64) = (10_000, 0.01);

/// The paper's long configuration: 1,000,000-event intervals with a 0.1 %
/// candidate threshold (severe hash-table pressure).
pub const LONG_INTERVAL: (u64, f64) = (1_000_000, 0.001);

/// Interval length plus candidate threshold.
///
/// # Examples
///
/// ```
/// use mhp_core::IntervalConfig;
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// let cfg = IntervalConfig::new(10_000, 0.01)?;
/// assert_eq!(cfg.threshold_count(), 100);       // 1% of 10,000
/// assert_eq!(cfg.accumulator_capacity(), 100);  // at most 100 events >= 1%
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalConfig {
    interval_len: u64,
    threshold_fraction: f64,
    /// When `true`, profilers never cut an interval on their own event
    /// count; an external driver ends intervals via
    /// [`EventProfiler::finish_interval`](crate::EventProfiler::finish_interval).
    external_cut: bool,
}

impl IntervalConfig {
    /// Creates a configuration with `interval_len` events per interval and a
    /// candidate threshold of `threshold_fraction` (e.g. `0.01` for 1 %).
    ///
    /// # Errors
    ///
    /// * [`ConfigError::ZeroIntervalLength`] if `interval_len == 0`;
    /// * [`ConfigError::ThresholdOutOfRange`] if `threshold_fraction` is not
    ///   in `(0, 1]` (NaN included).
    pub fn new(interval_len: u64, threshold_fraction: f64) -> Result<Self, ConfigError> {
        if interval_len == 0 {
            return Err(ConfigError::ZeroIntervalLength);
        }
        if !(threshold_fraction > 0.0 && threshold_fraction <= 1.0) {
            return Err(ConfigError::ThresholdOutOfRange(threshold_fraction));
        }
        Ok(IntervalConfig {
            interval_len,
            threshold_fraction,
            external_cut: false,
        })
    }

    /// Marks this configuration as **externally cut**: the profiler keeps
    /// its threshold and accumulator sizing (both derived from
    /// `interval_len` and the threshold fraction) but never completes an
    /// interval from its own event count — the owner decides interval
    /// boundaries by calling
    /// [`EventProfiler::finish_interval`](crate::EventProfiler::finish_interval).
    ///
    /// This is how a shard of a partitioned stream profiles against the
    /// *global* interval structure: each shard sees only a fraction of the
    /// events, so local counts must not trigger cuts.
    pub fn with_external_cut(mut self) -> Self {
        self.external_cut = true;
        self
    }

    /// Returns the internally-cut (normal) version of this configuration.
    pub fn with_internal_cut(mut self) -> Self {
        self.external_cut = false;
        self
    }

    /// Whether interval boundaries are driven externally.
    #[inline]
    pub fn external_cut(&self) -> bool {
        self.external_cut
    }

    /// Returns `true` when a profiler that has seen `events` events this
    /// interval should complete the interval now.
    #[inline]
    pub fn is_boundary(&self, events: u64) -> bool {
        !self.external_cut && events == self.interval_len
    }

    /// The paper's short configuration (10,000 events, 1 % threshold).
    pub fn short() -> Self {
        IntervalConfig::new(SHORT_INTERVAL.0, SHORT_INTERVAL.1).expect("paper constants are valid")
    }

    /// The paper's long configuration (1,000,000 events, 0.1 % threshold).
    pub fn long() -> Self {
        IntervalConfig::new(LONG_INTERVAL.0, LONG_INTERVAL.1).expect("paper constants are valid")
    }

    /// Number of events in one profile interval.
    #[inline]
    pub fn interval_len(&self) -> u64 {
        self.interval_len
    }

    /// Candidate threshold as a fraction of the interval length.
    #[inline]
    pub fn threshold_fraction(&self) -> f64 {
        self.threshold_fraction
    }

    /// The threshold as an absolute event count: a tuple is a candidate once
    /// it occurs at least this many times in an interval.
    ///
    /// Computed as `ceil(interval_len * threshold_fraction)`, never below 1.
    #[inline]
    pub fn threshold_count(&self) -> u64 {
        let t = (self.interval_len as f64 * self.threshold_fraction).ceil() as u64;
        t.max(1)
    }

    /// Worst-case number of distinct candidates per interval — the
    /// accumulator capacity that guarantees no true candidate is dropped for
    /// lack of space: `floor(interval_len / threshold_count)` capped at
    /// `ceil(1 / threshold_fraction)`.
    #[inline]
    pub fn accumulator_capacity(&self) -> usize {
        let by_count = (self.interval_len / self.threshold_count()).max(1);
        let by_fraction = (1.0 / self.threshold_fraction).ceil() as u64;
        by_count.min(by_fraction).max(1) as usize
    }
}

impl Default for IntervalConfig {
    /// Defaults to the paper's short configuration.
    fn default() -> Self {
        IntervalConfig::short()
    }
}

impl std::fmt::Display for IntervalConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} events @ {}%",
            self.interval_len,
            self.threshold_fraction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_config_matches_paper() {
        let c = IntervalConfig::short();
        assert_eq!(c.interval_len(), 10_000);
        assert_eq!(c.threshold_count(), 100);
        assert_eq!(c.accumulator_capacity(), 100);
    }

    #[test]
    fn long_config_matches_paper() {
        let c = IntervalConfig::long();
        assert_eq!(c.interval_len(), 1_000_000);
        assert_eq!(c.threshold_count(), 1_000);
        assert_eq!(c.accumulator_capacity(), 1_000);
    }

    #[test]
    fn zero_interval_rejected() {
        assert_eq!(
            IntervalConfig::new(0, 0.01).unwrap_err(),
            ConfigError::ZeroIntervalLength
        );
    }

    #[test]
    fn bad_thresholds_rejected() {
        for t in [0.0, -0.1, 1.5, f64::NAN] {
            assert!(
                IntervalConfig::new(100, t).is_err(),
                "threshold {t} accepted"
            );
        }
        assert!(IntervalConfig::new(100, 1.0).is_ok());
    }

    #[test]
    fn threshold_count_rounds_up_and_is_at_least_one() {
        // 0.1% of 10,000 = 10
        assert_eq!(
            IntervalConfig::new(10_000, 0.001)
                .unwrap()
                .threshold_count(),
            10
        );
        // 0.03% of 10,000 = 3
        assert_eq!(
            IntervalConfig::new(10_000, 0.0003)
                .unwrap()
                .threshold_count(),
            3
        );
        // tiny fraction of a tiny interval still requires >= 1 occurrence
        assert_eq!(IntervalConfig::new(10, 0.001).unwrap().threshold_count(), 1);
    }

    #[test]
    fn capacity_is_bounded_by_interval_and_fraction() {
        // threshold 50% -> at most 2 candidates
        assert_eq!(
            IntervalConfig::new(1000, 0.5)
                .unwrap()
                .accumulator_capacity(),
            2
        );
        // threshold 100% -> exactly 1
        assert_eq!(
            IntervalConfig::new(1000, 1.0)
                .unwrap()
                .accumulator_capacity(),
            1
        );
        // tiny interval: capacity cannot exceed interval/threshold_count
        let c = IntervalConfig::new(10, 0.001).unwrap();
        assert!(c.accumulator_capacity() <= 10);
    }

    #[test]
    fn external_cut_disables_boundaries_but_keeps_sizing() {
        let normal = IntervalConfig::new(1_000, 0.01).unwrap();
        let sharded = normal.with_external_cut();
        assert!(sharded.external_cut());
        assert_eq!(sharded.threshold_count(), normal.threshold_count());
        assert_eq!(
            sharded.accumulator_capacity(),
            normal.accumulator_capacity()
        );
        assert!(normal.is_boundary(1_000));
        assert!(!normal.is_boundary(999));
        assert!(!sharded.is_boundary(1_000));
        assert!(!sharded.is_boundary(u64::MAX));
        assert_eq!(sharded.with_internal_cut(), normal);
        assert_ne!(sharded, normal);
    }

    #[test]
    fn default_is_short() {
        assert_eq!(IntervalConfig::default(), IntervalConfig::short());
    }

    #[test]
    fn display_mentions_length_and_percent() {
        let s = IntervalConfig::short().to_string();
        assert!(s.contains("10000"));
        assert!(s.contains('%'));
    }
}
