//! The per-interval output of a profiler.

use std::collections::HashMap;

use crate::error::MergeError;
use crate::interval::IntervalConfig;
use crate::tuple::Tuple;

/// One captured candidate: a tuple and the frequency the profiler observed
/// for it within the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// The candidate tuple.
    pub tuple: Tuple,
    /// The profiler-observed occurrence count within the interval. For a
    /// hardware profiler this may differ from the true count (that difference
    /// is exactly what the error metrics measure).
    pub count: u64,
}

impl Candidate {
    /// Creates a candidate record.
    pub fn new(tuple: Tuple, count: u64) -> Self {
        Candidate { tuple, count }
    }
}

/// The set of candidate tuples a profiler reports for one completed interval.
///
/// Candidates are sorted by descending count (ties broken by tuple order) so
/// that the hottest events come first, which is how a run-time optimizer
/// would consume the table.
///
/// # Examples
///
/// ```
/// use mhp_core::{Candidate, IntervalConfig, IntervalProfile, Tuple};
/// let config = IntervalConfig::short();
/// let profile = IntervalProfile::from_candidates(
///     0,
///     config,
///     vec![Candidate::new(Tuple::new(1, 1), 200), Candidate::new(Tuple::new(2, 2), 900)],
/// );
/// assert_eq!(profile.len(), 2);
/// assert_eq!(profile.candidates()[0].count, 900); // hottest first
/// assert_eq!(profile.count_of(Tuple::new(1, 1)), Some(200));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalProfile {
    interval_index: u64,
    config: IntervalConfig,
    candidates: Vec<Candidate>,
    by_tuple: HashMap<Tuple, u64>,
}

impl IntervalProfile {
    /// Builds a profile from raw candidates. Input order does not matter;
    /// candidates are re-sorted hottest-first. Duplicate tuples are summed.
    pub fn from_candidates(
        interval_index: u64,
        config: IntervalConfig,
        candidates: Vec<Candidate>,
    ) -> Self {
        let mut by_tuple: HashMap<Tuple, u64> = HashMap::with_capacity(candidates.len());
        for c in &candidates {
            *by_tuple.entry(c.tuple).or_insert(0) += c.count;
        }
        let mut candidates: Vec<Candidate> = by_tuple
            .iter()
            .map(|(&tuple, &count)| Candidate { tuple, count })
            .collect();
        candidates.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.tuple.cmp(&b.tuple)));
        IntervalProfile {
            interval_index,
            config,
            candidates,
            by_tuple,
        }
    }

    /// Zero-based index of the interval this profile covers.
    #[inline]
    pub fn interval_index(&self) -> u64 {
        self.interval_index
    }

    /// The interval configuration under which the profile was gathered.
    #[inline]
    pub fn config(&self) -> IntervalConfig {
        self.config
    }

    /// The candidate threshold, as an absolute count.
    #[inline]
    pub fn threshold_count(&self) -> u64 {
        self.config.threshold_count()
    }

    /// Candidates in descending-count order.
    #[inline]
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The `k` hottest candidates (a prefix of [`candidates`](Self::candidates),
    /// which is already sorted hottest-first with deterministic ties).
    #[inline]
    pub fn top_k(&self, k: usize) -> &[Candidate] {
        &self.candidates[..k.min(self.candidates.len())]
    }

    /// Number of candidates captured.
    #[inline]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns `true` if no candidate was captured this interval.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The observed count for `tuple`, or `None` if it was not captured.
    #[inline]
    pub fn count_of(&self, tuple: Tuple) -> Option<u64> {
        self.by_tuple.get(&tuple).copied()
    }

    /// Returns `true` if `tuple` was captured as a candidate.
    #[inline]
    pub fn contains(&self, tuple: Tuple) -> bool {
        self.by_tuple.contains_key(&tuple)
    }

    /// Iterates over captured tuples (hottest first).
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.candidates.iter().map(|c| c.tuple)
    }

    /// Sum of all captured counts.
    pub fn total_count(&self) -> u64 {
        self.candidates.iter().map(|c| c.count).sum()
    }

    /// Merges per-shard profiles of the **same interval** into one global
    /// profile.
    ///
    /// This is the merge stage of a sharded ingestion engine (see
    /// `mhp-pipeline`): each shard profiles a partition of the event stream
    /// against the global interval structure, and the global profile for an
    /// interval is the union of the shards' candidate sets with counts for
    /// the same tuple **summed**. Under tuple-stable partitioning (all
    /// occurrences of a tuple routed to one shard) no count is ever split,
    /// so the sum is exactly the owning shard's count; the summing rule
    /// exists for partitioners that *do* split a tuple's occurrences, where
    /// a tuple whose per-shard counts each crossed the threshold merges to
    /// their total. A tuple whose occurrences were split such that **no**
    /// shard saw it cross the threshold is not recoverable here — it was
    /// never promoted to any shard's accumulator. That undercount mode is
    /// documented in `DESIGN.md` and avoided entirely by tuple-stable
    /// partitioning.
    ///
    /// The merged profile carries the common interval index and the
    /// internally-cut version of the common configuration (shard profiles
    /// are typically gathered under
    /// [`IntervalConfig::with_external_cut`]; the merged, global view is a
    /// normal interval again).
    ///
    /// # Errors
    ///
    /// * [`MergeError::Empty`] if `parts` yields no profile;
    /// * [`MergeError::IntervalMismatch`] if parts cover different
    ///   intervals;
    /// * [`MergeError::ConfigMismatch`] if parts were gathered under
    ///   different interval lengths or threshold fractions.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhp_core::{Candidate, IntervalConfig, IntervalProfile, Tuple};
    /// let config = IntervalConfig::short();
    /// let shard = |candidates| IntervalProfile::from_candidates(7, config, candidates);
    /// let merged = IntervalProfile::merge([
    ///     shard(vec![Candidate::new(Tuple::new(1, 1), 400)]),
    ///     shard(vec![Candidate::new(Tuple::new(2, 2), 250)]),
    /// ])
    /// .unwrap();
    /// assert_eq!(merged.interval_index(), 7);
    /// assert_eq!(merged.count_of(Tuple::new(1, 1)), Some(400));
    /// assert_eq!(merged.count_of(Tuple::new(2, 2)), Some(250));
    /// ```
    pub fn merge<I>(parts: I) -> Result<IntervalProfile, MergeError>
    where
        I: IntoIterator<Item = IntervalProfile>,
    {
        let mut parts = parts.into_iter();
        let first = parts.next().ok_or(MergeError::Empty)?;
        let interval_index = first.interval_index;
        let config = first.config.with_internal_cut();
        let mut candidates = first.candidates;
        for part in parts {
            if part.interval_index != interval_index {
                return Err(MergeError::IntervalMismatch {
                    expected: interval_index,
                    found: part.interval_index,
                });
            }
            if part.config.with_internal_cut() != config {
                return Err(MergeError::ConfigMismatch);
            }
            candidates.extend(part.candidates);
        }
        Ok(IntervalProfile::from_candidates(
            interval_index,
            config,
            candidates,
        ))
    }
}

impl<'a> IntoIterator for &'a IntervalProfile {
    type Item = &'a Candidate;
    type IntoIter = std::slice::Iter<'a, Candidate>;

    fn into_iter(self) -> Self::IntoIter {
        self.candidates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(counts: &[(u64, u64, u64)]) -> IntervalProfile {
        IntervalProfile::from_candidates(
            3,
            IntervalConfig::short(),
            counts
                .iter()
                .map(|&(pc, v, n)| Candidate::new(Tuple::new(pc, v), n))
                .collect(),
        )
    }

    #[test]
    fn candidates_sorted_hottest_first() {
        let p = profile(&[(1, 1, 100), (2, 2, 300), (3, 3, 200)]);
        let counts: Vec<u64> = p.candidates().iter().map(|c| c.count).collect();
        assert_eq!(counts, vec![300, 200, 100]);
    }

    #[test]
    fn ties_break_deterministically_by_tuple() {
        let p = profile(&[(9, 9, 100), (1, 1, 100)]);
        assert_eq!(p.candidates()[0].tuple, Tuple::new(1, 1));
    }

    #[test]
    fn duplicate_tuples_are_summed() {
        let p = profile(&[(1, 1, 100), (1, 1, 50)]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.count_of(Tuple::new(1, 1)), Some(150));
    }

    #[test]
    fn top_k_is_the_hottest_prefix() {
        let p = profile(&[(1, 1, 100), (2, 2, 300), (3, 3, 200)]);
        let counts: Vec<u64> = p.top_k(2).iter().map(|c| c.count).collect();
        assert_eq!(counts, vec![300, 200]);
        assert_eq!(p.top_k(0).len(), 0);
        assert_eq!(p.top_k(99).len(), 3);
    }

    #[test]
    fn lookup_and_membership() {
        let p = profile(&[(1, 1, 100)]);
        assert!(p.contains(Tuple::new(1, 1)));
        assert!(!p.contains(Tuple::new(1, 2)));
        assert_eq!(p.count_of(Tuple::new(1, 2)), None);
    }

    #[test]
    fn empty_profile_reports_empty() {
        let p = profile(&[]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.total_count(), 0);
    }

    #[test]
    fn metadata_is_preserved() {
        let p = profile(&[(1, 1, 100)]);
        assert_eq!(p.interval_index(), 3);
        assert_eq!(p.threshold_count(), 100);
        assert_eq!(p.config(), IntervalConfig::short());
    }

    #[test]
    fn merge_sums_counts_split_across_shards() {
        let a = profile(&[(1, 1, 100), (2, 2, 300)]);
        let b = profile(&[(1, 1, 150), (3, 3, 120)]);
        let merged = IntervalProfile::merge([a, b]).unwrap();
        assert_eq!(merged.count_of(Tuple::new(1, 1)), Some(250));
        assert_eq!(merged.count_of(Tuple::new(2, 2)), Some(300));
        assert_eq!(merged.count_of(Tuple::new(3, 3)), Some(120));
        assert_eq!(merged.interval_index(), 3);
        // Hottest-first ordering is re-established over the merged set.
        assert_eq!(merged.candidates()[0].tuple, Tuple::new(2, 2));
    }

    #[test]
    fn merge_of_single_part_is_identity() {
        let p = profile(&[(1, 1, 100), (2, 2, 300)]);
        let merged = IntervalProfile::merge([p.clone()]).unwrap();
        assert_eq!(merged, p);
    }

    #[test]
    fn merge_normalizes_external_cut_configs() {
        let sharded = IntervalConfig::short().with_external_cut();
        let part = |pc: u64| {
            IntervalProfile::from_candidates(
                0,
                sharded,
                vec![Candidate::new(Tuple::new(pc, 0), 150)],
            )
        };
        let merged = IntervalProfile::merge([part(1), part(2)]).unwrap();
        assert_eq!(merged.config(), IntervalConfig::short());
        assert!(!merged.config().external_cut());
    }

    #[test]
    fn merge_rejects_empty_and_mismatched_parts() {
        assert_eq!(
            IntervalProfile::merge(std::iter::empty()),
            Err(MergeError::Empty)
        );

        let a = profile(&[(1, 1, 100)]);
        let other_interval =
            IntervalProfile::from_candidates(9, IntervalConfig::short(), Vec::new());
        assert_eq!(
            IntervalProfile::merge([a.clone(), other_interval]),
            Err(MergeError::IntervalMismatch {
                expected: 3,
                found: 9
            })
        );

        let other_config = IntervalProfile::from_candidates(3, IntervalConfig::long(), Vec::new());
        assert_eq!(
            IntervalProfile::merge([a, other_config]),
            Err(MergeError::ConfigMismatch)
        );
    }

    #[test]
    fn iteration_yields_all_candidates() {
        let p = profile(&[(1, 1, 10), (2, 2, 20)]);
        assert_eq!(p.into_iter().count(), 2);
        assert_eq!(p.tuples().count(), 2);
        assert_eq!(p.total_count(), 30);
    }
}
