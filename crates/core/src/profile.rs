//! The per-interval output of a profiler.

use std::collections::HashMap;

use crate::interval::IntervalConfig;
use crate::tuple::Tuple;

/// One captured candidate: a tuple and the frequency the profiler observed
/// for it within the interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// The candidate tuple.
    pub tuple: Tuple,
    /// The profiler-observed occurrence count within the interval. For a
    /// hardware profiler this may differ from the true count (that difference
    /// is exactly what the error metrics measure).
    pub count: u64,
}

impl Candidate {
    /// Creates a candidate record.
    pub fn new(tuple: Tuple, count: u64) -> Self {
        Candidate { tuple, count }
    }
}

/// The set of candidate tuples a profiler reports for one completed interval.
///
/// Candidates are sorted by descending count (ties broken by tuple order) so
/// that the hottest events come first, which is how a run-time optimizer
/// would consume the table.
///
/// # Examples
///
/// ```
/// use mhp_core::{Candidate, IntervalConfig, IntervalProfile, Tuple};
/// let config = IntervalConfig::short();
/// let profile = IntervalProfile::from_candidates(
///     0,
///     config,
///     vec![Candidate::new(Tuple::new(1, 1), 200), Candidate::new(Tuple::new(2, 2), 900)],
/// );
/// assert_eq!(profile.len(), 2);
/// assert_eq!(profile.candidates()[0].count, 900); // hottest first
/// assert_eq!(profile.count_of(Tuple::new(1, 1)), Some(200));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalProfile {
    interval_index: u64,
    config: IntervalConfig,
    candidates: Vec<Candidate>,
    by_tuple: HashMap<Tuple, u64>,
}

impl IntervalProfile {
    /// Builds a profile from raw candidates. Input order does not matter;
    /// candidates are re-sorted hottest-first. Duplicate tuples are summed.
    pub fn from_candidates(
        interval_index: u64,
        config: IntervalConfig,
        candidates: Vec<Candidate>,
    ) -> Self {
        let mut by_tuple: HashMap<Tuple, u64> = HashMap::with_capacity(candidates.len());
        for c in &candidates {
            *by_tuple.entry(c.tuple).or_insert(0) += c.count;
        }
        let mut candidates: Vec<Candidate> = by_tuple
            .iter()
            .map(|(&tuple, &count)| Candidate { tuple, count })
            .collect();
        candidates.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.tuple.cmp(&b.tuple)));
        IntervalProfile {
            interval_index,
            config,
            candidates,
            by_tuple,
        }
    }

    /// Zero-based index of the interval this profile covers.
    #[inline]
    pub fn interval_index(&self) -> u64 {
        self.interval_index
    }

    /// The interval configuration under which the profile was gathered.
    #[inline]
    pub fn config(&self) -> IntervalConfig {
        self.config
    }

    /// The candidate threshold, as an absolute count.
    #[inline]
    pub fn threshold_count(&self) -> u64 {
        self.config.threshold_count()
    }

    /// Candidates in descending-count order.
    #[inline]
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Number of candidates captured.
    #[inline]
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Returns `true` if no candidate was captured this interval.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The observed count for `tuple`, or `None` if it was not captured.
    #[inline]
    pub fn count_of(&self, tuple: Tuple) -> Option<u64> {
        self.by_tuple.get(&tuple).copied()
    }

    /// Returns `true` if `tuple` was captured as a candidate.
    #[inline]
    pub fn contains(&self, tuple: Tuple) -> bool {
        self.by_tuple.contains_key(&tuple)
    }

    /// Iterates over captured tuples (hottest first).
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.candidates.iter().map(|c| c.tuple)
    }

    /// Sum of all captured counts.
    pub fn total_count(&self) -> u64 {
        self.candidates.iter().map(|c| c.count).sum()
    }
}

impl<'a> IntoIterator for &'a IntervalProfile {
    type Item = &'a Candidate;
    type IntoIter = std::slice::Iter<'a, Candidate>;

    fn into_iter(self) -> Self::IntoIter {
        self.candidates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(counts: &[(u64, u64, u64)]) -> IntervalProfile {
        IntervalProfile::from_candidates(
            3,
            IntervalConfig::short(),
            counts
                .iter()
                .map(|&(pc, v, n)| Candidate::new(Tuple::new(pc, v), n))
                .collect(),
        )
    }

    #[test]
    fn candidates_sorted_hottest_first() {
        let p = profile(&[(1, 1, 100), (2, 2, 300), (3, 3, 200)]);
        let counts: Vec<u64> = p.candidates().iter().map(|c| c.count).collect();
        assert_eq!(counts, vec![300, 200, 100]);
    }

    #[test]
    fn ties_break_deterministically_by_tuple() {
        let p = profile(&[(9, 9, 100), (1, 1, 100)]);
        assert_eq!(p.candidates()[0].tuple, Tuple::new(1, 1));
    }

    #[test]
    fn duplicate_tuples_are_summed() {
        let p = profile(&[(1, 1, 100), (1, 1, 50)]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.count_of(Tuple::new(1, 1)), Some(150));
    }

    #[test]
    fn lookup_and_membership() {
        let p = profile(&[(1, 1, 100)]);
        assert!(p.contains(Tuple::new(1, 1)));
        assert!(!p.contains(Tuple::new(1, 2)));
        assert_eq!(p.count_of(Tuple::new(1, 2)), None);
    }

    #[test]
    fn empty_profile_reports_empty() {
        let p = profile(&[]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.total_count(), 0);
    }

    #[test]
    fn metadata_is_preserved() {
        let p = profile(&[(1, 1, 100)]);
        assert_eq!(p.interval_index(), 3);
        assert_eq!(p.threshold_count(), 100);
        assert_eq!(p.config(), IntervalConfig::short());
    }

    #[test]
    fn iteration_yields_all_candidates() {
        let p = profile(&[(1, 1, 10), (2, 2, 20)]);
        assert_eq!(p.into_iter().count(), 2);
        assert_eq!(p.tuples().count(), 2);
        assert_eq!(p.total_count(), 30);
    }
}
