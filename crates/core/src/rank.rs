//! Hottest-first ranking shared by every consumer of profile counts.
//!
//! Several layers need the same selection: "the `k` entries with the largest
//! counts, hottest first, ties broken deterministically by key". The
//! accumulator's [`top_k`](crate::AccumulatorTable::top_k) accessor, the
//! perfect profiler's mid-interval snapshot, and the application clients in
//! `mhp-apps` (frequent-value dictionaries, delinquent-load sets) all rank
//! `(key, count)` pairs this way; this module is the single implementation.

/// Selects the `k` pairs with the largest counts, hottest first.
///
/// Ties are broken by ascending key so the result is deterministic for any
/// input order — the same rule [`IntervalProfile`](crate::IntervalProfile)
/// uses for its candidate ordering. The input is consumed; pairs beyond the
/// `k`-th are dropped.
///
/// Determinism here is a load-bearing contract, not a convenience: the
/// aggregation tier (`mhp-agg`) merges shard and fleet profiles in whatever
/// order the network delivers them and asserts the final top-k is
/// **byte-identical** to offline merging of the same inputs. That only holds
/// because (a) count summation is order-independent and (b) this ranking has
/// no order-sensitive tie-breaking. Duplicate keys must be summed *before*
/// ranking (as [`IntervalProfile::from_candidates`](crate::IntervalProfile)
/// does); this function ranks whatever pairs it is given.
///
/// # Examples
///
/// ```
/// use mhp_core::rank::top_k_by_count;
/// let ranked = top_k_by_count(vec![(7u64, 10), (1, 30), (5, 10)], 2);
/// assert_eq!(ranked, vec![(1, 30), (5, 10)]); // 5 beats 7 on the tie
/// ```
pub fn top_k_by_count<K: Ord>(pairs: Vec<(K, u64)>, k: usize) -> Vec<(K, u64)> {
    let mut pairs = pairs;
    pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_hottest_first() {
        let ranked = top_k_by_count(vec![(1u64, 5), (2, 50), (3, 20)], 3);
        assert_eq!(ranked, vec![(2, 50), (3, 20), (1, 5)]);
    }

    #[test]
    fn truncates_to_k() {
        let ranked = top_k_by_count(vec![(1u64, 5), (2, 50), (3, 20)], 1);
        assert_eq!(ranked, vec![(2, 50)]);
    }

    #[test]
    fn k_larger_than_input_returns_everything() {
        let ranked = top_k_by_count(vec![(1u64, 5)], 10);
        assert_eq!(ranked, vec![(1, 5)]);
    }

    #[test]
    fn zero_k_returns_empty() {
        assert!(top_k_by_count(vec![(1u64, 5)], 0).is_empty());
    }

    #[test]
    fn ties_break_by_ascending_key() {
        let ranked = top_k_by_count(vec![(9u64, 7), (2, 7), (5, 7)], 2);
        assert_eq!(ranked, vec![(2, 7), (5, 7)]);
    }

    #[test]
    fn result_is_independent_of_input_order() {
        let a = top_k_by_count(vec![(1u64, 1), (2, 2), (3, 3)], 2);
        let b = top_k_by_count(vec![(3u64, 3), (1, 1), (2, 2)], 2);
        assert_eq!(a, b);
    }

    /// Regression test for tie-breaking at the `k` boundary: with more tied
    /// entries than slots, the *keys* that survive must not depend on input
    /// order (an unstable sort without a key tie-break would let them).
    #[test]
    fn boundary_ties_select_the_same_keys_for_every_input_order() {
        let pairs = [(10u64, 7u64), (20, 7), (30, 7), (40, 7), (5, 9)];
        // All 120 permutations of a 5-element input.
        let mut perm = [0usize, 1, 2, 3, 4];
        let mut expected: Option<Vec<(u64, u64)>> = None;
        loop {
            let input: Vec<(u64, u64)> = perm.iter().map(|&i| pairs[i]).collect();
            let ranked = top_k_by_count(input, 3);
            match &expected {
                None => expected = Some(ranked),
                Some(e) => assert_eq!(&ranked, e),
            }
            // Next lexicographic permutation, or stop.
            let Some(i) = (0..4).rev().find(|&i| perm[i] < perm[i + 1]) else {
                break;
            };
            let j = (i + 1..5).rev().find(|&j| perm[j] > perm[i]).unwrap();
            perm.swap(i, j);
            perm[i + 1..].reverse();
        }
        assert_eq!(expected.unwrap(), vec![(5, 9), (10, 7), (20, 7)]);
    }

    /// The merge-tree contract: summing shards in any order and then ranking
    /// yields byte-identical top-k (count addition commutes; ranking is
    /// order-free). Mirrors how `mhp-agg` folds pulled profiles.
    #[test]
    fn merged_top_k_is_identical_regardless_of_merge_order() {
        use std::collections::HashMap;
        let shards: [&[(u64, u64)]; 3] = [
            &[(1, 50), (2, 25), (3, 25)],
            &[(2, 25), (4, 50), (1, 0)],
            &[(3, 25), (4, 0), (5, 50)],
        ];
        let fold = |order: &[usize]| -> Vec<(u64, u64)> {
            let mut totals: HashMap<u64, u64> = HashMap::new();
            for &s in order {
                for &(key, count) in shards[s] {
                    *totals.entry(key).or_insert(0) += count;
                }
            }
            top_k_by_count(totals.into_iter().collect(), 4)
        };
        let reference = fold(&[0, 1, 2]);
        for order in [[0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]] {
            assert_eq!(fold(&order), reference);
        }
        // Ties at 50 and at 25 resolve by ascending key.
        assert_eq!(reference, vec![(1, 50), (2, 50), (3, 50), (4, 50)]);
    }
}
