//! Hottest-first ranking shared by every consumer of profile counts.
//!
//! Several layers need the same selection: "the `k` entries with the largest
//! counts, hottest first, ties broken deterministically by key". The
//! accumulator's [`top_k`](crate::AccumulatorTable::top_k) accessor, the
//! perfect profiler's mid-interval snapshot, and the application clients in
//! `mhp-apps` (frequent-value dictionaries, delinquent-load sets) all rank
//! `(key, count)` pairs this way; this module is the single implementation.

/// Selects the `k` pairs with the largest counts, hottest first.
///
/// Ties are broken by ascending key so the result is deterministic for any
/// input order — the same rule [`IntervalProfile`](crate::IntervalProfile)
/// uses for its candidate ordering. The input is consumed; pairs beyond the
/// `k`-th are dropped.
///
/// # Examples
///
/// ```
/// use mhp_core::rank::top_k_by_count;
/// let ranked = top_k_by_count(vec![(7u64, 10), (1, 30), (5, 10)], 2);
/// assert_eq!(ranked, vec![(1, 30), (5, 10)]); // 5 beats 7 on the tie
/// ```
pub fn top_k_by_count<K: Ord>(pairs: Vec<(K, u64)>, k: usize) -> Vec<(K, u64)> {
    let mut pairs = pairs;
    pairs.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_hottest_first() {
        let ranked = top_k_by_count(vec![(1u64, 5), (2, 50), (3, 20)], 3);
        assert_eq!(ranked, vec![(2, 50), (3, 20), (1, 5)]);
    }

    #[test]
    fn truncates_to_k() {
        let ranked = top_k_by_count(vec![(1u64, 5), (2, 50), (3, 20)], 1);
        assert_eq!(ranked, vec![(2, 50)]);
    }

    #[test]
    fn k_larger_than_input_returns_everything() {
        let ranked = top_k_by_count(vec![(1u64, 5)], 10);
        assert_eq!(ranked, vec![(1, 5)]);
    }

    #[test]
    fn zero_k_returns_empty() {
        assert!(top_k_by_count(vec![(1u64, 5)], 0).is_empty());
    }

    #[test]
    fn ties_break_by_ascending_key() {
        let ranked = top_k_by_count(vec![(9u64, 7), (2, 7), (5, 7)], 2);
        assert_eq!(ranked, vec![(2, 7), (5, 7)]);
    }

    #[test]
    fn result_is_independent_of_input_order() {
        let a = top_k_by_count(vec![(1u64, 1), (2, 2), (3, 3)], 2);
        let b = top_k_by_count(vec![(3u64, 3), (1, 1), (2, 2)], 2);
        assert_eq!(a, b);
    }
}
