//! Theoretical false-positive analysis of the multi-hash profiler (§6.2).
//!
//! For a candidate threshold of `t` percent, at most `100/t` distinct tuples
//! can exceed the threshold, so at most `100/t` counters in a `Z`-entry table
//! can legitimately sit above it. A non-candidate tuple becomes a false
//! positive only if it hashes onto such a counter — probability `100/(t·Z)`
//! for one table. With `n` independent tables of `Z/n` entries each, the
//! event must happen in *every* table:
//!
//! ```text
//! P(false positive) = (100·n / (t·Z))^n
//! ```
//!
//! This is a loose upper bound (it ignores retaining, shielding and
//! conservative update) but it exhibits the paper's key shape: for a fixed
//! counter budget the curve first falls steeply with `n`, then rises again
//! once the per-table size gets small enough that per-table aliasing
//! dominates (Figure 9: the 1,000-entry curve degrades beyond 4 tables).

/// Probability (in `[0, 1]`) that a non-candidate input tuple is classified
/// as a false positive by a multi-hash profiler with `total_entries` counters
/// split over `num_tables` tables, at a candidate threshold of
/// `threshold_percent` (e.g. `1.0` for 1 %).
///
/// Returns `1.0` when the bound exceeds certainty (tiny tables).
///
/// # Panics
///
/// Panics if `total_entries` or `num_tables` is zero, or if
/// `threshold_percent` is not positive.
///
/// # Examples
///
/// ```
/// use mhp_core::theory::false_positive_probability;
/// let one = false_positive_probability(2000, 1, 1.0);
/// let four = false_positive_probability(2000, 4, 1.0);
/// assert!(four < one, "splitting the budget into 4 tables helps at 2K entries");
/// ```
pub fn false_positive_probability(
    total_entries: usize,
    num_tables: usize,
    threshold_percent: f64,
) -> f64 {
    assert!(total_entries > 0, "total_entries must be positive");
    assert!(num_tables > 0, "num_tables must be positive");
    assert!(
        threshold_percent > 0.0,
        "threshold_percent must be positive"
    );
    let z = total_entries as f64;
    let n = num_tables as f64;
    let per_table = 100.0 * n / (threshold_percent * z);
    per_table.powf(n).min(1.0)
}

/// One point of a Figure 9 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TheoryPoint {
    /// Number of hash tables.
    pub num_tables: usize,
    /// Upper bound on the false-positive probability, in percent.
    pub probability_percent: f64,
}

/// Generates one curve of Figure 9: the false-positive bound for
/// `total_entries` counters as the number of tables sweeps `1..=max_tables`,
/// at the given threshold.
///
/// # Examples
///
/// ```
/// use mhp_core::theory::figure9_curve;
/// let curve = figure9_curve(2000, 16, 1.0);
/// assert_eq!(curve.len(), 16);
/// assert_eq!(curve[0].num_tables, 1);
/// ```
pub fn figure9_curve(
    total_entries: usize,
    max_tables: usize,
    threshold_percent: f64,
) -> Vec<TheoryPoint> {
    (1..=max_tables)
        .map(|n| TheoryPoint {
            num_tables: n,
            probability_percent: false_positive_probability(total_entries, n, threshold_percent)
                * 100.0,
        })
        .collect()
}

/// The number of tables minimizing the theoretical bound for a given budget
/// and threshold, searching `1..=max_tables`.
///
/// # Examples
///
/// ```
/// use mhp_core::theory::optimal_tables;
/// // With a large budget the optimum moves past a single table.
/// assert!(optimal_tables(8000, 16, 1.0) > 1);
/// ```
pub fn optimal_tables(total_entries: usize, max_tables: usize, threshold_percent: f64) -> usize {
    (1..=max_tables)
        .min_by(|&a, &b| {
            false_positive_probability(total_entries, a, threshold_percent).total_cmp(
                &false_positive_probability(total_entries, b, threshold_percent),
            )
        })
        .expect("max_tables >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_table_matches_closed_form() {
        // 100/(t*Z) with t=1, Z=2000 -> 0.05
        let p = false_positive_probability(2000, 1, 1.0);
        assert!((p - 0.05).abs() < 1e-12);
    }

    #[test]
    fn probability_is_clamped_to_one() {
        // 10 entries, 1 table, 1%: 100/(1*10) = 10 -> clamped.
        assert_eq!(false_positive_probability(10, 1, 1.0), 1.0);
    }

    #[test]
    fn four_tables_beat_one_at_2k_entries() {
        let p1 = false_positive_probability(2000, 1, 1.0);
        let p4 = false_positive_probability(2000, 4, 1.0);
        assert!(p4 < p1 / 10.0, "p4={p4} should be far below p1={p1}");
    }

    #[test]
    fn thousand_entry_curve_degrades_past_four_tables() {
        // The paper: "for 1,000 entries ... performance degrades beyond 4
        // hash tables."
        let p4 = false_positive_probability(1000, 4, 1.0);
        let p8 = false_positive_probability(1000, 8, 1.0);
        assert!(p8 > p4, "p8={p8} should exceed p4={p4}");
    }

    #[test]
    fn bigger_budgets_allow_more_tables() {
        let opt_small = optimal_tables(500, 16, 1.0);
        let opt_large = optimal_tables(8000, 16, 1.0);
        assert!(
            opt_large >= opt_small,
            "optimum should move right with budget: {opt_small} -> {opt_large}"
        );
    }

    #[test]
    fn curve_has_requested_shape() {
        let curve = figure9_curve(500, 16, 1.0);
        assert_eq!(curve.len(), 16);
        for (i, point) in curve.iter().enumerate() {
            assert_eq!(point.num_tables, i + 1);
            assert!(point.probability_percent >= 0.0);
            assert!(point.probability_percent <= 100.0);
        }
    }

    #[test]
    fn lower_threshold_raises_false_positive_bound() {
        let p_1pct = false_positive_probability(2000, 4, 1.0);
        let p_01pct = false_positive_probability(2000, 4, 0.1);
        assert!(p_01pct > p_1pct);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_entries_panics() {
        false_positive_probability(0, 1, 1.0);
    }
}
