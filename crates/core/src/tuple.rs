//! Profiling events and the tuples that name them.
//!
//! The paper (§3) represents every profiling event as a **tuple**: a pair of
//! values that together uniquely identify the event. For load-value profiling
//! the tuple is `<load PC, value>`; for edge profiling it is
//! `<branch PC, branch target PC>`. The profiler itself is agnostic to the
//! interpretation — it only ever hashes and compares tuples — so a single
//! [`Tuple`] type serves every profile kind.

use std::fmt;

/// A program counter (instruction address).
///
/// Newtype over `u64` so that PCs cannot be confused with data values at API
/// boundaries (trace generators produce both).
///
/// # Examples
///
/// ```
/// use mhp_core::Pc;
/// let pc = Pc::new(0x400_1000);
/// assert_eq!(pc.as_u64(), 0x400_1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u64);

impl Pc {
    /// Creates a program counter from a raw address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Pc(addr)
    }

    /// Returns the raw address.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for Pc {
    #[inline]
    fn from(addr: u64) -> Self {
        Pc(addr)
    }
}

impl From<Pc> for u64 {
    #[inline]
    fn from(pc: Pc) -> Self {
        pc.0
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// The second member of a profiling tuple.
///
/// For value profiling this is the loaded data value; for edge profiling it is
/// the branch-target PC. Like [`Pc`] it is a transparent wrapper over `u64`.
///
/// # Examples
///
/// ```
/// use mhp_core::Value;
/// let v = Value::new(42);
/// assert_eq!(v.as_u64(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Value(u64);

impl Value {
    /// Creates a value from raw bits.
    #[inline]
    pub const fn new(bits: u64) -> Self {
        Value(bits)
    }

    /// Returns the raw bits.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl From<u64> for Value {
    #[inline]
    fn from(bits: u64) -> Self {
        Value(bits)
    }
}

impl From<Value> for u64 {
    #[inline]
    fn from(v: Value) -> Self {
        v.0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A profiling event identifier: a `<pc, value>` pair (§3 of the paper).
///
/// `Tuple` is the unit the profilers count. Two events are "the same event"
/// exactly when their tuples are equal.
///
/// # Examples
///
/// A load-value event and an edge event:
///
/// ```
/// use mhp_core::Tuple;
/// let value_event = Tuple::new(0x400_1000, 42);          // <load PC, value>
/// let edge_event = Tuple::new(0x400_2000, 0x400_2040);   // <branch PC, target PC>
/// assert_ne!(value_event, edge_event);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple {
    /// The identifying PC of the event.
    pc: Pc,
    /// The event's value component.
    value: Value,
}

impl Tuple {
    /// Creates a tuple from raw `pc` and `value` bits.
    #[inline]
    pub fn new(pc: impl Into<Pc>, value: impl Into<Value>) -> Self {
        Tuple {
            pc: pc.into(),
            value: value.into(),
        }
    }

    /// Returns the tuple's PC component.
    #[inline]
    pub const fn pc(self) -> Pc {
        self.pc
    }

    /// Returns the tuple's value component.
    #[inline]
    pub const fn value(self) -> Value {
        self.value
    }
}

impl Tuple {
    /// Names an event made of **more than two** variables (§3: *"If our
    /// profiling architecture is to be used in a generalized profiling
    /// engine, it can easily be extended to create unique names for events
    /// with multiple variables"*).
    ///
    /// The first part is kept verbatim as the PC (so per-instruction
    /// aggregation still works); the remaining parts are mixed into a
    /// single value word with a rotate-xor-multiply combiner. Distinct
    /// part-sequences collide only with hash probability (~2⁻⁶⁴), and the
    /// composition is order-sensitive.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    ///
    /// # Examples
    ///
    /// ```
    /// use mhp_core::Tuple;
    /// // A three-variable event: <load PC, address, value>.
    /// let t = Tuple::from_parts(&[0x400100, 0x8000_0000, 42]);
    /// assert_eq!(t.pc().as_u64(), 0x400100);
    /// assert_ne!(t, Tuple::from_parts(&[0x400100, 42, 0x8000_0000]));
    /// ```
    pub fn from_parts(parts: &[u64]) -> Self {
        assert!(!parts.is_empty(), "an event needs at least one variable");
        let pc = parts[0];
        let mut acc = 0xCBF2_9CE4_8422_2325u64; // FNV-ish offset basis
        for &p in &parts[1..] {
            acc ^= p;
            acc = acc.rotate_left(27).wrapping_mul(0x1000_0000_01B3 | 1);
        }
        let value = if parts.len() == 1 { 0 } else { acc };
        Tuple::new(pc, value)
    }
}

impl From<(u64, u64)> for Tuple {
    #[inline]
    fn from((pc, value): (u64, u64)) -> Self {
        Tuple::new(pc, value)
    }
}

impl From<Tuple> for (u64, u64) {
    #[inline]
    fn from(t: Tuple) -> Self {
        (t.pc.as_u64(), t.value.as_u64())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.pc, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pc_round_trips_through_u64() {
        let pc = Pc::new(0xdead_beef);
        assert_eq!(u64::from(pc), 0xdead_beef);
        assert_eq!(Pc::from(0xdead_beef_u64), pc);
    }

    #[test]
    fn value_round_trips_through_u64() {
        let v = Value::new(17);
        assert_eq!(u64::from(v), 17);
        assert_eq!(Value::from(17_u64), v);
    }

    #[test]
    fn tuple_accessors_return_components() {
        let t = Tuple::new(1, 2);
        assert_eq!(t.pc(), Pc::new(1));
        assert_eq!(t.value(), Value::new(2));
    }

    #[test]
    fn tuple_equality_requires_both_components() {
        let a = Tuple::new(1, 2);
        assert_ne!(a, Tuple::new(1, 3));
        assert_ne!(a, Tuple::new(2, 2));
        assert_eq!(a, Tuple::new(1, 2));
    }

    #[test]
    fn tuple_converts_from_pair() {
        let t: Tuple = (5u64, 6u64).into();
        assert_eq!(t, Tuple::new(5, 6));
        let pair: (u64, u64) = t.into();
        assert_eq!(pair, (5, 6));
    }

    #[test]
    fn tuple_is_hashable_and_distinct_in_sets() {
        let mut set = HashSet::new();
        set.insert(Tuple::new(1, 1));
        set.insert(Tuple::new(1, 1));
        set.insert(Tuple::new(1, 2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats_are_nonempty_and_stable() {
        assert_eq!(Pc::new(0x10).to_string(), "0x10");
        assert_eq!(Value::new(10).to_string(), "10");
        assert_eq!(Tuple::new(0x10, 7).to_string(), "<0x10, 7>");
    }

    #[test]
    fn default_tuple_is_zero() {
        let t = Tuple::default();
        assert_eq!(t, Tuple::new(0, 0));
    }

    #[test]
    fn from_parts_keeps_the_pc_and_mixes_the_rest() {
        let t = Tuple::from_parts(&[0x100, 7, 8]);
        assert_eq!(t.pc(), Pc::new(0x100));
        assert_ne!(t.value().as_u64(), 0);
    }

    #[test]
    fn from_parts_is_order_sensitive() {
        assert_ne!(Tuple::from_parts(&[1, 2, 3]), Tuple::from_parts(&[1, 3, 2]));
    }

    #[test]
    fn from_parts_with_two_parts_is_collision_free_in_practice() {
        let mut seen = HashSet::new();
        for a in 0..64u64 {
            for b in 0..64u64 {
                assert!(
                    seen.insert(Tuple::from_parts(&[a, b])),
                    "collision at ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn from_parts_single_variable_has_zero_value() {
        assert_eq!(Tuple::from_parts(&[9]), Tuple::new(9, 0));
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn from_parts_rejects_empty() {
        Tuple::from_parts(&[]);
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pc>();
        assert_send_sync::<Value>();
        assert_send_sync::<Tuple>();
    }
}
