//! The perfect (exact) interval profiler — ground truth for error metrics.
//!
//! §5.5.1: *"For each interval, we compare the candidates captured by our
//! profiler to the candidates seen by a perfect profiler."* The perfect
//! profiler keeps an exact count for every distinct tuple of the interval
//! (unbounded storage — it is a measurement instrument, not hardware).
//!
//! Error analysis needs more than the candidate list: classifying a hardware
//! *false positive* requires the true (below-threshold) frequency of that
//! tuple. [`PerfectProfiler::observe_exact`] therefore returns the complete
//! per-interval count map ([`ExactCounts`]), from which the candidate-only
//! [`IntervalProfile`] can be derived.

use std::collections::HashMap;

use crate::interval::IntervalConfig;
use crate::profile::{Candidate, IntervalProfile};
use crate::profiler::EventProfiler;
use crate::state::{self, SnapshotError, SnapshotReader, SnapshotWriter, KIND_PERFECT};
use crate::tuple::Tuple;

/// The exact per-tuple counts of one completed interval.
///
/// # Examples
///
/// ```
/// use mhp_core::{IntervalConfig, PerfectProfiler, Tuple};
/// let mut perfect = PerfectProfiler::new(IntervalConfig::new(4, 0.5).unwrap());
/// perfect.observe_exact(Tuple::new(1, 1));
/// perfect.observe_exact(Tuple::new(1, 1));
/// perfect.observe_exact(Tuple::new(2, 2));
/// let exact = perfect.observe_exact(Tuple::new(1, 1)).expect("interval done");
/// assert_eq!(exact.count_of(Tuple::new(1, 1)), 3);
/// assert_eq!(exact.distinct_tuples(), 2);
/// // Threshold is 2 occurrences: only <1,1> is a candidate.
/// assert_eq!(exact.profile().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ExactCounts {
    interval_index: u64,
    config: IntervalConfig,
    counts: HashMap<Tuple, u64>,
}

impl ExactCounts {
    /// Zero-based index of the interval.
    #[inline]
    pub fn interval_index(&self) -> u64 {
        self.interval_index
    }

    /// The interval configuration.
    #[inline]
    pub fn config(&self) -> IntervalConfig {
        self.config
    }

    /// The exact occurrence count of `tuple` in this interval (0 if it never
    /// occurred).
    #[inline]
    pub fn count_of(&self, tuple: Tuple) -> u64 {
        self.counts.get(&tuple).copied().unwrap_or(0)
    }

    /// Number of distinct tuples seen in the interval (Figure 4's metric).
    #[inline]
    pub fn distinct_tuples(&self) -> usize {
        self.counts.len()
    }

    /// The full count map.
    #[inline]
    pub fn counts(&self) -> &HashMap<Tuple, u64> {
        &self.counts
    }

    /// True candidates: tuples whose count reached the threshold (Figure 5's
    /// metric), as an [`IntervalProfile`].
    pub fn profile(&self) -> IntervalProfile {
        let threshold = self.config.threshold_count();
        let candidates: Vec<Candidate> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= threshold)
            .map(|(&t, &c)| Candidate::new(t, c))
            .collect();
        IntervalProfile::from_candidates(self.interval_index, self.config, candidates)
    }
}

/// An exact interval profiler with unbounded storage.
///
/// Implements [`EventProfiler`] (emitting candidate-only profiles); use
/// [`observe_exact`](Self::observe_exact) when the full count map is needed.
#[derive(Debug, Clone)]
pub struct PerfectProfiler {
    interval: IntervalConfig,
    counts: HashMap<Tuple, u64>,
    events: u64,
    interval_idx: u64,
}

impl PerfectProfiler {
    /// Creates a perfect profiler for the given interval configuration.
    pub fn new(interval: IntervalConfig) -> Self {
        PerfectProfiler {
            interval,
            counts: HashMap::new(),
            events: 0,
            interval_idx: 0,
        }
    }

    /// Feeds one event; returns the exact counts when an interval completes.
    pub fn observe_exact(&mut self, tuple: Tuple) -> Option<ExactCounts> {
        *self.counts.entry(tuple).or_insert(0) += 1;
        self.events += 1;
        if self.interval.is_boundary(self.events) {
            Some(self.end_interval_exact())
        } else {
            None
        }
    }

    /// Ends the current interval immediately, returning the exact counts
    /// gathered so far (the [`ExactCounts`] twin of
    /// [`EventProfiler::finish_interval`]).
    pub fn end_interval_exact(&mut self) -> ExactCounts {
        let exact = ExactCounts {
            interval_index: self.interval_idx,
            config: self.interval,
            counts: std::mem::take(&mut self.counts),
        };
        self.events = 0;
        self.interval_idx += 1;
        exact
    }
}

impl EventProfiler for PerfectProfiler {
    fn interval_config(&self) -> IntervalConfig {
        self.interval
    }

    fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
        self.observe_exact(tuple).map(|exact| exact.profile())
    }

    fn observe_batch(&mut self, batch: &[Tuple]) -> Vec<IntervalProfile> {
        // Inlined count/boundary loop: skips the per-event `ExactCounts`
        // option plumbing of `observe` (profiles are only materialized at
        // actual boundaries, which externally-cut shard profilers never hit).
        let mut out = Vec::new();
        for &tuple in batch {
            *self.counts.entry(tuple).or_insert(0) += 1;
            self.events += 1;
            if self.interval.is_boundary(self.events) {
                out.push(self.end_interval_exact().profile());
            }
        }
        out
    }

    fn finish_interval(&mut self) -> IntervalProfile {
        self.end_interval_exact().profile()
    }

    fn hot_tuples(&self, k: usize) -> Vec<Candidate> {
        let pairs: Vec<(Tuple, u64)> = self.counts.iter().map(|(&t, &c)| (t, c)).collect();
        crate::rank::top_k_by_count(pairs, k)
            .into_iter()
            .map(|(tuple, count)| Candidate::new(tuple, count))
            .collect()
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.events = 0;
        self.interval_idx = 0;
    }

    fn events_in_current_interval(&self) -> u64 {
        self.events
    }

    fn interval_index(&self) -> u64 {
        self.interval_idx
    }

    fn save_state(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new(KIND_PERFECT);
        state::put_interval(&mut w, &self.interval);
        w.put_u64(self.events);
        w.put_u64(self.interval_idx);
        // Sorted by tuple so equal state always snapshots to equal bytes.
        let mut counts: Vec<(Tuple, u64)> = self.counts.iter().map(|(&t, &c)| (t, c)).collect();
        counts.sort_by_key(|&(t, _)| t);
        w.put_u64(counts.len() as u64);
        for (tuple, count) in counts {
            let (pc, value) = tuple.into();
            w.put_u64(pc);
            w.put_u64(value);
            w.put_u64(count);
        }
        Ok(w.finish())
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::open(snapshot, KIND_PERFECT)?;
        state::check_interval(&mut r, &self.interval)?;
        let events = r.take_u64("event count")?;
        let interval_idx = r.take_u64("interval index")?;
        let count = r.take_count(24, "count entries")?;
        let mut counts = HashMap::with_capacity(count);
        let mut last: Option<Tuple> = None;
        for _ in 0..count {
            let pc = r.take_u64("entry pc")?;
            let value = r.take_u64("entry value")?;
            let n = r.take_u64("entry count")?;
            let tuple = Tuple::new(pc, value);
            // Written sorted; anything out of order (or equal) is corruption.
            if last.is_some_and(|prev| prev >= tuple) {
                return Err(SnapshotError::Corrupt {
                    context: "count entries out of order",
                });
            }
            last = Some(tuple);
            counts.insert(tuple, n);
        }
        r.expect_end()?;
        // All fields validated: commit (errors above leave state untouched).
        self.events = events;
        self.interval_idx = interval_idx;
        self.counts = counts;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(len: u64, frac: f64) -> IntervalConfig {
        IntervalConfig::new(len, frac).unwrap()
    }

    #[test]
    fn counts_are_exact() {
        let mut p = PerfectProfiler::new(config(10, 0.3));
        let mut exact = None;
        for i in 0..10u64 {
            let t = Tuple::new(i % 3, 0);
            if let Some(e) = p.observe_exact(t) {
                exact = Some(e);
            }
        }
        let exact = exact.unwrap();
        assert_eq!(exact.count_of(Tuple::new(0, 0)), 4); // i = 0,3,6,9
        assert_eq!(exact.count_of(Tuple::new(1, 0)), 3);
        assert_eq!(exact.count_of(Tuple::new(2, 0)), 3);
        assert_eq!(exact.count_of(Tuple::new(9, 9)), 0);
        assert_eq!(exact.distinct_tuples(), 3);
    }

    #[test]
    fn candidates_respect_threshold() {
        let mut p = PerfectProfiler::new(config(10, 0.4)); // threshold = 4
        let mut exact = None;
        for i in 0..10u64 {
            let t = Tuple::new(i % 3, 0);
            if let Some(e) = p.observe_exact(t) {
                exact = Some(e);
            }
        }
        let profile = exact.unwrap().profile();
        assert_eq!(profile.len(), 1);
        assert_eq!(profile.count_of(Tuple::new(0, 0)), Some(4));
    }

    #[test]
    fn intervals_are_disjoint() {
        let mut p = PerfectProfiler::new(config(5, 0.2));
        let mut exacts = Vec::new();
        for i in 0..10u64 {
            let t = Tuple::new(i / 5, 0); // tuple 0 in first interval, 1 in second
            if let Some(e) = p.observe_exact(t) {
                exacts.push(e);
            }
        }
        assert_eq!(exacts.len(), 2);
        assert_eq!(exacts[0].count_of(Tuple::new(0, 0)), 5);
        assert_eq!(exacts[0].count_of(Tuple::new(1, 0)), 0);
        assert_eq!(exacts[1].count_of(Tuple::new(1, 0)), 5);
        assert_eq!(exacts[1].interval_index(), 1);
    }

    #[test]
    fn event_profiler_impl_emits_candidate_profiles() {
        let mut p = PerfectProfiler::new(config(4, 0.5));
        assert!(p.observe(Tuple::new(1, 1)).is_none());
        assert!(p.observe(Tuple::new(1, 1)).is_none());
        assert!(p.observe(Tuple::new(2, 2)).is_none());
        let profile = p.observe(Tuple::new(3, 3)).unwrap();
        assert_eq!(profile.len(), 1); // only <1,1> reached 2 occurrences
    }

    #[test]
    fn observe_batch_matches_per_event() {
        let stream: Vec<Tuple> = (0..1_000u64).map(|i| Tuple::new(i % 23, i % 7)).collect();
        let mut a = PerfectProfiler::new(config(300, 0.05));
        let mut b = a.clone();
        let expected: Vec<IntervalProfile> = stream.iter().filter_map(|&t| a.observe(t)).collect();
        let mut got = Vec::new();
        for chunk in stream.chunks(101) {
            got.extend(b.observe_batch(chunk));
        }
        assert_eq!(got, expected);
        assert_eq!(a.counts, b.counts);
        assert_eq!(
            a.events_in_current_interval(),
            b.events_in_current_interval()
        );
        assert_eq!(a.interval_index(), b.interval_index());
    }

    #[test]
    fn reset_clears_state() {
        let mut p = PerfectProfiler::new(config(10, 0.5));
        p.observe(Tuple::new(1, 1));
        p.reset();
        assert_eq!(p.events_in_current_interval(), 0);
        assert_eq!(p.interval_index(), 0);
    }
}
