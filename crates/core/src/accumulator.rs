//! The fully associative accumulator table (§5.2, §5.4).
//!
//! The accumulator is the small tagged table that holds the tuples the hash
//! filter has promoted. Once a tuple is resident it is **shielded**: every
//! subsequent occurrence is counted here (accurately) and never touches the
//! hash tables again, which reduces hash-table pressure.
//!
//! End-of-interval behaviour implements the paper's **retaining**
//! optimization (§5.4.1): entries that finished the interval at or above the
//! candidate threshold may be *retained* into the next interval — counter
//! cleared, marked *replaceable* — so that recurring candidates keep their
//! shield. A retained entry un-marks itself as replaceable as soon as it
//! re-crosses the threshold. Allocation prefers empty slots, then evicts the
//! coldest replaceable entry; if neither exists the promotion is dropped.

use std::collections::HashMap;

use crate::error::ConfigError;
use crate::profile::Candidate;
use crate::tuple::Tuple;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryState {
    count: u64,
    replaceable: bool,
}

/// How an [`AccumulatorTable::insert_tracked`] promotion was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The tuple took an empty slot.
    InsertedEmpty,
    /// The tuple evicted the coldest replaceable resident entry.
    InsertedEvicting,
    /// The table was full of non-replaceable entries; the promotion was
    /// dropped.
    Dropped,
}

impl InsertOutcome {
    /// Whether the tuple is now resident.
    #[inline]
    pub fn inserted(self) -> bool {
        !matches!(self, InsertOutcome::Dropped)
    }
}

/// A read-only view of one accumulator entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccumulatorEntry {
    /// The resident tuple.
    pub tuple: Tuple,
    /// Occurrences counted for this tuple since it entered (or, for a
    /// retained entry, since the interval began).
    pub count: u64,
    /// Whether the entry may be evicted to make room for a new promotion.
    pub replaceable: bool,
}

/// The fully associative accumulator table.
///
/// # Examples
///
/// ```
/// use mhp_core::{AccumulatorTable, Tuple};
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// let mut acc = AccumulatorTable::new(2)?;
/// let hot = Tuple::new(0x400100, 7);
/// assert!(!acc.observe(hot, 100));     // not resident yet
/// assert!(acc.insert(hot, 100));       // promoted with the threshold count
/// assert!(acc.observe(hot, 100));      // now shielded
/// assert_eq!(acc.count_of(hot), Some(101));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AccumulatorTable {
    capacity: usize,
    entries: HashMap<Tuple, EntryState>,
}

impl AccumulatorTable {
    /// Creates an accumulator with room for `capacity` tuples.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroAccumulatorCapacity`] if `capacity == 0`.
    pub fn new(capacity: usize) -> Result<Self, ConfigError> {
        if capacity == 0 {
            return Err(ConfigError::ZeroAccumulatorCapacity);
        }
        Ok(AccumulatorTable {
            capacity,
            entries: HashMap::with_capacity(capacity),
        })
    }

    /// Maximum number of resident tuples.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no tuple is resident.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `tuple` is resident (and therefore shielded).
    #[inline]
    pub fn contains(&self, tuple: Tuple) -> bool {
        self.entries.contains_key(&tuple)
    }

    /// The accumulated count for `tuple`, if resident.
    #[inline]
    pub fn count_of(&self, tuple: Tuple) -> Option<u64> {
        self.entries.get(&tuple).map(|e| e.count)
    }

    /// Presents one occurrence of `tuple` to the accumulator.
    ///
    /// If the tuple is resident its counter is incremented and `true` is
    /// returned — the event is *shielded* and must not be fed to the hash
    /// tables. A retained (replaceable) entry whose count re-crosses
    /// `threshold_count` becomes non-replaceable for the rest of the interval
    /// (§5.4.1). Returns `false` if the tuple is not resident.
    #[inline]
    pub fn observe(&mut self, tuple: Tuple, threshold_count: u64) -> bool {
        match self.entries.get_mut(&tuple) {
            Some(entry) => {
                entry.count += 1;
                if entry.replaceable && entry.count >= threshold_count {
                    entry.replaceable = false;
                }
                true
            }
            None => false,
        }
    }

    /// Promotes `tuple` into the accumulator with an initial count of
    /// `init_count` (the threshold count at which its hash counters
    /// crossed), marked non-replaceable for the rest of the interval.
    ///
    /// Allocation policy (§5.4.1): an empty slot if one exists, otherwise the
    /// coldest replaceable entry is evicted (ties broken by tuple order, for
    /// determinism). Returns `false` — and drops the promotion — if the table
    /// is full of non-replaceable entries.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `tuple` is already resident (callers must
    /// check [`observe`](Self::observe) first; a resident tuple is shielded).
    pub fn insert(&mut self, tuple: Tuple, init_count: u64) -> bool {
        self.insert_tracked(tuple, init_count).inserted()
    }

    /// Like [`insert`](Self::insert), but reports *how* the slot was found
    /// — empty, by eviction, or not at all — so introspection can count
    /// evictions and dropped promotions separately.
    pub fn insert_tracked(&mut self, tuple: Tuple, init_count: u64) -> InsertOutcome {
        debug_assert!(
            !self.entries.contains_key(&tuple),
            "insert of resident tuple {tuple}; shielding should have caught it"
        );
        if self.entries.len() < self.capacity {
            self.entries.insert(
                tuple,
                EntryState {
                    count: init_count,
                    replaceable: false,
                },
            );
            return InsertOutcome::InsertedEmpty;
        }
        // Evict the coldest replaceable entry; deterministic tie-break.
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.replaceable)
            .map(|(&t, e)| (e.count, t))
            .min();
        match victim {
            Some((_, victim_tuple)) => {
                self.entries.remove(&victim_tuple);
                self.entries.insert(
                    tuple,
                    EntryState {
                        count: init_count,
                        replaceable: false,
                    },
                );
                InsertOutcome::InsertedEvicting
            }
            None => InsertOutcome::Dropped,
        }
    }

    /// Ends the current interval: reports every entry whose count reached
    /// `threshold_count` as a candidate, then either retains those
    /// candidates (count reset to 0, marked replaceable) or flushes the whole
    /// table, according to `retaining`.
    pub fn finish_interval(&mut self, retaining: bool, threshold_count: u64) -> Vec<Candidate> {
        let candidates: Vec<Candidate> = self
            .entries
            .iter()
            .filter(|(_, e)| e.count >= threshold_count)
            .map(|(&tuple, e)| Candidate::new(tuple, e.count))
            .collect();
        if retaining {
            self.entries.retain(|_, e| e.count >= threshold_count);
            for e in self.entries.values_mut() {
                e.count = 0;
                e.replaceable = true;
            }
        } else {
            self.entries.clear();
        }
        candidates
    }

    /// Clears all entries unconditionally.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The `k` hottest resident entries, highest count first.
    ///
    /// Ties are broken by ascending tuple order, so the result is fully
    /// deterministic — the ordering rule shared with
    /// [`IntervalProfile`](crate::IntervalProfile) candidates (see
    /// [`rank::top_k_by_count`](crate::rank::top_k_by_count)). This is the
    /// mid-interval "what is hot right now" view a live query service
    /// serves; it does not disturb any profiling state.
    pub fn top_k(&self, k: usize) -> Vec<AccumulatorEntry> {
        let pairs: Vec<(Tuple, u64)> = self.entries.iter().map(|(&t, e)| (t, e.count)).collect();
        crate::rank::top_k_by_count(pairs, k)
            .into_iter()
            .map(|(tuple, count)| AccumulatorEntry {
                tuple,
                count,
                replaceable: self.entries[&tuple].replaceable,
            })
            .collect()
    }

    /// Iterates over resident entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = AccumulatorEntry> + '_ {
        self.entries.iter().map(|(&tuple, e)| AccumulatorEntry {
            tuple,
            count: e.count,
            replaceable: e.replaceable,
        })
    }

    /// Bytes of hardware storage this table represents. The paper's budget
    /// (§7) works out to ~10 bytes per entry (tuple tag plus counter): 1 KB
    /// for 100 entries, 10 KB for 1,000 entries.
    pub fn storage_bytes(&self) -> usize {
        self.capacity * 10
    }

    /// Rebuilds the table's exact residency state from a snapshot — counts
    /// *and* replaceable flags, bypassing the promotion-time invariants of
    /// [`insert_tracked`](Self::insert_tracked) (a retained entry is
    /// legitimately resident at count 0 and replaceable). Crate-internal:
    /// callers validate capacity and uniqueness first.
    pub(crate) fn restore_entries(
        &mut self,
        entries: impl IntoIterator<Item = (Tuple, u64, bool)>,
    ) {
        self.entries.clear();
        for (tuple, count, replaceable) in entries {
            self.entries
                .insert(tuple, EntryState { count, replaceable });
        }
        debug_assert!(self.entries.len() <= self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Tuple {
        Tuple::new(n, n)
    }

    #[test]
    fn rejects_zero_capacity() {
        assert!(matches!(
            AccumulatorTable::new(0),
            Err(ConfigError::ZeroAccumulatorCapacity)
        ));
    }

    #[test]
    fn observe_misses_until_insert() {
        let mut acc = AccumulatorTable::new(4).unwrap();
        assert!(!acc.observe(t(1), 10));
        acc.insert(t(1), 10);
        assert!(acc.observe(t(1), 10));
        assert_eq!(acc.count_of(t(1)), Some(11));
    }

    #[test]
    fn insert_fills_empty_slots_first() {
        let mut acc = AccumulatorTable::new(2).unwrap();
        assert!(acc.insert(t(1), 5));
        assert!(acc.insert(t(2), 5));
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn full_table_without_replaceables_drops_promotion() {
        let mut acc = AccumulatorTable::new(1).unwrap();
        assert!(acc.insert(t(1), 5));
        assert!(!acc.insert(t(2), 5), "no empty or replaceable slot");
        assert!(acc.contains(t(1)));
        assert!(!acc.contains(t(2)));
    }

    #[test]
    fn insert_tracked_distinguishes_every_outcome() {
        let mut acc = AccumulatorTable::new(1).unwrap();
        assert_eq!(acc.insert_tracked(t(1), 10), InsertOutcome::InsertedEmpty);
        assert_eq!(acc.insert_tracked(t(2), 10), InsertOutcome::Dropped);
        acc.finish_interval(true, 10); // t(1) retained, replaceable
        assert_eq!(
            acc.insert_tracked(t(3), 10),
            InsertOutcome::InsertedEvicting
        );
        assert!(acc.contains(t(3)));
        assert!(InsertOutcome::InsertedEmpty.inserted());
        assert!(InsertOutcome::InsertedEvicting.inserted());
        assert!(!InsertOutcome::Dropped.inserted());
    }

    #[test]
    fn eviction_prefers_coldest_replaceable() {
        let mut acc = AccumulatorTable::new(2).unwrap();
        acc.insert(t(1), 100);
        acc.insert(t(2), 100);
        // Interval ends; both retained as replaceable.
        acc.finish_interval(true, 100);
        // t(2) warms up a little.
        acc.observe(t(2), 100);
        // New promotion must evict t(1), the colder replaceable entry.
        assert!(acc.insert(t(3), 100));
        assert!(!acc.contains(t(1)));
        assert!(acc.contains(t(2)));
        assert!(acc.contains(t(3)));
    }

    #[test]
    fn retained_entry_unmarks_replaceable_at_threshold() {
        let mut acc = AccumulatorTable::new(1).unwrap();
        acc.insert(t(1), 3);
        acc.finish_interval(true, 3);
        assert!(
            acc.iter().next().unwrap().replaceable,
            "retained => replaceable"
        );
        // Two occurrences: still below the threshold of 3.
        acc.observe(t(1), 3);
        acc.observe(t(1), 3);
        assert!(
            acc.iter().next().unwrap().replaceable,
            "2 < 3: still replaceable"
        );
        // Third occurrence re-crosses the threshold inside the accumulator.
        acc.observe(t(1), 3);
        assert!(!acc.iter().next().unwrap().replaceable);
        // Now non-replaceable: a promotion cannot evict it.
        assert!(!acc.insert(t(2), 3));
        assert!(acc.contains(t(1)));
    }

    #[test]
    fn finish_interval_reports_only_entries_at_threshold() {
        let mut acc = AccumulatorTable::new(4).unwrap();
        acc.insert(t(1), 100); // at threshold
        acc.insert(t(2), 100);
        acc.finish_interval(true, 100); // both retained at count 0
        acc.observe(t(1), 100); // count 1 < 100
        let candidates = acc.finish_interval(true, 100);
        assert!(
            candidates.is_empty(),
            "retained-but-cold entries not reported"
        );
    }

    #[test]
    fn finish_interval_without_retaining_flushes_everything() {
        let mut acc = AccumulatorTable::new(4).unwrap();
        acc.insert(t(1), 100);
        let candidates = acc.finish_interval(false, 100);
        assert_eq!(candidates.len(), 1);
        assert!(acc.is_empty());
    }

    #[test]
    fn finish_interval_with_retaining_keeps_candidates_shielding() {
        let mut acc = AccumulatorTable::new(4).unwrap();
        acc.insert(t(1), 100);
        acc.insert(t(2), 50); // below threshold: promoted but decayed? (can't happen in
                              // practice — promotions init at threshold — but the table
                              // must still handle it)
        let candidates = acc.finish_interval(true, 100);
        assert_eq!(candidates.len(), 1);
        assert!(acc.contains(t(1)), "candidate retained");
        assert!(!acc.contains(t(2)), "non-candidate flushed");
        assert_eq!(acc.count_of(t(1)), Some(0), "retained counter cleared");
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut acc = AccumulatorTable::new(3).unwrap();
        for i in 0..10 {
            acc.insert(t(i), 1);
        }
        assert!(acc.len() <= 3);
    }

    #[test]
    fn eviction_tie_breaks_by_tuple_order() {
        let mut acc = AccumulatorTable::new(2).unwrap();
        acc.insert(t(9), 10);
        acc.insert(t(4), 10);
        acc.finish_interval(true, 10); // both replaceable, both count 0
        assert!(acc.insert(t(1), 10));
        // Equal counts: the smaller tuple t(4) is the deterministic victim.
        assert!(!acc.contains(t(4)));
        assert!(acc.contains(t(9)));
    }

    #[test]
    fn storage_matches_paper_budget() {
        // §7: 1 KB at 1% (100 entries), 10 KB at 0.1% (1,000 entries).
        assert_eq!(AccumulatorTable::new(100).unwrap().storage_bytes(), 1_000);
        assert_eq!(
            AccumulatorTable::new(1_000).unwrap().storage_bytes(),
            10_000
        );
    }

    #[test]
    fn top_k_ranks_hottest_first_with_deterministic_ties() {
        let mut acc = AccumulatorTable::new(8).unwrap();
        acc.insert(t(1), 30);
        acc.insert(t(2), 50);
        acc.insert(t(3), 30);
        acc.insert(t(4), 10);
        let top = acc.top_k(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].tuple, t(2));
        assert_eq!(top[0].count, 50);
        // 30-count tie broken by ascending tuple order.
        assert_eq!(top[1].tuple, t(1));
        assert_eq!(top[2].tuple, t(3));
    }

    #[test]
    fn top_k_clamps_to_len_and_preserves_flags() {
        let mut acc = AccumulatorTable::new(4).unwrap();
        acc.insert(t(1), 100);
        acc.finish_interval(true, 100); // retained => replaceable, count 0
        let top = acc.top_k(10);
        assert_eq!(top.len(), 1);
        assert!(top[0].replaceable);
        assert_eq!(top[0].count, 0);
        assert!(acc.top_k(0).is_empty());
    }

    #[test]
    fn top_k_does_not_disturb_state() {
        let mut acc = AccumulatorTable::new(4).unwrap();
        acc.insert(t(1), 10);
        acc.observe(t(1), 10);
        let before: Vec<_> = {
            let mut v: Vec<_> = acc.iter().collect();
            v.sort_by_key(|e| e.tuple);
            v
        };
        let _ = acc.top_k(4);
        let after: Vec<_> = {
            let mut v: Vec<_> = acc.iter().collect();
            v.sort_by_key(|e| e.tuple);
            v
        };
        assert_eq!(before, after);
    }

    #[test]
    fn clear_empties_table() {
        let mut acc = AccumulatorTable::new(2).unwrap();
        acc.insert(t(1), 1);
        acc.clear();
        assert!(acc.is_empty());
    }
}
