//! Calibration tests: the synthetic benchmark models must land in the
//! observable bands DESIGN.md commits to (the Figure 4/5/6 shapes).
//!
//! These are deliberately loose (x2-3 tolerance): they pin the *shape*,
//! not exact values, so honest recalibration stays possible without
//! breaking the build.

use mhp_analysis::spectrum::FrequencySpectrum;
use mhp_analysis::{run_exact_stats, variation_percent};
use mhp_core::{IntervalConfig, PerfectProfiler, Tuple};
use mhp_trace::Benchmark;

fn spectrum_at(bench: Benchmark, interval_len: u64) -> FrequencySpectrum {
    let config = IntervalConfig::new(interval_len, 0.01).unwrap();
    let mut p = PerfectProfiler::new(config);
    // Skip one interval of warmup, measure the second.
    let mut exacts = Vec::new();
    for t in bench.value_stream(7).take(2 * interval_len as usize) {
        if let Some(e) = p.observe_exact(t) {
            exacts.push(e);
        }
    }
    FrequencySpectrum::from_exact(&exacts[1])
}

#[test]
fn candidate_counts_land_in_figure5_bands() {
    // (benchmark, expected 1% candidates, expected 0.1% candidates).
    let expectations = [
        (Benchmark::Burg, 4.0, 22.0),
        (Benchmark::Deltablue, 6.0, 46.0),
        (Benchmark::Gcc, 16.0, 126.0),
        (Benchmark::Go, 12.0, 142.0),
        (Benchmark::Li, 7.0, 52.0),
        (Benchmark::M88ksim, 8.0, 58.0),
        (Benchmark::Sis, 10.0, 80.0),
        (Benchmark::Vortex, 9.0, 89.0),
    ];
    for (bench, at_1pct, at_01pct) in expectations {
        let spectrum = spectrum_at(bench, 100_000);
        let c1 = spectrum.tuples_above(0.01) as f64;
        let c01 = spectrum.tuples_above(0.001) as f64;
        assert!(
            c1 >= at_1pct * 0.5 && c1 <= at_1pct * 2.0,
            "{}: 1% candidates {c1} vs expected ~{at_1pct}",
            bench.name()
        );
        assert!(
            c01 >= at_01pct * 0.5 && c01 <= at_01pct * 2.0,
            "{}: 0.1% candidates {c01} vs expected ~{at_01pct}",
            bench.name()
        );
    }
}

#[test]
fn distinct_tuples_order_matches_figure4() {
    let distinct = |b: Benchmark| spectrum_at(b, 100_000).total_tuples();
    let gcc = distinct(Benchmark::Gcc);
    let go = distinct(Benchmark::Go);
    let burg = distinct(Benchmark::Burg);
    let m88 = distinct(Benchmark::M88ksim);
    assert!(gcc > 3 * burg, "gcc {gcc} vs burg {burg}");
    assert!(go > 3 * m88, "go {go} vs m88ksim {m88}");
}

#[test]
fn distinct_tuples_grow_roughly_linearly_with_interval_length() {
    // The paper: "the total number of distinct tuples in an interval
    // increases proportionally to interval length".
    for bench in [Benchmark::Gcc, Benchmark::Sis] {
        let d_small = spectrum_at(bench, 50_000).total_tuples() as f64;
        let d_large = spectrum_at(bench, 500_000).total_tuples() as f64;
        let ratio = d_large / d_small;
        assert!(
            (4.0..=20.0).contains(&ratio),
            "{}: growth ratio {ratio} for 10x interval",
            bench.name()
        );
    }
}

#[test]
fn candidate_counts_are_roughly_interval_length_independent() {
    // The paper: "the number of unique candidate tuples ... roughly remain
    // the same irrespective of interval length".
    for bench in [Benchmark::Gcc, Benchmark::Li] {
        let c_small = spectrum_at(bench, 50_000).tuples_above(0.001) as f64;
        let c_large = spectrum_at(bench, 500_000).tuples_above(0.001) as f64;
        assert!(
            c_large <= c_small * 2.0 && c_large >= c_small * 0.5,
            "{}: candidates {c_small} -> {c_large} across 10x interval",
            bench.name()
        );
    }
}

#[test]
fn figure6_personalities_reproduce() {
    // m88ksim: high variation at 10K, low at 1M. deltablue: the reverse.
    let mean_variation = |bench: Benchmark, len: u64, events: u64| {
        let config = IntervalConfig::new(len, if len >= 1_000_000 { 0.001 } else { 0.01 }).unwrap();
        let stats = run_exact_stats(config, bench.value_stream(7).take(events as usize));
        let v = stats.variations();
        assert!(!v.is_empty());
        v.iter().sum::<f64>() / v.len() as f64
    };
    let m88_short = mean_variation(Benchmark::M88ksim, 10_000, 400_000);
    let m88_long = mean_variation(Benchmark::M88ksim, 1_000_000, 6_000_000);
    assert!(
        m88_short > m88_long + 20.0,
        "m88ksim: short {m88_short} vs long {m88_long}"
    );
    let db_short = mean_variation(Benchmark::Deltablue, 10_000, 400_000);
    let db_long = mean_variation(Benchmark::Deltablue, 1_000_000, 9_000_000);
    assert!(
        db_long > db_short + 20.0,
        "deltablue: short {db_short} vs long {db_long}"
    );
}

#[test]
fn variation_metric_is_sane_on_benchmarks() {
    // Sanity anchor for the Jaccard-based metric on real model output.
    let config = IntervalConfig::new(10_000, 0.01).unwrap();
    let mut p = PerfectProfiler::new(config);
    let mut profiles: Vec<Vec<Tuple>> = Vec::new();
    for t in Benchmark::Burg.value_stream(7).take(50_000) {
        if let Some(e) = p.observe_exact(t) {
            profiles.push(e.profile().tuples().collect());
        }
    }
    for w in profiles.windows(2) {
        let v = variation_percent(w[0].iter().copied(), w[1].iter().copied());
        assert!((0.0..=100.0).contains(&v));
    }
}
