//! Plain-text table rendering for the experiment harness.
//!
//! The figure-reproduction binary prints each paper figure as an aligned
//! text table (and optionally CSV); this module is the tiny formatting layer
//! it shares.

use std::fmt;

/// A simple fixed-width text table.
///
/// # Examples
///
/// ```
/// use mhp_analysis::report::TextTable;
/// let mut t = TextTable::new(vec!["benchmark", "error %"]);
/// t.add_row(vec!["gcc".into(), "5.0".into()]);
/// t.add_row(vec!["go".into(), "1.5".into()]);
/// let s = t.to_string();
/// assert!(s.contains("benchmark"));
/// assert!(s.contains("gcc"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the table width.
    pub fn add_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (comma-separated, header first). Cells
    /// containing commas or quotes are quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let columns = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.headers.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; columns];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:width$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` decimals, trimming to a compact cell.
pub fn fmt_f64(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.add_row(vec!["xxxxxxxx".into(), "1".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // header, rule, one row
        assert!(lines[0].contains("long-header"));
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1".into()]);
        let s = t.to_string();
        assert!(s.contains('1'));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(vec!["x"]);
        t.add_row(vec!["a,b".into()]);
        t.add_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn fmt_f64_respects_precision() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(1.0, 0), "1");
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.add_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
