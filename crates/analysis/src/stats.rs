//! Drivers that run profilers over event streams and gather statistics.

use mhp_core::{EventProfiler, IntervalConfig, PerfectProfiler, Tuple};

use crate::compare::compare_interval;
use crate::series::ErrorSeries;
use crate::variation::variation_percent;

/// The outcome of running a hardware profiler against the perfect profiler
/// over the same event stream.
#[derive(Debug, Clone)]
pub struct ComparisonResult {
    series: ErrorSeries,
    events_fed: u64,
}

impl ComparisonResult {
    /// The per-interval error series.
    pub fn series(&self) -> &ErrorSeries {
        &self.series
    }

    /// Consumes the result, returning the series.
    pub fn into_series(self) -> ErrorSeries {
        self.series
    }

    /// Number of events fed (including any trailing partial interval).
    pub fn events_fed(&self) -> u64 {
        self.events_fed
    }
}

/// Runs `hardware` and a [`PerfectProfiler`] in lockstep over `events`,
/// comparing each completed interval (§5.5.1's methodology). Trailing events
/// that do not complete an interval are ignored, as in the paper.
///
/// # Examples
///
/// ```
/// use mhp_analysis::run_comparison;
/// use mhp_core::{IntervalConfig, SingleHashConfig, SingleHashProfiler, Tuple};
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// let interval = IntervalConfig::new(500, 0.02)?;
/// let mut hw = SingleHashProfiler::new(interval, SingleHashConfig::best(), 9)?;
/// let events = (0..2_000u64).map(|i| Tuple::new(i % 20, 1));
/// let result = run_comparison(&mut hw, events);
/// assert_eq!(result.series().len(), 4);
/// # Ok(())
/// # }
/// ```
pub fn run_comparison<P, I>(hardware: &mut P, events: I) -> ComparisonResult
where
    P: EventProfiler,
    I: IntoIterator<Item = Tuple>,
{
    let config = hardware.interval_config();
    let mut perfect = PerfectProfiler::new(config);
    let mut series = ErrorSeries::new();
    let mut events_fed = 0u64;
    for tuple in events {
        events_fed += 1;
        let exact = perfect.observe_exact(tuple);
        let profile = hardware.observe(tuple);
        match (exact, profile) {
            (Some(exact), Some(profile)) => series.push(compare_interval(&exact, &profile)),
            (None, None) => {}
            _ => unreachable!("perfect and hardware profilers tick in lockstep"),
        }
    }
    ComparisonResult { series, events_fed }
}

/// Per-interval stream statistics from a perfect profiler — the raw material
/// of Figures 4 (distinct tuples), 5 (candidate counts) and 6 (candidate
/// variation).
#[derive(Debug, Clone)]
pub struct ExactStats {
    distinct_per_interval: Vec<usize>,
    candidates_per_interval: Vec<usize>,
    variations: Vec<f64>,
}

impl ExactStats {
    /// Distinct tuples seen in each completed interval.
    pub fn distinct_per_interval(&self) -> &[usize] {
        &self.distinct_per_interval
    }

    /// Candidate tuples (count >= threshold) in each completed interval.
    pub fn candidates_per_interval(&self) -> &[usize] {
        &self.candidates_per_interval
    }

    /// Candidate variation (percent) between each pair of consecutive
    /// intervals; `variations().len() == intervals - 1`.
    pub fn variations(&self) -> &[f64] {
        &self.variations
    }

    /// Mean distinct tuples per interval (Figure 4's y-value).
    pub fn mean_distinct(&self) -> f64 {
        mean_usize(&self.distinct_per_interval)
    }

    /// Mean candidate tuples per interval (Figure 5's y-value).
    pub fn mean_candidates(&self) -> f64 {
        mean_usize(&self.candidates_per_interval)
    }

    /// Number of completed intervals observed.
    pub fn intervals(&self) -> usize {
        self.distinct_per_interval.len()
    }
}

fn mean_usize(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<usize>() as f64 / xs.len() as f64
    }
}

/// Runs a perfect profiler over `events` and gathers the per-interval
/// statistics needed by Figures 4–6.
///
/// # Examples
///
/// ```
/// use mhp_analysis::run_exact_stats;
/// use mhp_core::{IntervalConfig, Tuple};
/// let config = IntervalConfig::new(100, 0.1).unwrap();
/// let events = (0..300u64).map(|i| Tuple::new(i % 5, 0));
/// let stats = run_exact_stats(config, events);
/// assert_eq!(stats.intervals(), 3);
/// assert_eq!(stats.mean_distinct(), 5.0);
/// assert_eq!(stats.variations().len(), 2);
/// ```
pub fn run_exact_stats<I>(config: IntervalConfig, events: I) -> ExactStats
where
    I: IntoIterator<Item = Tuple>,
{
    let mut perfect = PerfectProfiler::new(config);
    let mut distinct = Vec::new();
    let mut candidates = Vec::new();
    let mut variations = Vec::new();
    let mut prev_candidates: Option<Vec<Tuple>> = None;
    for tuple in events {
        if let Some(exact) = perfect.observe_exact(tuple) {
            distinct.push(exact.distinct_tuples());
            let profile = exact.profile();
            let current: Vec<Tuple> = profile.tuples().collect();
            candidates.push(current.len());
            if let Some(prev) = prev_candidates.replace(current.clone()) {
                variations.push(variation_percent(prev, current));
            }
        }
    }
    ExactStats {
        distinct_per_interval: distinct,
        candidates_per_interval: candidates,
        variations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_core::{MultiHashConfig, MultiHashProfiler};

    #[test]
    fn comparison_counts_events_and_intervals() {
        let interval = IntervalConfig::new(100, 0.05).unwrap();
        let mut hw =
            MultiHashProfiler::new(interval, MultiHashConfig::new(256, 2).unwrap(), 1).unwrap();
        let events = (0..250u64).map(|i| Tuple::new(i % 10, 0));
        let result = run_comparison(&mut hw, events);
        assert_eq!(result.events_fed(), 250);
        assert_eq!(
            result.series().len(),
            2,
            "trailing partial interval ignored"
        );
    }

    #[test]
    fn easy_workload_yields_zero_error() {
        // 5 hot tuples, no noise: every profiler should be exact.
        let interval = IntervalConfig::new(100, 0.05).unwrap();
        let mut hw = MultiHashProfiler::new(interval, MultiHashConfig::best(), 1).unwrap();
        let events = (0..1_000u64).map(|i| Tuple::new(i % 5, 0));
        let result = run_comparison(&mut hw, events);
        assert_eq!(result.series().mean_total_percent(), 0.0);
    }

    #[test]
    fn exact_stats_measure_distinct_and_candidates() {
        let config = IntervalConfig::new(100, 0.2).unwrap(); // threshold 20
                                                             // 2 hot tuples (40 occurrences each) + 20 unique noise per interval.
        let events = (0..300u64).map(|i| {
            let phase = i % 100;
            if phase < 80 {
                Tuple::new(phase % 2, 0)
            } else {
                Tuple::new(1_000 + i, 0)
            }
        });
        let stats = run_exact_stats(config, events);
        assert_eq!(stats.intervals(), 3);
        assert_eq!(stats.mean_candidates(), 2.0);
        assert_eq!(stats.mean_distinct(), 22.0);
        // Same candidates every interval -> zero variation.
        assert!(stats.variations().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn stats_of_empty_stream_are_empty() {
        let config = IntervalConfig::new(100, 0.2).unwrap();
        let stats = run_exact_stats(config, std::iter::empty());
        assert_eq!(stats.intervals(), 0);
        assert_eq!(stats.mean_distinct(), 0.0);
        assert_eq!(stats.mean_candidates(), 0.0);
        assert!(stats.variations().is_empty());
    }

    #[test]
    fn variation_detects_phase_change() {
        let config = IntervalConfig::new(100, 0.3).unwrap();
        // Interval 0: tuple A hot. Interval 1: tuple B hot.
        let events = (0..200u64).map(|i| {
            if i < 100 {
                Tuple::new(1, 0)
            } else {
                Tuple::new(2, 0)
            }
        });
        let stats = run_exact_stats(config, events);
        assert_eq!(stats.variations(), &[100.0]);
    }
}
