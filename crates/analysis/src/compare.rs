//! Per-interval comparison of a hardware profile against the perfect one.

use std::collections::HashSet;

use mhp_core::{ExactCounts, IntervalProfile, Tuple};

use crate::metrics::{CandidateClassification, ErrorBreakdown, ErrorCategory, IntervalError};

/// Compares one interval's hardware profile against the perfect counts and
/// computes Equation 1's weighted error with the Figure 3 category split.
///
/// The candidate set is the union of the perfect profiler's candidates and
/// the hardware profiler's reported candidates (§5.5.2: *"all candidate
/// tuples seen either in perfect or hardware profiler"*). Each candidate `i`
/// contributes `|f_p_i − f_h_i|` to the numerator and `f_p_i` to the
/// denominator.
///
/// If the denominator is zero (no perfect occurrences of any candidate —
/// only possible in degenerate synthetic streams) the error is defined as 0
/// when there are no candidates, and attributed per-unit otherwise with a
/// denominator of 1 to avoid division by zero.
///
/// # Panics
///
/// Panics if the two profiles cover different interval indices or interval
/// configurations — comparing mismatched intervals is a harness bug.
///
/// # Examples
///
/// ```
/// use mhp_analysis::compare_interval;
/// use mhp_core::{EventProfiler, IntervalConfig, PerfectProfiler, MultiHashConfig,
///                MultiHashProfiler, Tuple};
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// let interval = IntervalConfig::new(100, 0.1)?;
/// let mut perfect = PerfectProfiler::new(interval);
/// let mut hw = MultiHashProfiler::new(interval, MultiHashConfig::new(64, 2)?, 3)?;
/// let mut pair = None;
/// for i in 0..100u64 {
///     let t = Tuple::new(i % 4, 0);
///     let e = perfect.observe_exact(t);
///     let p = hw.observe(t);
///     if let (Some(e), Some(p)) = (e, p) {
///         pair = Some((e, p));
///     }
/// }
/// let (exact, profile) = pair.unwrap();
/// let err = compare_interval(&exact, &profile);
/// assert!(err.total_percent() < 100.0);
/// # Ok(())
/// # }
/// ```
pub fn compare_interval(exact: &ExactCounts, hardware: &IntervalProfile) -> IntervalError {
    assert_eq!(
        exact.interval_index(),
        hardware.interval_index(),
        "comparing different intervals"
    );
    assert_eq!(
        exact.config(),
        hardware.config(),
        "comparing different interval configurations"
    );
    let threshold = exact.config().threshold_count();

    // Union of candidate tuples.
    let mut candidates: HashSet<Tuple> = hardware.tuples().collect();
    for (&tuple, &count) in exact.counts() {
        if count >= threshold {
            candidates.insert(tuple);
        }
    }

    let mut classifications = Vec::with_capacity(candidates.len());
    let mut numerators = ErrorBreakdown::default();
    let mut denominator = 0u64;
    for tuple in candidates {
        let f_p = exact.count_of(tuple);
        let f_h = hardware.count_of(tuple).unwrap_or(0);
        let class = CandidateClassification::classify(tuple, f_p, f_h, threshold);
        denominator += f_p;
        let err = class.absolute_error() as f64;
        match class.category {
            ErrorCategory::FalsePositive => numerators.false_positive += err,
            ErrorCategory::FalseNegative => numerators.false_negative += err,
            ErrorCategory::NeutralPositive => numerators.neutral_positive += err,
            ErrorCategory::NeutralNegative => numerators.neutral_negative += err,
            ErrorCategory::Exact => {}
        }
        classifications.push(class);
    }

    let denom = if denominator == 0 {
        1.0
    } else {
        denominator as f64
    };
    IntervalError {
        interval_index: exact.interval_index(),
        breakdown: numerators.scale(denom),
        classifications,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_core::{Candidate, IntervalConfig, PerfectProfiler};

    /// Builds an ExactCounts by running a perfect profiler over `events`.
    fn exact_from(events: &[Tuple], config: IntervalConfig) -> ExactCounts {
        let mut p = PerfectProfiler::new(config);
        let mut out = None;
        for &t in events {
            if let Some(e) = p.observe_exact(t) {
                out = Some(e);
            }
        }
        out.expect("events must fill exactly one interval")
    }

    fn hw_profile(config: IntervalConfig, cands: &[(Tuple, u64)]) -> IntervalProfile {
        IntervalProfile::from_candidates(
            0,
            config,
            cands.iter().map(|&(t, c)| Candidate::new(t, c)).collect(),
        )
    }

    #[test]
    fn perfect_hardware_profile_has_zero_error() {
        let config = IntervalConfig::new(10, 0.3).unwrap(); // threshold 3
        let hot = Tuple::new(1, 1);
        let mut events = vec![hot; 6];
        events.extend((0..4).map(|i| Tuple::new(100 + i, 0)));
        let exact = exact_from(&events, config);
        let hw = hw_profile(config, &[(hot, 6)]);
        let err = compare_interval(&exact, &hw);
        assert_eq!(err.total(), 0.0);
        assert_eq!(err.count_in(ErrorCategory::Exact), 1);
    }

    #[test]
    fn missed_candidate_is_a_false_negative_with_full_weight() {
        let config = IntervalConfig::new(10, 0.3).unwrap();
        let hot = Tuple::new(1, 1);
        let mut events = vec![hot; 6];
        events.extend((0..4).map(|i| Tuple::new(100 + i, 0)));
        let exact = exact_from(&events, config);
        let hw = hw_profile(config, &[]); // hardware missed everything
        let err = compare_interval(&exact, &hw);
        // numerator = |6-0| = 6; denominator = 6 -> E = 100%
        assert!((err.total_percent() - 100.0).abs() < 1e-9);
        assert_eq!(err.count_in(ErrorCategory::FalseNegative), 1);
        assert_eq!(err.breakdown.false_negative, err.total());
    }

    #[test]
    fn false_positive_error_can_exceed_100_percent() {
        let config = IntervalConfig::new(10, 0.3).unwrap();
        let hot = Tuple::new(1, 1);
        let rare = Tuple::new(2, 2);
        let mut events = vec![hot; 6];
        events.push(rare);
        events.extend((0..3).map(|i| Tuple::new(100 + i, 0)));
        let exact = exact_from(&events, config);
        // Hardware reports the rare tuple with a big (aliased) count.
        let hw = hw_profile(config, &[(hot, 6), (rare, 20)]);
        let err = compare_interval(&exact, &hw);
        // numerator: |1-20| = 19 (FP); denominator: 6 + 1 = 7 -> E = 271%
        assert!(err.total_percent() > 100.0);
        assert_eq!(err.count_in(ErrorCategory::FalsePositive), 1);
    }

    #[test]
    fn neutral_errors_split_by_direction() {
        let config = IntervalConfig::new(20, 0.2).unwrap(); // threshold 4
        let a = Tuple::new(1, 1);
        let b = Tuple::new(2, 2);
        let mut events = Vec::new();
        events.extend(std::iter::repeat_n(a, 8));
        events.extend(std::iter::repeat_n(b, 8));
        events.extend((0..4).map(|i| Tuple::new(100 + i, 0)));
        let exact = exact_from(&events, config);
        let hw = hw_profile(config, &[(a, 10), (b, 6)]); // a inflated, b deflated
        let err = compare_interval(&exact, &hw);
        assert_eq!(err.count_in(ErrorCategory::NeutralPositive), 1);
        assert_eq!(err.count_in(ErrorCategory::NeutralNegative), 1);
        // numerators: |8-10| = 2 NP, |8-6| = 2 NN; denominator = 16.
        assert!((err.breakdown.neutral_positive - 2.0 / 16.0).abs() < 1e-12);
        assert!((err.breakdown.neutral_negative - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_with_empty_hardware_is_zero_error() {
        let config = IntervalConfig::new(10, 0.9).unwrap(); // threshold 9: nothing qualifies
        let events: Vec<Tuple> = (0..10).map(|i| Tuple::new(i, 0)).collect();
        let exact = exact_from(&events, config);
        let hw = hw_profile(config, &[]);
        let err = compare_interval(&exact, &hw);
        assert_eq!(err.total(), 0.0);
        assert!(err.classifications.is_empty());
    }

    #[test]
    #[should_panic(expected = "different intervals")]
    fn mismatched_interval_indices_panic() {
        let config = IntervalConfig::new(10, 0.3).unwrap();
        let events: Vec<Tuple> = (0..10).map(|i| Tuple::new(i, 0)).collect();
        let exact = exact_from(&events, config);
        let hw = IntervalProfile::from_candidates(5, config, vec![]);
        compare_interval(&exact, &hw);
    }
}
