//! Adaptive interval sizing — the extension §5.6.1 floats.
//!
//! The paper observes that different programs want different profile
//! intervals: deltablue's long phases make 1M-event intervals unstable
//! while 10K intervals are calm; m88ksim's bursty hot set is the reverse.
//! *"one can potentially adaptively pick the appropriate interval length
//! for a given program."*
//!
//! [`AdaptiveProfiler`] implements that suggestion: it wraps a
//! [`MultiHashProfiler`] and, after each completed interval, measures the
//! candidate variation against the previous interval. Sustained low
//! variation (the profile is stable — longer intervals would amortize
//! better and see rarer events) doubles the interval length; sustained high
//! variation (the profile churns — the optimizer is acting on stale data)
//! halves it. Interval lengths stay within a configured band and the
//! candidate-threshold *fraction* is preserved, so the accumulator bound of
//! §5.1 continues to hold at every length.

use mhp_core::{
    ConfigError, EventProfiler, IntervalConfig, IntervalProfile, MultiHashConfig,
    MultiHashProfiler, Tuple,
};

use crate::variation::variation_percent;

/// Tuning knobs for [`AdaptiveProfiler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivePolicy {
    /// Smallest allowed interval length.
    pub min_len: u64,
    /// Largest allowed interval length.
    pub max_len: u64,
    /// Variation (percent) below which the interval doubles.
    pub grow_below: f64,
    /// Variation (percent) above which the interval halves.
    pub shrink_above: f64,
}

impl Default for AdaptivePolicy {
    /// 10K–1M event intervals, grow when variation < 10 %, shrink when
    /// variation > 50 %.
    fn default() -> Self {
        AdaptivePolicy {
            min_len: 10_000,
            max_len: 1_000_000,
            grow_below: 10.0,
            shrink_above: 50.0,
        }
    }
}

impl AdaptivePolicy {
    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroIntervalLength`] when the length band is
    /// empty or zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.min_len == 0 || self.max_len < self.min_len {
            return Err(ConfigError::ZeroIntervalLength);
        }
        Ok(())
    }
}

/// One record of the adaptation history: the interval that just completed
/// and the decision it triggered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptationStep {
    /// The length of the completed interval.
    pub interval_len: u64,
    /// Candidate variation vs the previous interval, in percent (`None` for
    /// the very first interval).
    pub variation: Option<f64>,
    /// The length chosen for the next interval.
    pub next_len: u64,
}

/// A multi-hash profiler whose interval length adapts to the measured
/// candidate stability.
///
/// # Examples
///
/// ```
/// use mhp_analysis::adaptive::{AdaptivePolicy, AdaptiveProfiler};
/// use mhp_core::{MultiHashConfig, Tuple};
///
/// # fn main() -> Result<(), mhp_core::ConfigError> {
/// let policy = AdaptivePolicy { min_len: 100, max_len: 10_000, ..Default::default() };
/// let mut profiler =
///     AdaptiveProfiler::new(policy, 0.01, MultiHashConfig::best(), 1)?;
/// // A perfectly stable stream: the interval should grow to the maximum.
/// for i in 0..100_000u64 {
///     profiler.observe(Tuple::new(i % 10, 0));
/// }
/// assert_eq!(profiler.current_interval_len(), 10_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdaptiveProfiler {
    policy: AdaptivePolicy,
    threshold_fraction: f64,
    sketch: MultiHashConfig,
    seed: u64,
    inner: MultiHashProfiler,
    prev_candidates: Option<Vec<Tuple>>,
    history: Vec<AdaptationStep>,
    intervals_completed: u64,
}

impl AdaptiveProfiler {
    /// Creates an adaptive profiler starting at the policy's minimum
    /// interval length.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the policy, interval and sketch.
    pub fn new(
        policy: AdaptivePolicy,
        threshold_fraction: f64,
        sketch: MultiHashConfig,
        seed: u64,
    ) -> Result<Self, ConfigError> {
        policy.validate()?;
        let interval = IntervalConfig::new(policy.min_len, threshold_fraction)?;
        let inner = MultiHashProfiler::new(interval, sketch, seed)?;
        Ok(AdaptiveProfiler {
            policy,
            threshold_fraction,
            sketch,
            seed,
            inner,
            prev_candidates: None,
            history: Vec::new(),
            intervals_completed: 0,
        })
    }

    /// The interval length currently in effect.
    pub fn current_interval_len(&self) -> u64 {
        self.inner.interval_config().interval_len()
    }

    /// The adaptation decisions taken so far.
    pub fn history(&self) -> &[AdaptationStep] {
        &self.history
    }

    /// Total completed intervals (across all lengths).
    pub fn intervals_completed(&self) -> u64 {
        self.intervals_completed
    }

    /// Feeds one event; returns the completed interval profile when an
    /// interval ends (possibly triggering a length change for the next one).
    pub fn observe(&mut self, tuple: Tuple) -> Option<IntervalProfile> {
        let profile = self.inner.observe(tuple)?;
        self.intervals_completed += 1;
        let current: Vec<Tuple> = profile.tuples().collect();
        let variation = self
            .prev_candidates
            .replace(current.clone())
            .map(|prev| variation_percent(prev, current));
        let len = self.current_interval_len();
        let next_len = match variation {
            Some(v) if v > self.policy.shrink_above => (len / 2).max(self.policy.min_len),
            Some(v) if v < self.policy.grow_below => (len * 2).min(self.policy.max_len),
            _ => len,
        };
        self.history.push(AdaptationStep {
            interval_len: len,
            variation,
            next_len,
        });
        if next_len != len {
            // Rebuild at the new length. Candidate-threshold fraction is
            // preserved; hardware state restarts cold (a real design would
            // keep the accumulator, which the retained candidates model).
            let interval = IntervalConfig::new(next_len, self.threshold_fraction)
                .expect("validated by the policy");
            self.inner = MultiHashProfiler::new(interval, self.sketch, self.seed)
                .expect("sketch config was already validated");
        }
        Some(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(min: u64, max: u64) -> AdaptivePolicy {
        AdaptivePolicy {
            min_len: min,
            max_len: max,
            grow_below: 10.0,
            shrink_above: 50.0,
        }
    }

    fn profiler(min: u64, max: u64) -> AdaptiveProfiler {
        AdaptiveProfiler::new(
            policy(min, max),
            0.05,
            MultiHashConfig::new(64, 2).unwrap(),
            1,
        )
        .unwrap()
    }

    #[test]
    fn stable_stream_grows_to_max() {
        let mut p = profiler(100, 1_600);
        for i in 0..60_000u64 {
            p.observe(Tuple::new(i % 5, 0));
        }
        assert_eq!(p.current_interval_len(), 1_600);
        // Growth is geometric: 100 -> 200 -> 400 -> 800 -> 1600.
        let lens: Vec<u64> = p.history().iter().map(|s| s.interval_len).collect();
        assert!(lens.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn churning_stream_shrinks_to_min() {
        let mut p = profiler(100, 800);
        // Force growth first with a stable prefix.
        for i in 0..20_000u64 {
            p.observe(Tuple::new(i % 5, 0));
        }
        assert!(p.current_interval_len() > 100);
        // Now churn faster than the minimum interval: a different hot set
        // every 50 events, so every interval straddles several epochs and no
        // length in the band ever looks stable.
        for i in 0..40_000u64 {
            let epoch = i / 50;
            p.observe(Tuple::new(1_000 + epoch * 10 + i % 5, 0));
        }
        assert_eq!(
            p.current_interval_len(),
            100,
            "churn must shrink the interval"
        );
    }

    #[test]
    fn lengths_stay_within_the_policy_band() {
        let mut p = profiler(200, 800);
        for i in 0..50_000u64 {
            // Alternate stability and churn.
            let t = if (i / 3_000) % 2 == 0 {
                Tuple::new(i % 4, 0)
            } else {
                Tuple::new(10_000 + i, 0)
            };
            p.observe(t);
        }
        for step in p.history() {
            assert!(step.interval_len >= 200 && step.interval_len <= 800);
            assert!(step.next_len >= 200 && step.next_len <= 800);
        }
    }

    #[test]
    fn first_interval_has_no_variation() {
        let mut p = profiler(100, 800);
        for i in 0..100u64 {
            p.observe(Tuple::new(i % 3, 0));
        }
        assert_eq!(p.history().len(), 1);
        assert!(p.history()[0].variation.is_none());
    }

    #[test]
    fn invalid_policy_is_rejected() {
        let bad = AdaptivePolicy {
            min_len: 0,
            ..Default::default()
        };
        assert!(AdaptiveProfiler::new(bad, 0.01, MultiHashConfig::best(), 1).is_err());
        let inverted = AdaptivePolicy {
            min_len: 100,
            max_len: 50,
            ..Default::default()
        };
        assert!(AdaptiveProfiler::new(inverted, 0.01, MultiHashConfig::best(), 1).is_err());
    }

    #[test]
    fn history_records_every_interval() {
        let mut p = profiler(100, 100); // fixed length band
        for i in 0..1_000u64 {
            p.observe(Tuple::new(i % 3, 0));
        }
        assert_eq!(p.intervals_completed(), 10);
        assert_eq!(p.history().len(), 10);
    }
}
