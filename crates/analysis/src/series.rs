//! Error series across intervals: net error rates and Figure 13's
//! per-interval break-down.

use crate::metrics::{ErrorBreakdown, ErrorCategory, IntervalError};

/// The sequence of per-interval errors from one profiler run.
///
/// The paper's *net error rate* (§5.5.2) is *"a simple average over the
/// error rates seen by all intervals"* — [`mean_total_percent`] — and its
/// stacked bar charts split that average by category —
/// [`mean_breakdown`].
///
/// [`mean_total_percent`]: Self::mean_total_percent
/// [`mean_breakdown`]: Self::mean_breakdown
#[derive(Debug, Clone, Default)]
pub struct ErrorSeries {
    intervals: Vec<IntervalError>,
}

impl ErrorSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        ErrorSeries::default()
    }

    /// Appends one interval's error.
    pub fn push(&mut self, error: IntervalError) {
        self.intervals.push(error);
    }

    /// Number of intervals recorded.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Returns `true` if no interval has been recorded.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The recorded intervals, in order.
    pub fn intervals(&self) -> &[IntervalError] {
        &self.intervals
    }

    /// Per-interval total error in percent, in interval order (the series
    /// plotted in Figure 13).
    pub fn totals_percent(&self) -> Vec<f64> {
        self.intervals
            .iter()
            .map(IntervalError::total_percent)
            .collect()
    }

    /// The net error rate: unweighted mean of the per-interval totals, in
    /// percent. Zero for an empty series.
    pub fn mean_total_percent(&self) -> f64 {
        if self.intervals.is_empty() {
            return 0.0;
        }
        self.intervals
            .iter()
            .map(IntervalError::total_percent)
            .sum::<f64>()
            / self.intervals.len() as f64
    }

    /// The mean per-category error breakdown across intervals (the stacked
    /// bars of Figures 7, 10, 11, 12, 14).
    pub fn mean_breakdown(&self) -> ErrorBreakdown {
        if self.intervals.is_empty() {
            return ErrorBreakdown::default();
        }
        let sum = self
            .intervals
            .iter()
            .fold(ErrorBreakdown::default(), |acc, e| acc.add(&e.breakdown));
        sum.scale(self.intervals.len() as f64)
    }

    /// The worst single-interval error, in percent (spike detection for
    /// Figure 13's discussion). Zero for an empty series.
    pub fn max_total_percent(&self) -> f64 {
        self.intervals
            .iter()
            .map(IntervalError::total_percent)
            .fold(0.0, f64::max)
    }

    /// Number of intervals whose total error exceeds `percent`.
    pub fn intervals_above_percent(&self, percent: f64) -> usize {
        self.intervals
            .iter()
            .filter(|e| e.total_percent() > percent)
            .count()
    }

    /// Total candidates in `category` summed over all intervals.
    pub fn total_count_in(&self, category: ErrorCategory) -> usize {
        self.intervals.iter().map(|e| e.count_in(category)).sum()
    }
}

impl FromIterator<IntervalError> for ErrorSeries {
    fn from_iter<I: IntoIterator<Item = IntervalError>>(iter: I) -> Self {
        ErrorSeries {
            intervals: iter.into_iter().collect(),
        }
    }
}

impl Extend<IntervalError> for ErrorSeries {
    fn extend<I: IntoIterator<Item = IntervalError>>(&mut self, iter: I) {
        self.intervals.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interval_error(index: u64, fp: f64, fnn: f64) -> IntervalError {
        IntervalError {
            interval_index: index,
            breakdown: ErrorBreakdown {
                false_positive: fp,
                false_negative: fnn,
                neutral_positive: 0.0,
                neutral_negative: 0.0,
            },
            classifications: vec![],
        }
    }

    #[test]
    fn empty_series_reports_zero() {
        let s = ErrorSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_total_percent(), 0.0);
        assert_eq!(s.max_total_percent(), 0.0);
        assert_eq!(s.mean_breakdown(), ErrorBreakdown::default());
    }

    #[test]
    fn mean_is_simple_average_over_intervals() {
        let s: ErrorSeries = vec![
            interval_error(0, 0.10, 0.0), // 10%
            interval_error(1, 0.0, 0.30), // 30%
        ]
        .into_iter()
        .collect();
        assert!((s.mean_total_percent() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn mean_breakdown_averages_per_category() {
        let s: ErrorSeries = vec![interval_error(0, 0.2, 0.0), interval_error(1, 0.0, 0.4)]
            .into_iter()
            .collect();
        let b = s.mean_breakdown();
        assert!((b.false_positive - 0.1).abs() < 1e-12);
        assert!((b.false_negative - 0.2).abs() < 1e-12);
        assert!((b.total_percent() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn max_and_above_threshold_counting() {
        let s: ErrorSeries = vec![
            interval_error(0, 0.05, 0.0),
            interval_error(1, 0.90, 0.0),
            interval_error(2, 0.10, 0.0),
        ]
        .into_iter()
        .collect();
        assert!((s.max_total_percent() - 90.0).abs() < 1e-9);
        assert_eq!(s.intervals_above_percent(8.0), 2);
        assert_eq!(s.intervals_above_percent(95.0), 0);
    }

    #[test]
    fn totals_preserve_interval_order() {
        let s: ErrorSeries = vec![interval_error(0, 0.1, 0.0), interval_error(1, 0.2, 0.0)]
            .into_iter()
            .collect();
        let totals = s.totals_percent();
        assert!(totals[0] < totals[1]);
        assert_eq!(s.len(), 2);
    }
}
