//! Tuple-frequency spectrum analysis.
//!
//! The accuracy of any filtering profiler is governed by the *shape* of the
//! tuple-frequency distribution: how many tuples sit above the candidate
//! threshold, how much near-threshold mass crowds the filters, and how much
//! of the stream is effectively-unique noise. This module computes that
//! spectrum from exact interval counts — used to validate the calibrated
//! workload models against the paper's observables, and useful on its own
//! for sizing a profiler for a new event source.

use mhp_core::ExactCounts;

/// The frequency spectrum of one interval: tuple counts and event mass per
/// frequency decade (relative to the interval length).
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencySpectrum {
    interval_len: u64,
    /// `(min_fraction, tuples, events)` per band, hottest band first.
    bands: Vec<(f64, u64, u64)>,
    total_tuples: u64,
    total_events: u64,
}

/// Band edges used by [`FrequencySpectrum::from_exact`]: decades from 1 %
/// down, with a catch-all bottom band.
const BAND_EDGES: [f64; 5] = [0.01, 0.001, 0.0001, 0.00001, 0.0];

impl FrequencySpectrum {
    /// Computes the spectrum of one interval.
    pub fn from_exact(exact: &ExactCounts) -> Self {
        let interval_len = exact.config().interval_len();
        let mut bands: Vec<(f64, u64, u64)> = BAND_EDGES.iter().map(|&e| (e, 0u64, 0u64)).collect();
        for &count in exact.counts().values() {
            let fraction = count as f64 / interval_len as f64;
            for band in bands.iter_mut() {
                if fraction >= band.0 {
                    band.1 += 1;
                    band.2 += count;
                    break;
                }
            }
        }
        FrequencySpectrum {
            interval_len,
            bands,
            total_tuples: exact.distinct_tuples() as u64,
            total_events: exact.counts().values().sum(),
        }
    }

    /// Number of distinct tuples whose frequency is at least `fraction`.
    pub fn tuples_above(&self, fraction: f64) -> u64 {
        self.bands
            .iter()
            .filter(|b| b.0 >= fraction)
            .map(|b| b.1)
            .sum()
    }

    /// Fraction of all events carried by tuples at or above `fraction`
    /// (the "signal mass").
    pub fn mass_above(&self, fraction: f64) -> f64 {
        if self.total_events == 0 {
            return 0.0;
        }
        let events: u64 = self
            .bands
            .iter()
            .filter(|b| b.0 >= fraction)
            .map(|b| b.2)
            .sum();
        events as f64 / self.total_events as f64
    }

    /// Total distinct tuples in the interval.
    pub fn total_tuples(&self) -> u64 {
        self.total_tuples
    }

    /// The band rows as `(min_fraction, tuples, events)`, hottest first.
    pub fn bands(&self) -> &[(f64, u64, u64)] {
        &self.bands
    }

    /// The signal-to-noise ratio the paper's §5.6.1 discusses: candidate
    /// mass (at `threshold`) divided by the rest of the stream.
    pub fn signal_to_noise(&self, threshold: f64) -> f64 {
        let signal = self.mass_above(threshold);
        let noise = 1.0 - signal;
        if noise <= 0.0 {
            f64::INFINITY
        } else {
            signal / noise
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhp_core::{IntervalConfig, PerfectProfiler, Tuple};

    fn exact_of(events: Vec<Tuple>) -> ExactCounts {
        let config = IntervalConfig::new(events.len() as u64, 0.01).unwrap();
        let mut p = PerfectProfiler::new(config);
        let mut out = None;
        for t in events {
            if let Some(e) = p.observe_exact(t) {
                out = Some(e);
            }
        }
        out.unwrap()
    }

    #[test]
    fn bands_partition_tuples_and_events() {
        // 10,000 events: one tuple at 50%, one at 0.5%, the rest unique
        // (0.01% each — safely below the 0.1% band edge).
        let mut events = vec![Tuple::new(1, 1); 5_000];
        events.extend(vec![Tuple::new(2, 2); 50]);
        events.extend((0..4_950u64).map(|i| Tuple::new(1_000_000 + i, 0)));
        let spectrum = FrequencySpectrum::from_exact(&exact_of(events));
        assert_eq!(spectrum.tuples_above(0.01), 1);
        assert_eq!(spectrum.tuples_above(0.001), 2);
        assert_eq!(spectrum.total_tuples(), 4_952);
        let (tuples_sum, events_sum): (u64, u64) = spectrum
            .bands()
            .iter()
            .fold((0, 0), |acc, b| (acc.0 + b.1, acc.1 + b.2));
        assert_eq!(tuples_sum, 4_952);
        assert_eq!(events_sum, 10_000);
    }

    #[test]
    fn mass_above_measures_signal() {
        let mut events = vec![Tuple::new(1, 1); 400];
        events.extend((0..600u64).map(|i| Tuple::new(1_000 + i, 0)));
        let spectrum = FrequencySpectrum::from_exact(&exact_of(events));
        assert!((spectrum.mass_above(0.01) - 0.4).abs() < 1e-9);
        let snr = spectrum.signal_to_noise(0.01);
        assert!((snr - 0.4 / 0.6).abs() < 1e-9);
    }

    #[test]
    fn all_noise_has_zero_signal() {
        let events: Vec<Tuple> = (0..1_000u64).map(|i| Tuple::new(i, i)).collect();
        let spectrum = FrequencySpectrum::from_exact(&exact_of(events));
        assert_eq!(spectrum.tuples_above(0.01), 0);
        assert_eq!(spectrum.mass_above(0.01), 0.0);
        assert_eq!(spectrum.signal_to_noise(0.01), 0.0);
    }

    #[test]
    fn pure_signal_has_infinite_snr() {
        let events = vec![Tuple::new(1, 1); 100];
        let spectrum = FrequencySpectrum::from_exact(&exact_of(events));
        assert_eq!(spectrum.signal_to_noise(0.01), f64::INFINITY);
    }
}
