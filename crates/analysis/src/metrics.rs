//! The four-way error classification (Figure 3) and Equation 1.
//!
//! For every candidate tuple — a tuple identified as a candidate by either
//! the perfect profiler or the hardware profiler — the comparison yields a
//! perfect frequency `f_p`, a hardware frequency `f_h` (0 when the hardware
//! missed the tuple entirely) and a category:
//!
//! | category         | condition              | consequence                      |
//! |------------------|------------------------|----------------------------------|
//! | false positive   | `f_p <  T`, `f_h >= T` | over-aggressive optimization     |
//! | false negative   | `f_p >= T`, `f_h <  T` | missed optimization opportunity  |
//! | neutral positive | both `>= T`, `f_h > f_p` | count inflated by aliasing     |
//! | neutral negative | both `>= T`, `f_h < f_p` | count deflated (e.g. resetting)|
//!
//! The interval error (Equation 1) is the `f_p`-weighted average of the
//! per-candidate relative errors, which reduces to
//! `E = Σ|f_p − f_h| / Σ f_p` over the candidate set.

use mhp_core::Tuple;

/// Which of Figure 3's four error quadrants a candidate landed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorCategory {
    /// Identified by the hardware profiler only (`f_p < T <= f_h`).
    FalsePositive,
    /// Identified by the perfect profiler only (`f_h < T <= f_p`).
    FalseNegative,
    /// Identified by both, hardware over-counted (`f_h > f_p >= T`).
    NeutralPositive,
    /// Identified by both, hardware under-counted (`f_p > f_h >= T`).
    NeutralNegative,
    /// Identified by both with the exact count (`f_h == f_p >= T`) — no
    /// error contribution.
    Exact,
}

impl ErrorCategory {
    /// Short display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            ErrorCategory::FalsePositive => "False Positive",
            ErrorCategory::FalseNegative => "False Negative",
            ErrorCategory::NeutralPositive => "Neutral Positive",
            ErrorCategory::NeutralNegative => "Neutral Negative",
            ErrorCategory::Exact => "Exact",
        }
    }
}

impl std::fmt::Display for ErrorCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The comparison record for one candidate tuple in one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateClassification {
    /// The candidate tuple.
    pub tuple: Tuple,
    /// Frequency seen by the perfect profiler (`f_p`).
    pub perfect_count: u64,
    /// Frequency reported by the hardware profiler (`f_h`; 0 when absent).
    pub hardware_count: u64,
    /// The Figure 3 category.
    pub category: ErrorCategory,
}

impl CandidateClassification {
    /// Classifies a candidate given both frequencies and the threshold.
    ///
    /// # Panics
    ///
    /// Panics if neither count reaches the threshold — such a tuple is
    /// Figure 3's "don't care" cell and must not be classified.
    pub fn classify(tuple: Tuple, perfect_count: u64, hardware_count: u64, threshold: u64) -> Self {
        let p_in = perfect_count >= threshold;
        let h_in = hardware_count >= threshold;
        assert!(
            p_in || h_in,
            "tuple {tuple} below threshold in both profiles is a don't-care"
        );
        let category = match (p_in, h_in) {
            (false, true) => ErrorCategory::FalsePositive,
            (true, false) => ErrorCategory::FalseNegative,
            (true, true) => match hardware_count.cmp(&perfect_count) {
                std::cmp::Ordering::Greater => ErrorCategory::NeutralPositive,
                std::cmp::Ordering::Less => ErrorCategory::NeutralNegative,
                std::cmp::Ordering::Equal => ErrorCategory::Exact,
            },
            (false, false) => unreachable!("guarded by the assert above"),
        };
        CandidateClassification {
            tuple,
            perfect_count,
            hardware_count,
            category,
        }
    }

    /// This candidate's contribution to Equation 1's numerator,
    /// `|f_p − f_h|`.
    #[inline]
    pub fn absolute_error(&self) -> u64 {
        self.perfect_count.abs_diff(self.hardware_count)
    }
}

/// The interval error split by Figure 3 category. All values are fractions
/// of Equation 1's denominator (so they sum to [`total`](Self::total)); use
/// the `*_percent` accessors for the paper's percentage scale.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorBreakdown {
    /// Error fraction attributed to false positives.
    pub false_positive: f64,
    /// Error fraction attributed to false negatives.
    pub false_negative: f64,
    /// Error fraction attributed to neutral positives.
    pub neutral_positive: f64,
    /// Error fraction attributed to neutral negatives.
    pub neutral_negative: f64,
}

impl ErrorBreakdown {
    /// Total error fraction (Equation 1's `E`).
    #[inline]
    pub fn total(&self) -> f64 {
        self.false_positive + self.false_negative + self.neutral_positive + self.neutral_negative
    }

    /// Total error in percent.
    #[inline]
    pub fn total_percent(&self) -> f64 {
        self.total() * 100.0
    }

    /// The component for `category`, as a fraction. [`ErrorCategory::Exact`]
    /// always contributes 0.
    pub fn component(&self, category: ErrorCategory) -> f64 {
        match category {
            ErrorCategory::FalsePositive => self.false_positive,
            ErrorCategory::FalseNegative => self.false_negative,
            ErrorCategory::NeutralPositive => self.neutral_positive,
            ErrorCategory::NeutralNegative => self.neutral_negative,
            ErrorCategory::Exact => 0.0,
        }
    }

    /// Element-wise sum, used when averaging across intervals.
    pub fn add(&self, other: &ErrorBreakdown) -> ErrorBreakdown {
        ErrorBreakdown {
            false_positive: self.false_positive + other.false_positive,
            false_negative: self.false_negative + other.false_negative,
            neutral_positive: self.neutral_positive + other.neutral_positive,
            neutral_negative: self.neutral_negative + other.neutral_negative,
        }
    }

    /// Element-wise division by a scalar, used when averaging.
    pub fn scale(&self, divisor: f64) -> ErrorBreakdown {
        ErrorBreakdown {
            false_positive: self.false_positive / divisor,
            false_negative: self.false_negative / divisor,
            neutral_positive: self.neutral_positive / divisor,
            neutral_negative: self.neutral_negative / divisor,
        }
    }
}

/// The full error analysis of one interval.
#[derive(Debug, Clone)]
pub struct IntervalError {
    /// Zero-based interval index.
    pub interval_index: u64,
    /// Error fractions by category; `breakdown.total()` is Equation 1's `E`.
    pub breakdown: ErrorBreakdown,
    /// Per-candidate classifications (union of perfect and hardware
    /// candidates), in unspecified order.
    pub classifications: Vec<CandidateClassification>,
}

impl IntervalError {
    /// Equation 1's `E` for this interval, as a fraction.
    #[inline]
    pub fn total(&self) -> f64 {
        self.breakdown.total()
    }

    /// Equation 1's `E` for this interval, in percent.
    #[inline]
    pub fn total_percent(&self) -> f64 {
        self.breakdown.total_percent()
    }

    /// Number of candidates in `category`.
    pub fn count_in(&self, category: ErrorCategory) -> usize {
        self.classifications
            .iter()
            .filter(|c| c.category == category)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tuple {
        Tuple::new(1, 1)
    }

    #[test]
    fn classify_false_positive() {
        let c = CandidateClassification::classify(t(), 5, 100, 100);
        assert_eq!(c.category, ErrorCategory::FalsePositive);
        assert_eq!(c.absolute_error(), 95);
    }

    #[test]
    fn classify_false_negative() {
        let c = CandidateClassification::classify(t(), 150, 0, 100);
        assert_eq!(c.category, ErrorCategory::FalseNegative);
        assert_eq!(c.absolute_error(), 150);
    }

    #[test]
    fn classify_neutral_positive() {
        let c = CandidateClassification::classify(t(), 150, 180, 100);
        assert_eq!(c.category, ErrorCategory::NeutralPositive);
        assert_eq!(c.absolute_error(), 30);
    }

    #[test]
    fn classify_neutral_negative() {
        let c = CandidateClassification::classify(t(), 180, 150, 100);
        assert_eq!(c.category, ErrorCategory::NeutralNegative);
        assert_eq!(c.absolute_error(), 30);
    }

    #[test]
    fn classify_exact_has_zero_error() {
        let c = CandidateClassification::classify(t(), 150, 150, 100);
        assert_eq!(c.category, ErrorCategory::Exact);
        assert_eq!(c.absolute_error(), 0);
    }

    #[test]
    #[should_panic(expected = "don't-care")]
    fn classify_rejects_dont_care() {
        CandidateClassification::classify(t(), 5, 5, 100);
    }

    #[test]
    fn hardware_below_threshold_counts_as_false_negative() {
        // A hardware count below T (possible in principle) is "Out".
        let c = CandidateClassification::classify(t(), 150, 50, 100);
        assert_eq!(c.category, ErrorCategory::FalseNegative);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = ErrorBreakdown {
            false_positive: 0.1,
            false_negative: 0.2,
            neutral_positive: 0.05,
            neutral_negative: 0.03,
        };
        assert!((b.total() - 0.38).abs() < 1e-12);
        assert!((b.total_percent() - 38.0).abs() < 1e-9);
        assert_eq!(b.component(ErrorCategory::FalsePositive), 0.1);
        assert_eq!(b.component(ErrorCategory::Exact), 0.0);
    }

    #[test]
    fn breakdown_add_and_scale() {
        let b = ErrorBreakdown {
            false_positive: 0.2,
            false_negative: 0.4,
            neutral_positive: 0.0,
            neutral_negative: 0.0,
        };
        let avg = b.add(&ErrorBreakdown::default()).scale(2.0);
        assert!((avg.false_positive - 0.1).abs() < 1e-12);
        assert!((avg.false_negative - 0.2).abs() < 1e-12);
    }

    #[test]
    fn category_labels_match_paper_legends() {
        assert_eq!(ErrorCategory::FalsePositive.to_string(), "False Positive");
        assert_eq!(ErrorCategory::NeutralNegative.label(), "Neutral Negative");
    }
}
