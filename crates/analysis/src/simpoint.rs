//! Basic-block-vector phase analysis — a miniature SimPoint.
//!
//! The paper's methodology (§5.5) fast-forwards each benchmark *"using the
//! fast forward numbers from SimPoint"* (Sherwood et al., the paper's
//! citations [16, 17]). SimPoint cuts execution into fixed intervals,
//! summarizes each as a **basic-block vector** (BBV: normalized execution
//! counts per block), clusters the vectors with k-means, and picks one
//! representative interval per cluster — the *simulation points*.
//!
//! This module reimplements that pipeline over the same event streams the
//! profilers consume (the PC component identifies the block), so the phase
//! structure Figure 6 measures indirectly can be detected explicitly:
//!
//! ```
//! use mhp_analysis::simpoint::{collect_bbvs, cluster, simulation_points};
//! use mhp_core::Tuple;
//!
//! // Two alternating phases of 1,000 events each.
//! let events = (0..6_000u64).map(|i| {
//!     let phase = (i / 1_000) % 2;
//!     Tuple::new(phase * 100 + i % 5, 0)
//! });
//! let bbvs = collect_bbvs(events, 1_000);
//! let clustering = cluster(&bbvs, 2, 20, 42);
//! let points = simulation_points(&bbvs, &clustering);
//! assert_eq!(points.len(), 2);
//! // Intervals 0,2,4 form one cluster; 1,3,5 the other.
//! assert_eq!(clustering.assignments[0], clustering.assignments[2]);
//! assert_ne!(clustering.assignments[0], clustering.assignments[1]);
//! ```

use std::collections::HashMap;

use mhp_core::Tuple;

/// A normalized basic-block vector: per-block execution fractions of one
/// interval (L1 norm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Bbv {
    weights: HashMap<u64, f64>,
}

impl Bbv {
    /// Builds a BBV from raw per-block counts.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is empty or all-zero — an interval must execute
    /// something.
    pub fn from_counts(counts: &HashMap<u64, u64>) -> Self {
        let total: u64 = counts.values().sum();
        assert!(total > 0, "an interval must contain executions");
        Bbv {
            weights: counts
                .iter()
                .map(|(&b, &c)| (b, c as f64 / total as f64))
                .collect(),
        }
    }

    /// The weight of block `block` (0 if absent).
    pub fn weight(&self, block: u64) -> f64 {
        self.weights.get(&block).copied().unwrap_or(0.0)
    }

    /// Number of distinct blocks in the vector.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` if the vector has no blocks (never true for a
    /// constructed vector).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Manhattan (L1) distance to another vector, in `[0, 2]`.
    pub fn manhattan(&self, other: &Bbv) -> f64 {
        let mut d = 0.0;
        for (&b, &w) in &self.weights {
            d += (w - other.weight(b)).abs();
        }
        for (&b, &w) in &other.weights {
            if !self.weights.contains_key(&b) {
                d += w;
            }
        }
        d
    }

    /// The (unnormalized) mean of several vectors — a k-means centroid.
    fn centroid(vectors: &[&Bbv]) -> Bbv {
        assert!(!vectors.is_empty(), "a centroid needs members");
        let mut weights: HashMap<u64, f64> = HashMap::new();
        for v in vectors {
            for (&b, &w) in &v.weights {
                *weights.entry(b).or_insert(0.0) += w;
            }
        }
        let n = vectors.len() as f64;
        for w in weights.values_mut() {
            *w /= n;
        }
        Bbv { weights }
    }
}

/// Cuts an event stream into `interval_len`-event intervals and builds one
/// BBV per *complete* interval (trailing events are dropped, as in the
/// profilers).
///
/// # Panics
///
/// Panics if `interval_len == 0`.
pub fn collect_bbvs(events: impl IntoIterator<Item = Tuple>, interval_len: u64) -> Vec<Bbv> {
    assert!(interval_len > 0, "interval length must be positive");
    let mut bbvs = Vec::new();
    let mut counts: HashMap<u64, u64> = HashMap::new();
    let mut n = 0u64;
    for t in events {
        *counts.entry(t.pc().as_u64()).or_insert(0) += 1;
        n += 1;
        if n == interval_len {
            bbvs.push(Bbv::from_counts(&counts));
            counts.clear();
            n = 0;
        }
    }
    bbvs
}

/// The result of k-means over a BBV sequence.
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Cluster index per interval.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Bbv>,
    /// Mean distance of intervals to their centroid (clustering quality).
    pub mean_distance: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Number of intervals assigned to cluster `c`.
    pub fn cluster_size(&self, c: usize) -> usize {
        self.assignments.iter().filter(|&&a| a == c).count()
    }
}

/// Deterministic k-means over BBVs: farthest-point initialization, at most
/// `iters` Lloyd iterations, Manhattan distance (as in SimPoint).
///
/// If there are fewer vectors than `k`, the effective `k` shrinks to the
/// vector count.
///
/// # Panics
///
/// Panics if `bbvs` is empty or `k == 0`.
pub fn cluster(bbvs: &[Bbv], k: usize, iters: usize, seed: u64) -> Clustering {
    assert!(!bbvs.is_empty(), "need at least one interval");
    assert!(k > 0, "need at least one cluster");
    let k = k.min(bbvs.len());

    // Farthest-point init: first centroid by seeded pick, then repeatedly
    // the vector farthest from its nearest centroid.
    let mut centroids: Vec<Bbv> = Vec::with_capacity(k);
    centroids.push(bbvs[(seed % bbvs.len() as u64) as usize].clone());
    while centroids.len() < k {
        let (far_idx, _) = bbvs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let d = centroids
                    .iter()
                    .map(|c| v.manhattan(c))
                    .fold(f64::INFINITY, f64::min);
                (i, d)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("bbvs is non-empty");
        centroids.push(bbvs[far_idx].clone());
    }

    let mut assignments = vec![0usize; bbvs.len()];
    for _ in 0..iters {
        // Assign.
        let mut changed = false;
        for (i, v) in bbvs.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| v.manhattan(a.1).total_cmp(&v.manhattan(b.1)))
                .map(|(c, _)| c)
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Bbv> = bbvs
                .iter()
                .zip(assignments.iter())
                .filter(|(_, &a)| a == c)
                .map(|(v, _)| v)
                .collect();
            if !members.is_empty() {
                *centroid = Bbv::centroid(&members);
            }
        }
        if !changed {
            break;
        }
    }

    let mean_distance = bbvs
        .iter()
        .zip(assignments.iter())
        .map(|(v, &a)| v.manhattan(&centroids[a]))
        .sum::<f64>()
        / bbvs.len() as f64;

    Clustering {
        assignments,
        centroids,
        mean_distance,
    }
}

/// The simulation points: for each cluster, the index of the interval
/// closest to its centroid (clusters with no members are skipped). Sorted
/// ascending.
pub fn simulation_points(bbvs: &[Bbv], clustering: &Clustering) -> Vec<usize> {
    let mut points = Vec::new();
    for c in 0..clustering.k() {
        let best = bbvs
            .iter()
            .enumerate()
            .zip(clustering.assignments.iter())
            .filter(|(_, &a)| a == c)
            .min_by(|((_, va), _), ((_, vb), _)| {
                va.manhattan(&clustering.centroids[c])
                    .total_cmp(&vb.manhattan(&clustering.centroids[c]))
            })
            .map(|((i, _), _)| i);
        if let Some(i) = best {
            points.push(i);
        }
    }
    points.sort_unstable();
    points
}

/// Picks the best `k` in `1..=max_k` by the "knee" heuristic: the smallest
/// `k` whose mean distance is within `tolerance` of the best achievable
/// (SimPoint's BIC criterion, simplified).
pub fn choose_k(bbvs: &[Bbv], max_k: usize, iters: usize, seed: u64, tolerance: f64) -> usize {
    assert!(max_k >= 1, "need at least one cluster");
    let scores: Vec<f64> = (1..=max_k)
        .map(|k| cluster(bbvs, k, iters, seed).mean_distance)
        .collect();
    let best = scores.iter().copied().fold(f64::INFINITY, f64::min);
    scores
        .iter()
        .position(|&s| s <= best + tolerance)
        .map(|i| i + 1)
        .unwrap_or(max_k)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stream with `phases` phases of `per_phase` events, each phase
    /// touching a disjoint block set.
    fn phased_stream(phases: u64, per_phase: u64, repeats: u64) -> Vec<Tuple> {
        (0..phases * per_phase * repeats)
            .map(|i| {
                let phase = (i / per_phase) % phases;
                Tuple::new(phase * 1_000 + i % 7, 0)
            })
            .collect()
    }

    #[test]
    fn bbv_weights_are_normalized() {
        let mut counts = HashMap::new();
        counts.insert(1u64, 3u64);
        counts.insert(2, 1);
        let v = Bbv::from_counts(&counts);
        assert!((v.weight(1) - 0.75).abs() < 1e-12);
        assert!((v.weight(2) - 0.25).abs() < 1e-12);
        assert_eq!(v.weight(99), 0.0);
    }

    #[test]
    fn manhattan_distance_properties() {
        let mut a = HashMap::new();
        a.insert(1u64, 1u64);
        let mut b = HashMap::new();
        b.insert(2u64, 1u64);
        let va = Bbv::from_counts(&a);
        let vb = Bbv::from_counts(&b);
        assert_eq!(va.manhattan(&va), 0.0);
        assert!(
            (va.manhattan(&vb) - 2.0).abs() < 1e-12,
            "disjoint => max distance"
        );
        assert!(
            (va.manhattan(&vb) - vb.manhattan(&va)).abs() < 1e-12,
            "symmetric"
        );
    }

    #[test]
    fn collect_bbvs_drops_trailing_partial_interval() {
        let events = (0..25u64).map(|i| Tuple::new(i % 3, 0));
        let bbvs = collect_bbvs(events, 10);
        assert_eq!(bbvs.len(), 2);
    }

    #[test]
    fn two_phase_stream_clusters_into_two_phases() {
        let events = phased_stream(2, 1_000, 3);
        let bbvs = collect_bbvs(events, 1_000);
        let clustering = cluster(&bbvs, 2, 20, 1);
        // Even intervals belong to phase 0, odd to phase 1.
        for i in (0..bbvs.len()).step_by(2) {
            assert_eq!(clustering.assignments[i], clustering.assignments[0]);
        }
        for i in (1..bbvs.len()).step_by(2) {
            assert_eq!(clustering.assignments[i], clustering.assignments[1]);
        }
        assert_ne!(clustering.assignments[0], clustering.assignments[1]);
        assert!(clustering.mean_distance < 0.01, "tight clusters");
    }

    #[test]
    fn simulation_points_pick_one_interval_per_phase() {
        let events = phased_stream(3, 500, 2);
        let bbvs = collect_bbvs(events, 500);
        let clustering = cluster(&bbvs, 3, 20, 5);
        let points = simulation_points(&bbvs, &clustering);
        assert_eq!(points.len(), 3);
        // The three points must come from three different phases.
        let phases: std::collections::HashSet<usize> = points.iter().map(|&i| i % 3).collect();
        assert_eq!(phases.len(), 3);
    }

    #[test]
    fn clustering_is_deterministic() {
        let events = phased_stream(2, 500, 4);
        let bbvs = collect_bbvs(events, 500);
        let a = cluster(&bbvs, 2, 20, 9);
        let b = cluster(&bbvs, 2, 20, 9);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_shrinks_to_the_interval_count() {
        let events = (0..1_000u64).map(|i| Tuple::new(i % 3, 0));
        let bbvs = collect_bbvs(events, 1_000);
        let clustering = cluster(&bbvs, 10, 5, 1);
        assert_eq!(clustering.k(), 1);
        assert_eq!(clustering.assignments, vec![0]);
    }

    #[test]
    fn choose_k_finds_the_phase_count() {
        let events = phased_stream(3, 500, 3);
        let bbvs = collect_bbvs(events, 500);
        let k = choose_k(&bbvs, 6, 20, 2, 0.05);
        assert_eq!(k, 3, "three real phases");
    }

    #[test]
    fn single_phase_stream_needs_one_cluster() {
        let events = (0..5_000u64).map(|i| Tuple::new(i % 11, 0));
        let bbvs = collect_bbvs(events, 500);
        let k = choose_k(&bbvs, 4, 20, 3, 0.05);
        assert_eq!(k, 1);
    }

    #[test]
    fn cluster_sizes_sum_to_interval_count() {
        let events = phased_stream(2, 500, 5);
        let bbvs = collect_bbvs(events, 500);
        let clustering = cluster(&bbvs, 2, 20, 7);
        let total: usize = (0..clustering.k())
            .map(|c| clustering.cluster_size(c))
            .sum();
        assert_eq!(total, bbvs.len());
    }

    #[test]
    #[should_panic(expected = "at least one interval")]
    fn empty_bbvs_panic() {
        cluster(&[], 2, 5, 1);
    }
}
