//! Candidate variation between consecutive intervals (Figure 6, §5.6.1).
//!
//! The paper asks: if an optimizer uses interval *k*'s accumulator contents
//! to optimize interval *k+1*, how stable are the candidates? Figure 6 plots,
//! per benchmark, the fraction of intervals experiencing less than a given
//! percentage of candidate change.
//!
//! We quantify the change between consecutive candidate sets `A` (previous)
//! and `B` (current) as the Jaccard distance in percent:
//! `100 · (1 − |A ∩ B| / |A ∪ B|)`, with the convention that two empty sets
//! have 0 % variation and an empty-to-nonempty transition has 100 %.

use std::collections::HashSet;

use mhp_core::Tuple;

/// Percentage of candidate change between a previous and current candidate
/// set (Jaccard distance × 100).
///
/// # Examples
///
/// ```
/// use mhp_analysis::variation_percent;
/// use mhp_core::Tuple;
/// let a = vec![Tuple::new(1, 1), Tuple::new(2, 2)];
/// let b = vec![Tuple::new(2, 2), Tuple::new(3, 3)];
/// // Union 3, intersection 1 -> 66.7% change.
/// let v = variation_percent(a.iter().copied(), b.iter().copied());
/// assert!((v - 66.666).abs() < 0.01);
/// ```
pub fn variation_percent(
    previous: impl IntoIterator<Item = Tuple>,
    current: impl IntoIterator<Item = Tuple>,
) -> f64 {
    let prev: HashSet<Tuple> = previous.into_iter().collect();
    let cur: HashSet<Tuple> = current.into_iter().collect();
    if prev.is_empty() && cur.is_empty() {
        return 0.0;
    }
    let intersection = prev.intersection(&cur).count() as f64;
    let union = prev.union(&cur).count() as f64;
    100.0 * (1.0 - intersection / union)
}

/// One point of a Figure 6 curve: `percent_of_execution` % of intervals saw
/// less than `variation` % change from their predecessor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationPoint {
    /// X-axis: cumulative percentage of program execution (intervals).
    pub percent_of_execution: f64,
    /// Y-axis: candidate variation in percent.
    pub variation: f64,
}

/// Converts a sequence of per-transition variations into the cumulative
/// curve of Figure 6: sorted ascending, point *i* states that
/// `(i+1)/n · 100` % of intervals experienced at most `variation[i]` %
/// change.
///
/// Returns an empty vector for an empty input.
///
/// # Examples
///
/// ```
/// use mhp_analysis::variation_cdf;
/// let curve = variation_cdf(&[50.0, 10.0, 30.0, 20.0]);
/// assert_eq!(curve.len(), 4);
/// assert_eq!(curve[0].variation, 10.0);
/// assert_eq!(curve[3].variation, 50.0);
/// assert!((curve[1].percent_of_execution - 50.0).abs() < 1e-9);
/// ```
pub fn variation_cdf(variations: &[f64]) -> Vec<VariationPoint> {
    let mut sorted: Vec<f64> = variations.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, variation)| VariationPoint {
            percent_of_execution: (i + 1) as f64 / n * 100.0,
            variation,
        })
        .collect()
}

/// Samples a [`variation_cdf`] curve at fixed x positions (percent of
/// execution), returning the variation not exceeded at each position —
/// convenient for fixed-column text output.
pub fn variation_at_percentiles(variations: &[f64], percentiles: &[f64]) -> Vec<f64> {
    if variations.is_empty() {
        return percentiles.iter().map(|_| 0.0).collect();
    }
    let mut sorted: Vec<f64> = variations.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentiles
        .iter()
        .map(|&p| {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            let idx = rank.clamp(1, sorted.len()) - 1;
            sorted[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Tuple {
        Tuple::new(n, n)
    }

    #[test]
    fn identical_sets_have_zero_variation() {
        let v = variation_percent([t(1), t(2)], [t(2), t(1)]);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn disjoint_sets_have_full_variation() {
        let v = variation_percent([t(1)], [t(2)]);
        assert_eq!(v, 100.0);
    }

    #[test]
    fn empty_to_empty_is_zero() {
        assert_eq!(variation_percent([], []), 0.0);
    }

    #[test]
    fn empty_to_nonempty_is_full_change() {
        assert_eq!(variation_percent([], [t(1)]), 100.0);
        assert_eq!(variation_percent([t(1)], []), 100.0);
    }

    #[test]
    fn partial_overlap_is_jaccard_distance() {
        // |A∩B| = 2, |A∪B| = 4 -> 50%
        let v = variation_percent([t(1), t(2), t(3)], [t(2), t(3), t(4)]);
        assert!((v - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_sorted_and_spans_percentiles() {
        let curve = variation_cdf(&[80.0, 20.0]);
        assert_eq!(curve[0].variation, 20.0);
        assert!((curve[0].percent_of_execution - 50.0).abs() < 1e-9);
        assert_eq!(curve[1].variation, 80.0);
        assert!((curve[1].percent_of_execution - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cdf_of_empty_input_is_empty() {
        assert!(variation_cdf(&[]).is_empty());
    }

    #[test]
    fn percentile_sampling_matches_sorted_values() {
        let vals = vec![10.0, 20.0, 30.0, 40.0];
        let sampled = variation_at_percentiles(&vals, &[25.0, 50.0, 100.0]);
        assert_eq!(sampled, vec![10.0, 20.0, 40.0]);
    }

    #[test]
    fn percentile_sampling_of_empty_input_is_zero() {
        assert_eq!(variation_at_percentiles(&[], &[50.0]), vec![0.0]);
    }
}
