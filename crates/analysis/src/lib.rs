//! # mhp-analysis — error metrics and experiment analysis
//!
//! Implements the evaluation methodology of *"Catching Accurate Profiles in
//! Hardware"* (§5.5): per-interval comparison of a hardware profiler against
//! the [`PerfectProfiler`](mhp_core::PerfectProfiler), the four-way error
//! classification of Figure 3 (false/neutral × positive/negative), the
//! weighted error rate of Equation 1, per-interval error series (Figure 13)
//! and the candidate-variation analysis of Figure 6.
//!
//! The typical flow:
//!
//! ```
//! use mhp_analysis::run_comparison;
//! use mhp_core::{IntervalConfig, MultiHashConfig, MultiHashProfiler, Tuple};
//!
//! # fn main() -> Result<(), mhp_core::ConfigError> {
//! let interval = IntervalConfig::new(1_000, 0.01)?;
//! let mut hw = MultiHashProfiler::new(interval, MultiHashConfig::best(), 1)?;
//! let events = (0..10_000u64).map(|i| mhp_core::Tuple::new(i % 50, 0));
//! let result = run_comparison(&mut hw, events);
//! assert_eq!(result.series().len(), 10);
//! assert!(result.series().mean_total_percent() < 1.0); // easy workload
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod adaptive;
pub mod compare;
pub mod metrics;
pub mod report;
pub mod series;
pub mod simpoint;
pub mod spectrum;
pub mod stats;
pub mod variation;

pub use adaptive::{AdaptivePolicy, AdaptiveProfiler};
pub use compare::compare_interval;
pub use metrics::{CandidateClassification, ErrorBreakdown, ErrorCategory, IntervalError};
pub use series::ErrorSeries;
pub use spectrum::FrequencySpectrum;
pub use stats::{run_comparison, run_exact_stats, ComparisonResult, ExactStats};
pub use variation::{variation_at_percentiles, variation_cdf, variation_percent};
