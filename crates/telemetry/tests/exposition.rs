//! Golden test for the Prometheus text-exposition renderer: a registry
//! with known contents must render byte-for-byte the expected document.

use mhp_telemetry::Registry;

#[test]
fn exposition_format_golden() {
    let registry = Registry::new();
    let requests = registry.counter("server_requests_total");
    let active = registry.gauge("server_connections_active");
    let depth0 = registry.gauge_with_labels("engine_queue_depth", &[("shard", "0")]);
    let depth1 = registry.gauge_with_labels("engine_queue_depth", &[("shard", "1")]);
    let latency = registry.histogram("server_request_latency_us");

    requests.add(42);
    active.set(3);
    depth0.set(7);
    depth1.set(0);
    latency.record(0); // bucket 0, le="0"
    latency.record(1); // bucket 1, le="1"
    latency.record(3); // bucket 2, le="3"
    latency.record(3);
    latency.record(1_000); // bucket 10, le="1023"

    let expected = "\
# TYPE server_requests_total counter
server_requests_total 42
# TYPE server_connections_active gauge
server_connections_active 3
# TYPE engine_queue_depth gauge
engine_queue_depth{shard=\"0\"} 7
engine_queue_depth{shard=\"1\"} 0
# TYPE server_request_latency_us histogram
server_request_latency_us_bucket{le=\"0\"} 1
server_request_latency_us_bucket{le=\"1\"} 2
server_request_latency_us_bucket{le=\"3\"} 4
server_request_latency_us_bucket{le=\"1023\"} 5
server_request_latency_us_bucket{le=\"+Inf\"} 5
server_request_latency_us_sum 1007
server_request_latency_us_count 5
";
    assert_eq!(registry.render_prometheus(), expected);
}

#[test]
fn every_type_line_precedes_its_samples_and_appears_once() {
    let registry = Registry::new();
    registry.counter("a_total").incr();
    registry.gauge_with_labels("b", &[("k", "x")]).set(1);
    registry.gauge_with_labels("b", &[("k", "y")]).set(2);
    registry.histogram("c_us").record(5);

    let text = registry.render_prometheus();
    for name in ["a_total", "b", "c_us"] {
        let type_line = text
            .lines()
            .position(|l| l.starts_with(&format!("# TYPE {name} ")))
            .unwrap_or_else(|| panic!("missing # TYPE for {name}"));
        let first_sample = text
            .lines()
            .position(|l| l.starts_with(name))
            .unwrap_or_else(|| panic!("missing sample for {name}"));
        assert!(type_line < first_sample, "{name}: TYPE after samples");
    }
    assert_eq!(text.matches("# TYPE b gauge").count(), 1);
}
