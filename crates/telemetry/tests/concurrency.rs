//! Concurrent recording: many threads hammering shared counters, gauges
//! and histograms through registry handles must lose no updates.

use mhp_telemetry::{Registry, HISTOGRAM_BUCKETS};

const THREADS: usize = 8;
const OPS: u64 = 10_000;

#[test]
fn concurrent_counter_and_histogram_recording_loses_nothing() {
    let registry = Registry::new();
    let counter = registry.counter("ops_total");
    let gauge = registry.gauge("inflight");
    let histogram = registry.histogram("value_us");

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let gauge = gauge.clone();
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..OPS {
                    gauge.incr();
                    counter.incr();
                    // Spread values across many buckets deterministically.
                    histogram.record((t as u64 * OPS + i) % 4_096);
                    gauge.decr();
                }
            });
        }
    });

    let expected = THREADS as u64 * OPS;
    assert_eq!(counter.get(), expected);
    assert_eq!(gauge.get(), 0, "every incr paired with a decr");
    assert_eq!(histogram.count(), expected);
    let bucket_total: u64 = histogram.bucket_counts().iter().sum();
    assert_eq!(bucket_total, expected, "no bucket update lost");
    // The sum is exactly the sum of what the threads recorded.
    let per_thread: u64 = (0..OPS).map(|i| i % 4_096).sum::<u64>();
    let full: u64 = (0..THREADS as u64)
        .map(|t| (0..OPS).map(|i| (t * OPS + i) % 4_096).sum::<u64>())
        .sum();
    assert!(full >= per_thread);
    assert_eq!(histogram.sum(), full);
    assert_eq!(histogram.bucket_counts().len(), HISTOGRAM_BUCKETS);
}

#[test]
fn concurrent_registration_of_the_same_name_shares_one_metric() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                let counter = registry.counter("shared_total");
                for _ in 0..OPS {
                    counter.incr();
                }
            });
        }
    });
    assert_eq!(registry.counter("shared_total").get(), THREADS as u64 * OPS);
    // Exactly one series rendered.
    let text = registry.render_prometheus();
    let samples = text
        .lines()
        .filter(|l| l.starts_with("shared_total "))
        .count();
    assert_eq!(samples, 1);
}
