//! Named metrics: counters, gauges, and histograms registered under a
//! [`Registry`] and rendered as Prometheus text exposition or one-line
//! JSON snapshots.
//!
//! Registration takes a short-lived lock (it happens at construction
//! time, not on the hot path); the handles it returns are lock-free and
//! cheap to clone. The same `(name, labels)` pair always resolves to the
//! same underlying metric, so independent components can share a series
//! by agreeing on its name.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::histogram::{Histogram, HISTOGRAM_BUCKETS};

/// A monotonically increasing counter. Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a free-standing counter at zero (registry-less use).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level that can move both ways. Cloning shares the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a free-standing gauge at zero (registry-less use).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (wrapping, like the atomic it is).
    pub fn decr(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The kind of a registered metric; determines its `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Goes up and down.
    Gauge,
    /// Log₂-bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum MetricValue {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl MetricValue {
    fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

#[derive(Debug)]
struct MetricEntry {
    name: String,
    labels: Vec<(String, String)>,
    value: MetricValue,
}

/// A named collection of metrics, shared by cloning.
///
/// All registration methods are *get-or-register*: asking for an existing
/// `(name, labels)` pair returns a handle to the same metric.
///
/// # Panics
///
/// Registering a `(name, labels)` pair that already exists with a
/// *different* kind panics — that is a naming bug at the call site, not a
/// runtime condition.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: Arc<Mutex<Vec<MetricEntry>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_register(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> MetricValue,
    ) -> MetricValue {
        let mut entries = self.entries.lock().expect("registry lock poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && labels_eq(&e.labels, labels))
        {
            let value = entry.value.clone();
            let wanted = make();
            assert!(
                value.kind() == wanted.kind(),
                "metric {name:?} already registered as a {}, requested as a {}",
                value.kind().as_str(),
                wanted.kind().as_str(),
            );
            return value;
        }
        let value = make();
        entries.push(MetricEntry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value: value.clone(),
        });
        value
    }

    /// A counter named `name` with no labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with_labels(name, &[])
    }

    /// A counter named `name` with the given label set.
    pub fn counter_with_labels(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_register(name, labels, || MetricValue::Counter(Counter::new())) {
            MetricValue::Counter(c) => c,
            _ => unreachable!("kind checked in get_or_register"),
        }
    }

    /// A gauge named `name` with no labels.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with_labels(name, &[])
    }

    /// A gauge named `name` with the given label set.
    pub fn gauge_with_labels(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_register(name, labels, || MetricValue::Gauge(Gauge::new())) {
            MetricValue::Gauge(g) => g,
            _ => unreachable!("kind checked in get_or_register"),
        }
    }

    /// A histogram named `name` with no labels.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_labels(name, &[])
    }

    /// A histogram named `name` with the given label set.
    pub fn histogram_with_labels(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_register(name, labels, || MetricValue::Histogram(Histogram::new())) {
            MetricValue::Histogram(h) => h,
            _ => unreachable!("kind checked in get_or_register"),
        }
    }

    /// Renders every registered metric in Prometheus text-exposition
    /// format: one `# TYPE` line per metric name (names grouped in
    /// first-registration order), `name{labels} value` sample lines, and
    /// for histograms the cumulative `_bucket{le="..."}` series (empty
    /// buckets elided, `+Inf` always present) plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("registry lock poisoned");
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for entry in entries.iter() {
            if !typed.iter().any(|&n| n == entry.name) {
                typed.push(&entry.name);
                let _ = writeln!(out, "# TYPE {} {}", entry.name, entry.value.kind().as_str());
            }
            match &entry.value {
                MetricValue::Counter(c) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        entry.name,
                        render_labels(&entry.labels, None),
                        c.get()
                    );
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        entry.name,
                        render_labels(&entry.labels, None),
                        g.get()
                    );
                }
                MetricValue::Histogram(h) => {
                    let buckets = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (i, &n) in buckets.iter().enumerate() {
                        cumulative += n;
                        let last = i == HISTOGRAM_BUCKETS - 1;
                        if n == 0 && !last {
                            continue;
                        }
                        let le = Histogram::bucket_le(i);
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            entry.name,
                            render_labels(&entry.labels, Some(&le)),
                            cumulative
                        );
                    }
                    let plain = render_labels(&entry.labels, None);
                    let _ = writeln!(out, "{}_sum{} {}", entry.name, plain, h.sum());
                    let _ = writeln!(out, "{}_count{} {}", entry.name, plain, h.count());
                }
            }
        }
        out
    }

    /// Renders every registered metric as one line of JSON, suitable for
    /// appending to a JSONL file: counters and gauges as `series: value`
    /// maps, histograms as `{count, sum, p50, p90, p99}` objects, plus a
    /// `ts_ms` wall-clock timestamp. Labeled series render their key as
    /// `name{k="v"}`.
    pub fn snapshot_json(&self) -> String {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let entries = self.entries.lock().expect("registry lock poisoned");
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for entry in entries.iter() {
            let key = format!("{}{}", entry.name, render_labels(&entry.labels, None));
            match &entry.value {
                MetricValue::Counter(c) => {
                    append_json_field(&mut counters, &key, &c.get().to_string());
                }
                MetricValue::Gauge(g) => {
                    append_json_field(&mut gauges, &key, &g.get().to_string());
                }
                MetricValue::Histogram(h) => {
                    let value = format!(
                        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                        h.count(),
                        h.sum(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99)
                    );
                    append_json_field(&mut histograms, &key, &value);
                }
            }
        }
        format!(
            "{{\"ts_ms\":{ts_ms},\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\
             \"histograms\":{{{histograms}}}}}"
        )
    }
}

/// A family of counters sharing one name, split by the value of a single
/// label — the shape per-tenant metrics take (`name{tenant="..."}`).
///
/// Each distinct label value is its own registered series, so the whole
/// family appears in [`Registry::render_prometheus`] under one `# TYPE`
/// line. Handles are cached per label value: the first use of a value
/// registers the series (registry scan under the registry lock), every
/// later use is one small `HashMap` lookup under the family's own lock
/// plus a relaxed atomic add — cheap enough for per-chunk accounting on
/// the ingest path.
///
/// # Examples
///
/// ```
/// use mhp_telemetry::{CounterVec, Registry};
/// let registry = Registry::new();
/// let ingested = CounterVec::new(&registry, "bytes_ingested_total", "tenant");
/// ingested.add("acme", 512);
/// ingested.incr("acme");
/// assert_eq!(ingested.with_label("acme").get(), 513);
/// let text = registry.render_prometheus();
/// assert!(text.contains("bytes_ingested_total{tenant=\"acme\"} 513"));
/// ```
#[derive(Debug, Clone)]
pub struct CounterVec {
    registry: Registry,
    name: String,
    label_key: String,
    handles: Arc<Mutex<std::collections::HashMap<String, Counter>>>,
}

impl CounterVec {
    /// Creates a counter family named `name`, keyed by `label_key`.
    ///
    /// No series is registered until a label value is first used, so an
    /// unused family adds nothing to the exposition.
    pub fn new(registry: &Registry, name: &str, label_key: &str) -> Self {
        CounterVec {
            registry: registry.clone(),
            name: name.to_string(),
            label_key: label_key.to_string(),
            handles: Arc::new(Mutex::new(std::collections::HashMap::new())),
        }
    }

    /// The counter for one label value, registering its series on first use.
    pub fn with_label(&self, value: &str) -> Counter {
        let mut handles = self.handles.lock().expect("counter-vec lock poisoned");
        if let Some(c) = handles.get(value) {
            return c.clone();
        }
        let counter = self
            .registry
            .counter_with_labels(&self.name, &[(&self.label_key, value)]);
        handles.insert(value.to_string(), counter.clone());
        counter
    }

    /// Adds one to the series for `value`.
    pub fn incr(&self, value: &str) {
        self.with_label(value).incr();
    }

    /// Adds `n` to the series for `value`.
    pub fn add(&self, value: &str, n: u64) {
        self.with_label(value).add(n);
    }
}

fn labels_eq(registered: &[(String, String)], wanted: &[(&str, &str)]) -> bool {
    registered.len() == wanted.len()
        && registered
            .iter()
            .zip(wanted.iter())
            .all(|((rk, rv), &(wk, wv))| rk == wk && rv == wv)
}

/// Renders a `{k="v",...}` label block, optionally with a trailing
/// `le="..."` (for histogram buckets); empty label sets render as nothing.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "le=\"{le}\"");
    }
    out.push('}');
    out
}

/// Escapes a label value per the Prometheus text format: backslash,
/// double-quote, and newline.
fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn append_json_field(out: &mut String, key: &str, value: &str) {
    if !out.is_empty() {
        out.push(',');
    }
    let _ = write!(out, "\"{}\":{}", escape_json_key(key), value);
}

/// Escapes a JSON object key (metric names and label values are tame, but
/// label values may contain quotes or backslashes).
fn escape_json_key(key: &str) -> String {
    let mut out = String::with_capacity(key.len());
    for c in key.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Parses one `key value` line out of plain rendered stats text — the
/// legacy `stats` query format and a test-side convenience.
pub fn stat_value(stats_text: &str, key: &str) -> Option<u64> {
    stats_text.lines().find_map(|line| {
        let (k, v) = line.split_once(' ')?;
        (k == key).then(|| v.parse().ok())?
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_metric() {
        let registry = Registry::new();
        let a = registry.counter("requests_total");
        let b = registry.counter("requests_total");
        a.incr();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let registry = Registry::new();
        let s0 = registry.gauge_with_labels("queue_depth", &[("shard", "0")]);
        let s1 = registry.gauge_with_labels("queue_depth", &[("shard", "1")]);
        s0.set(5);
        s1.set(9);
        assert_eq!(s0.get(), 5);
        assert_eq!(s1.get(), 9);
        let text = registry.render_prometheus();
        assert!(text.contains("queue_depth{shard=\"0\"} 5"));
        assert!(text.contains("queue_depth{shard=\"1\"} 9"));
        assert_eq!(text.matches("# TYPE queue_depth gauge").count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_ends_at_inf() {
        let registry = Registry::new();
        let h = registry.histogram("latency_us");
        h.record(0); // bucket 0, le="0"
        h.record(3); // bucket 2, le="3"
        h.record(3);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE latency_us histogram"));
        assert!(text.contains("latency_us_bucket{le=\"0\"} 1"));
        assert!(text.contains("latency_us_bucket{le=\"3\"} 3"));
        assert!(text.contains("latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("latency_us_sum 6"));
        assert!(text.contains("latency_us_count 3"));
        // le="1" bucket is empty and elided.
        assert!(!text.contains("le=\"1\"}"));
    }

    #[test]
    fn snapshot_json_is_one_line_with_every_section() {
        let registry = Registry::new();
        registry.counter("a_total").add(7);
        registry.gauge("b").set(2);
        registry.histogram("c_us").record(100);
        let json = registry.snapshot_json();
        assert_eq!(json.lines().count(), 1);
        assert!(json.contains("\"a_total\":7"));
        assert!(json.contains("\"b\":2"));
        assert!(json.contains("\"c_us\":{\"count\":1,\"sum\":100,"));
        assert!(json.starts_with("{\"ts_ms\":"));
        assert!(json.ends_with("}}"));
    }

    /// Golden test for the per-tenant exposition shape: one `# TYPE` line
    /// per family, series in first-use order, label values escaped. The
    /// aggregation tier's quota/eviction counters render exactly this way,
    /// so any drift here is a monitoring-breaking change.
    #[test]
    fn tenant_labeled_exposition_matches_golden() {
        let registry = Registry::new();
        let opened = CounterVec::new(&registry, "server_tenant_sessions_opened_total", "tenant");
        let rejected = CounterVec::new(&registry, "server_tenant_quota_rejections_total", "tenant");
        opened.add("acme", 3);
        opened.incr("bet\"a");
        rejected.incr("acme");
        registry.gauge("server_connections").set(2);
        let golden = "\
# TYPE server_tenant_sessions_opened_total counter
server_tenant_sessions_opened_total{tenant=\"acme\"} 3
server_tenant_sessions_opened_total{tenant=\"bet\\\"a\"} 1
# TYPE server_tenant_quota_rejections_total counter
server_tenant_quota_rejections_total{tenant=\"acme\"} 1
# TYPE server_connections gauge
server_connections 2
";
        assert_eq!(registry.render_prometheus(), golden);
    }

    #[test]
    fn counter_vec_caches_and_shares_series() {
        let registry = Registry::new();
        let vec_a = CounterVec::new(&registry, "t_total", "tenant");
        let vec_b = CounterVec::new(&registry, "t_total", "tenant");
        vec_a.add("x", 5);
        vec_b.incr("x");
        // Two independently-created families resolve to the same series.
        assert_eq!(vec_a.with_label("x").get(), 6);
        // Clones share the handle cache.
        vec_a.clone().incr("x");
        assert_eq!(vec_b.with_label("x").get(), 7);
    }

    #[test]
    fn stat_value_parses_key_value_lines() {
        let text = "requests 12\nerrors 0\n";
        assert_eq!(stat_value(text, "requests"), Some(12));
        assert_eq!(stat_value(text, "errors"), Some(0));
        assert_eq!(stat_value(text, "nope"), None);
    }
}
