//! A fixed-bucket log₂ histogram with wait-free recording.
//!
//! Generalized out of the original `mhp-server` latency histogram: values
//! are plain `u64`s (microseconds, bytes, batch sizes — the metric name
//! carries the unit), recording is three relaxed `fetch_add`s, and
//! quantile estimates are upper bounds from the bucket boundary — the
//! usual trade for never allocating or locking on the record path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Power-of-two histogram buckets: bucket `i` (for `i >= 1`) counts values
/// `v` with `2^(i-1) <= v < 2^i`; bucket 0 counts exactly the value 0.
/// 40 buckets cover up to `2^39 - 1` exactly, with everything larger
/// folded into the last bucket — in microseconds that is ~6 days, far
/// beyond any realistic latency.
pub const HISTOGRAM_BUCKETS: usize = 40;

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HistogramCore {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log₂ histogram of `u64` values.
///
/// `Histogram` is a cheap cloneable handle: clones share the same buckets,
/// so the handle a [`Registry`](crate::Registry) holds for rendering and
/// the handle a hot loop records into are the same histogram.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            core: Arc::new(HistogramCore::new()),
        }
    }

    /// The bucket index a value lands in.
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        let core = &*self.core;
        core.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as whole microseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_micros()).unwrap_or(u64::MAX));
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the upper
    /// boundary of the bucket holding that rank. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.core.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket i holds values in [2^(i-1), 2^i); report the upper
                // boundary. Bucket 0 is exactly the value 0.
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// A point-in-time copy of the per-bucket counts (index = bucket).
    ///
    /// Concurrent recording may make the copy lag `count()` by a few
    /// values, which is fine for exposition.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(self.core.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    /// The inclusive upper bound of bucket `i` as a Prometheus `le` label
    /// value: `"0"` for bucket 0, `2^i - 1` for the middle buckets, and
    /// `"+Inf"` for the last (overflow) bucket.
    pub fn bucket_le(i: usize) -> String {
        if i == 0 {
            "0".to_string()
        } else if i >= HISTOGRAM_BUCKETS - 1 {
            "+Inf".to_string()
        } else {
            ((1u64 << i) - 1).to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_counts_and_sums() {
        let h = Histogram::new();
        h.record(10);
        h.record(100);
        h.record_duration(Duration::from_micros(1_000));
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1_110);
    }

    #[test]
    fn quantiles_are_upper_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(3); // bucket 2: [2, 4)
        }
        h.record(1_000_000); // ~2^20
        assert_eq!(h.quantile(0.50), 4);
        assert_eq!(h.quantile(0.90), 4);
        assert!(h.quantile(1.0) >= 1_000_000);
        assert_eq!(Histogram::new().quantile(0.5), 0, "empty histogram");
    }

    #[test]
    fn zero_lands_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.bucket_counts()[0], 1);
    }

    #[test]
    fn clones_share_the_same_buckets() {
        let h = Histogram::new();
        let alias = h.clone();
        alias.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 7);
    }

    #[test]
    fn huge_values_fold_into_the_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket_counts()[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.quantile(1.0), 1u64 << (HISTOGRAM_BUCKETS - 1));
    }

    #[test]
    fn bucket_les_are_inclusive_upper_bounds() {
        assert_eq!(Histogram::bucket_le(0), "0");
        assert_eq!(Histogram::bucket_le(1), "1");
        assert_eq!(Histogram::bucket_le(2), "3");
        assert_eq!(Histogram::bucket_le(10), "1023");
        assert_eq!(Histogram::bucket_le(HISTOGRAM_BUCKETS - 1), "+Inf");
    }
}
