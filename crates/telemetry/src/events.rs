//! A bounded ring-buffer structured event log.
//!
//! Spans record a name, start/end timestamps (microseconds since the log
//! was created), and a small set of `key = value` fields. Recording never
//! blocks: each ring slot is guarded by a `try_lock`, and a span that
//! loses the race for its slot is dropped and counted rather than waited
//! for. The buffer holds the most recent `capacity` spans; older ones are
//! overwritten. [`EventLog::drain`] takes everything currently held, in
//! record order — the postmortem view after a failure or at shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed span, as stored in (and drained from) the ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Global record sequence number (0-based, monotonically increasing).
    pub seq: u64,
    /// The span's name.
    pub name: &'static str,
    /// Start, in microseconds since the log was created.
    pub start_us: u64,
    /// End, in microseconds since the log was created.
    pub end_us: u64,
    /// Attached `key = value` fields, in attachment order.
    pub fields: Vec<(&'static str, u64)>,
}

#[derive(Debug)]
struct EventLogInner {
    slots: Vec<Mutex<Option<SpanEvent>>>,
    seq: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
}

/// A bounded, overwrite-oldest log of [`SpanEvent`]s. Cloning shares the
/// same ring.
#[derive(Debug, Clone)]
pub struct EventLog {
    inner: Arc<EventLogInner>,
}

impl EventLog {
    /// Creates a log holding up to `capacity` spans (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        EventLog {
            inner: Arc::new(EventLogInner {
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                epoch: Instant::now(),
            }),
        }
    }

    /// Microseconds since the log was created.
    fn now_us(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Starts a span; it commits to the ring when the returned timer is
    /// dropped (or [`SpanTimer::finish`]ed).
    pub fn span(&self, name: &'static str) -> SpanTimer {
        SpanTimer {
            log: self.clone(),
            name,
            start_us: self.now_us(),
            fields: Vec::new(),
        }
    }

    /// Commits one completed span. Internal; spans come from [`span`](Self::span).
    fn commit(&self, name: &'static str, start_us: u64, fields: Vec<(&'static str, u64)>) {
        let end_us = self.now_us();
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let slot = &self.inner.slots[(seq % self.inner.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut slot) => {
                *slot = Some(SpanEvent {
                    seq,
                    name,
                    start_us,
                    end_us,
                    fields,
                });
            }
            Err(_) => {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Takes every span currently in the ring, sorted by sequence number.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for slot in &self.inner.slots {
            if let Ok(mut slot) = slot.lock() {
                if let Some(event) = slot.take() {
                    out.push(event);
                }
            }
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Spans recorded over the log's lifetime (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Spans dropped because their slot was contended at commit time.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }
}

/// An in-flight span: holds the start timestamp and accumulates fields,
/// committing to the ring on drop.
#[derive(Debug)]
pub struct SpanTimer {
    log: EventLog,
    name: &'static str,
    start_us: u64,
    fields: Vec<(&'static str, u64)>,
}

impl SpanTimer {
    /// Attaches a `key = value` field.
    pub fn field(mut self, key: &'static str, value: u64) -> Self {
        self.fields.push((key, value));
        self
    }

    /// Ends the span now (equivalent to dropping it, but explicit).
    pub fn finish(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.log
            .commit(self.name, self.start_us, std::mem::take(&mut self.fields));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_commit_on_drop_with_fields() {
        let log = EventLog::new(8);
        log.span("cut").field("shards", 4).finish();
        let events = log.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "cut");
        assert_eq!(events[0].fields, vec![("shards", 4)]);
        assert!(events[0].end_us >= events[0].start_us);
        // Drain empties the ring.
        assert!(log.drain().is_empty());
    }

    #[test]
    fn ring_keeps_only_the_newest_capacity_spans() {
        let log = EventLog::new(4);
        for _ in 0..10 {
            log.span("tick").finish();
        }
        let events = log.drain();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(log.recorded(), 10);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let log = EventLog::new(0);
        assert_eq!(log.capacity(), 1);
        log.span("only").finish();
        assert_eq!(log.drain().len(), 1);
    }

    #[test]
    fn concurrent_recording_never_blocks_and_accounts_for_everything() {
        let log = EventLog::new(16);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let log = log.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        log.span("work").field("i", i).finish();
                    }
                });
            }
        });
        assert_eq!(log.recorded(), 400);
        let drained = log.drain().len() as u64;
        // Everything is either still in the ring, overwritten, or counted
        // as dropped; the ring never holds more than its capacity.
        assert!(drained <= 16);
        assert!(log.dropped() <= 400 - drained);
    }
}
