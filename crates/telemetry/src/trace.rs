//! Per-request stage tracing: a [`Trace`] stamps one operation (a server
//! request, an aggregator pull) with a per-stage timing breakdown.
//!
//! The design splits cost three ways:
//!
//! * **Every** finished trace records each touched stage into a per-stage
//!   [`Histogram`] on the shared [`Registry`] (named
//!   `{prefix}_stage_{stage}_us`), so stage quantiles cover the full
//!   population, not a sample. Recording is the histogram's three relaxed
//!   `fetch_add`s per stage.
//! * A **sample** of traces is kept whole: a bounded reservoir of the
//!   slowest N plus a head-sampled ring (every Kth trace), rendered as
//!   JSONL by [`Tracer::render_jsonl`]. Only sampled traces allocate.
//! * Sampled traces also commit a span to the [`EventLog`] ring (stage
//!   durations as `key = value` fields), and the log's lifetime
//!   recorded/dropped counts are mirrored to registry gauges so span loss
//!   is visible in the Prometheus exposition.
//!
//! Stage durations are accumulated in relaxed atomics, so a [`StageTimer`]
//! needs only `&Trace` — timers for different stages may overlap or run on
//! different threads, and re-entering a stage adds to its total. The
//! carrier itself is a fixed-size struct (no per-request allocation) that
//! can move through queues, e.g. the server event loop's `Job`/`Completion`
//! handoff.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::events::EventLog;
use crate::histogram::Histogram;
use crate::registry::{Counter, Gauge, Registry};

/// Maximum number of stages one [`Tracer`] can carry; [`Trace`] stores
/// stage accumulators inline (no allocation), so this is a hard cap.
pub const MAX_STAGES: usize = 8;

/// Static configuration for a [`Tracer`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Metric name prefix: stage histograms register as
    /// `{prefix}_stage_{stage}_us`.
    pub prefix: &'static str,
    /// Stage taxonomy, in pipeline order. At most [`MAX_STAGES`] entries;
    /// call sites refer to stages by index into this slice.
    pub stages: &'static [&'static str],
    /// Whether tracing records anything at all. A disabled tracer still
    /// registers its metrics (so exposition shape is stable) but
    /// [`Trace`]s become no-ops that never read the clock — the overhead
    /// baseline for benchmarking.
    pub enabled: bool,
    /// How many slowest traces the reservoir retains.
    pub slow_capacity: usize,
    /// Head sampling period: every `head_every`-th trace is kept whole
    /// (the first trace is always sampled).
    pub head_every: u64,
    /// How many head-sampled traces the ring retains (overwrite-oldest).
    pub head_capacity: usize,
    /// Capacity of the backing [`EventLog`] span ring.
    pub log_capacity: usize,
}

impl TraceConfig {
    /// A configuration with default sampling bounds: 32 slowest, every
    /// 64th head-sampled into a 64-deep ring, 256 span slots.
    pub fn new(prefix: &'static str, stages: &'static [&'static str]) -> Self {
        TraceConfig {
            prefix,
            stages,
            enabled: true,
            slow_capacity: 32,
            head_every: 64,
            head_capacity: 64,
            log_capacity: 256,
        }
    }
}

/// One fully-sampled trace, as kept in the reservoir and rendered to JSONL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Trace sequence number (0-based, per tracer).
    pub seq: u64,
    /// The operation kind (request opcode name, `"pull"`, ...).
    pub kind: &'static str,
    /// Free-form numeric detail (e.g. upstream index); 0 if unset.
    pub detail: u64,
    /// Why this trace was kept: `"slow"` or `"head"`.
    pub sample: &'static str,
    /// Start, in microseconds since the tracer was created.
    pub start_us: u64,
    /// Whole-operation span in microseconds (includes lead time added via
    /// [`Trace::add_lead`]).
    pub total_us: u64,
    /// Per-stage durations in taxonomy order — every stage is present,
    /// untouched ones as 0, so consumers never see a missing field.
    pub stages: Vec<(&'static str, u64)>,
}

/// Point-in-time quantile summary of one stage histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage name, or `"total"` for the whole-operation histogram.
    pub stage: &'static str,
    /// Operations that touched this stage.
    pub count: u64,
    /// Median, in microseconds (upper bucket bound).
    pub p50_us: u64,
    /// 99th percentile, in microseconds (upper bucket bound).
    pub p99_us: u64,
    /// 99.9th percentile, in microseconds (upper bucket bound).
    pub p999_us: u64,
}

#[derive(Debug, Default)]
struct Samples {
    slow: Vec<TraceRecord>,
    head: std::collections::VecDeque<TraceRecord>,
}

#[derive(Debug)]
struct TracerInner {
    stages: &'static [&'static str],
    enabled: bool,
    stage_histograms: Vec<Histogram>,
    total_histogram: Histogram,
    traces_total: Counter,
    traces_sampled: Counter,
    spans_recorded: Gauge,
    spans_dropped: Gauge,
    events: EventLog,
    epoch: Instant,
    seq: AtomicU64,
    head_every: u64,
    slow_capacity: usize,
    head_capacity: usize,
    /// Smallest `total_us` in the slow reservoir once it is full; 0 while
    /// filling. Checked relaxed before taking the sample lock, so the
    /// common fast-and-unsampled trace never contends.
    slow_floor: AtomicU64,
    samples: Mutex<Samples>,
}

/// A stage-trace collector: hands out [`Trace`]s, owns the per-stage
/// histograms, the slow/head sample reservoirs, and the span ring.
/// Cloning shares the same collector.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Creates a tracer and registers its metrics on `registry`:
    /// `{prefix}_stage_{stage}_us` histograms (one per stage),
    /// `{prefix}_stage_total_us`, `{prefix}_traces_total`,
    /// `{prefix}_traces_sampled_total`, and the span-ring mirror gauges
    /// `{prefix}_trace_spans_recorded` / `{prefix}_trace_spans_dropped`.
    ///
    /// # Panics
    ///
    /// If the taxonomy is empty or longer than [`MAX_STAGES`].
    pub fn new(registry: &Registry, config: TraceConfig) -> Self {
        assert!(
            !config.stages.is_empty() && config.stages.len() <= MAX_STAGES,
            "stage taxonomy must have 1..={MAX_STAGES} entries"
        );
        let prefix = config.prefix;
        let stage_histograms = config
            .stages
            .iter()
            .map(|stage| registry.histogram(&format!("{prefix}_stage_{stage}_us")))
            .collect();
        Tracer {
            inner: Arc::new(TracerInner {
                stages: config.stages,
                enabled: config.enabled,
                stage_histograms,
                total_histogram: registry.histogram(&format!("{prefix}_stage_total_us")),
                traces_total: registry.counter(&format!("{prefix}_traces_total")),
                traces_sampled: registry.counter(&format!("{prefix}_traces_sampled_total")),
                spans_recorded: registry.gauge(&format!("{prefix}_trace_spans_recorded")),
                spans_dropped: registry.gauge(&format!("{prefix}_trace_spans_dropped")),
                events: EventLog::new(config.log_capacity),
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                head_every: config.head_every.max(1),
                slow_capacity: config.slow_capacity,
                head_capacity: config.head_capacity,
                slow_floor: AtomicU64::new(0),
                samples: Mutex::new(Samples::default()),
            }),
        }
    }

    /// Whether this tracer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.enabled
    }

    /// The stage taxonomy, in pipeline order.
    pub fn stage_names(&self) -> &'static [&'static str] {
        self.inner.stages
    }

    /// The backing span ring (sampled traces commit here).
    pub fn events(&self) -> &EventLog {
        &self.inner.events
    }

    /// Starts a trace for one operation of the given kind. Time the
    /// operation's stages with [`Trace::stage`] / [`Trace::add`] and call
    /// [`Trace::finish`] when the operation completes; a trace dropped
    /// without finishing (an aborted connection) records nothing.
    pub fn begin(&self, kind: &'static str) -> Trace {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        let enabled = self.inner.enabled;
        let seq = if enabled {
            self.inner.seq.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        Trace {
            tracer: self.clone(),
            kind,
            enabled,
            seq,
            start: Instant::now(),
            lead_us: AtomicU64::new(0),
            detail: AtomicU64::new(0),
            durs: [ZERO; MAX_STAGES],
            touched: AtomicU32::new(0),
        }
    }

    /// Quantile summaries for every stage histogram, in taxonomy order,
    /// followed by one for the whole-operation (`"total"`) histogram.
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        let summarize = |stage: &'static str, h: &Histogram| StageSummary {
            stage,
            count: h.count(),
            p50_us: h.quantile(0.50),
            p99_us: h.quantile(0.99),
            p999_us: h.quantile(0.999),
        };
        let inner = &*self.inner;
        let mut out: Vec<StageSummary> = inner
            .stages
            .iter()
            .zip(inner.stage_histograms.iter())
            .map(|(&stage, h)| summarize(stage, h))
            .collect();
        out.push(summarize("total", &inner.total_histogram));
        out
    }

    /// A copy of every currently-sampled trace: the slow reservoir
    /// (slowest first), then the head ring (oldest first).
    pub fn sampled(&self) -> Vec<TraceRecord> {
        let samples = self.inner.samples.lock().expect("trace samples poisoned");
        let mut slow = samples.slow.clone();
        slow.sort_by_key(|r| std::cmp::Reverse(r.total_us));
        slow.into_iter()
            .chain(samples.head.iter().cloned())
            .collect()
    }

    /// Renders the tracer's state as JSONL: one `"stage_summary"` line per
    /// stage (with p50/p99/p999 in microseconds), then one `"trace"` line
    /// per sampled trace with every stage field present.
    pub fn render_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in self.stage_summaries() {
            let _ = writeln!(
                out,
                "{{\"type\":\"stage_summary\",\"stage\":\"{}\",\"count\":{},\
                 \"p50_us\":{},\"p99_us\":{},\"p999_us\":{}}}",
                s.stage, s.count, s.p50_us, s.p99_us, s.p999_us
            );
        }
        for record in self.sampled() {
            let mut stages = String::new();
            for (name, us) in &record.stages {
                if !stages.is_empty() {
                    stages.push(',');
                }
                let _ = write!(stages, "\"{name}\":{us}");
            }
            let _ = writeln!(
                out,
                "{{\"type\":\"trace\",\"sample\":\"{}\",\"seq\":{},\"kind\":\"{}\",\
                 \"detail\":{},\"start_us\":{},\"total_us\":{},\"stages\":{{{stages}}}}}",
                record.sample,
                record.seq,
                record.kind,
                record.detail,
                record.start_us,
                record.total_us
            );
        }
        out
    }

    /// Finishes `trace`: records stage histograms, decides sampling, and
    /// mirrors the span-ring counters.
    fn finish_trace(&self, trace: &Trace) {
        let inner = &*self.inner;
        let elapsed_us = u64::try_from(trace.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        let total_us = elapsed_us.saturating_add(trace.lead_us.load(Ordering::Relaxed));
        inner.traces_total.incr();
        inner.total_histogram.record(total_us);
        let touched = trace.touched.load(Ordering::Relaxed);
        for (i, histogram) in inner.stage_histograms.iter().enumerate() {
            if touched & (1 << i) != 0 {
                histogram.record(trace.durs[i].load(Ordering::Relaxed));
            }
        }

        let head = trace.seq.is_multiple_of(inner.head_every);
        let slow_candidate = inner.slow_capacity > 0
            && (inner.slow_floor.load(Ordering::Relaxed) < total_us
                || inner.slow_floor.load(Ordering::Relaxed) == 0);
        if !head && !slow_candidate {
            return;
        }

        let start_us = {
            let since_epoch = u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
            since_epoch.saturating_sub(total_us)
        };
        let stages: Vec<(&'static str, u64)> = inner
            .stages
            .iter()
            .enumerate()
            .map(|(i, &name)| (name, trace.durs[i].load(Ordering::Relaxed)))
            .collect();
        let record = TraceRecord {
            seq: trace.seq,
            kind: trace.kind,
            detail: trace.detail.load(Ordering::Relaxed),
            sample: "head",
            start_us,
            total_us,
            stages,
        };

        let mut kept = false;
        {
            let mut samples = inner.samples.lock().expect("trace samples poisoned");
            if slow_candidate && Self::offer_slow(inner, &mut samples, &record) {
                kept = true;
            } else if head {
                if inner.head_capacity == 0 {
                    // No head ring: nothing to keep.
                } else {
                    while samples.head.len() >= inner.head_capacity {
                        samples.head.pop_front();
                    }
                    samples.head.push_back(record.clone());
                    kept = true;
                }
            }
        }
        if kept {
            inner.traces_sampled.incr();
            trace.commit_span(&record.stages);
            inner.spans_recorded.set(inner.events.recorded());
            inner.spans_dropped.set(inner.events.dropped());
        }
    }

    /// Offers a record to the slow reservoir; returns whether it was kept.
    /// Caller holds the sample lock.
    fn offer_slow(inner: &TracerInner, samples: &mut Samples, record: &TraceRecord) -> bool {
        let mut record = record.clone();
        record.sample = "slow";
        if samples.slow.len() < inner.slow_capacity {
            samples.slow.push(record);
            if samples.slow.len() == inner.slow_capacity {
                Self::refresh_floor(inner, samples);
            }
            return true;
        }
        let (min_idx, min_total) = samples
            .slow
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.total_us)
            .map(|(i, r)| (i, r.total_us))
            .expect("slow reservoir non-empty");
        if record.total_us <= min_total {
            return false;
        }
        samples.slow[min_idx] = record;
        Self::refresh_floor(inner, samples);
        true
    }

    fn refresh_floor(inner: &TracerInner, samples: &Samples) {
        let floor = samples.slow.iter().map(|r| r.total_us).min().unwrap_or(0);
        inner.slow_floor.store(floor, Ordering::Relaxed);
    }
}

/// One in-flight traced operation. Stage durations accumulate in relaxed
/// atomics, so timing needs only `&Trace` — timers may overlap, nest, or
/// run on other threads, and the carrier can move through queues whole.
#[derive(Debug)]
pub struct Trace {
    tracer: Tracer,
    kind: &'static str,
    enabled: bool,
    seq: u64,
    start: Instant,
    /// Time that elapsed *before* `start` but belongs to this operation
    /// (e.g. admission parking before the first frame); extends the span.
    lead_us: AtomicU64,
    detail: AtomicU64,
    durs: [AtomicU64; MAX_STAGES],
    touched: AtomicU32,
}

impl Trace {
    /// Starts timing one stage; the elapsed time is added to the stage
    /// when the returned timer drops (or is [`StageTimer::finish`]ed).
    /// On a disabled tracer this never reads the clock.
    pub fn stage(&self, stage: usize) -> StageTimer<'_> {
        debug_assert!(stage < self.tracer.inner.stages.len());
        StageTimer {
            trace: self,
            stage,
            started: self.enabled.then(Instant::now),
        }
    }

    /// Adds an externally-measured duration to a stage (e.g. queue wait
    /// measured across a thread handoff).
    pub fn add(&self, stage: usize, duration: Duration) {
        if !self.enabled {
            return;
        }
        debug_assert!(stage < self.tracer.inner.stages.len());
        let us = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
        self.durs[stage].fetch_add(us, Ordering::Relaxed);
        self.touched.fetch_or(1 << stage, Ordering::Relaxed);
    }

    /// As [`add`](Self::add), for time spent *before* the trace began
    /// (admission wait on a parked connection): the duration both counts
    /// toward the stage and extends the whole-operation span backward, so
    /// stage sums never exceed the span.
    pub fn add_lead(&self, stage: usize, duration: Duration) {
        if !self.enabled {
            return;
        }
        self.add(stage, duration);
        let us = u64::try_from(duration.as_micros()).unwrap_or(u64::MAX);
        self.lead_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Attaches a free-form numeric detail (upstream index, shard id, ...)
    /// carried into sampled records.
    pub fn set_detail(&self, detail: u64) {
        self.detail.store(detail, Ordering::Relaxed);
    }

    /// The operation kind this trace was begun with.
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Completes the operation: records every touched stage into its
    /// histogram and offers the trace to the sample reservoirs. Dropping
    /// a trace without calling this records nothing.
    pub fn finish(self) {
        if self.enabled {
            self.tracer.finish_trace(&self);
        }
    }

    /// Commits this trace as a span in the tracer's [`EventLog`], with
    /// stage durations as fields.
    fn commit_span(&self, stages: &[(&'static str, u64)]) {
        let mut span = self.tracer.inner.events.span(self.kind);
        for &(name, us) in stages {
            span = span.field(name, us);
        }
        span.finish();
    }
}

/// RAII timer for one stage of a [`Trace`]: measures from creation to drop
/// and adds the elapsed time to the stage.
#[derive(Debug)]
pub struct StageTimer<'a> {
    trace: &'a Trace,
    stage: usize,
    started: Option<Instant>,
}

impl StageTimer<'_> {
    /// Stops the timer now (equivalent to dropping it, but explicit).
    pub fn finish(self) {}
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.trace.add(self.stage, started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STAGES: &[&str] = &["alpha", "beta", "gamma"];

    fn tracer_with(mut config: impl FnMut(&mut TraceConfig)) -> (Registry, Tracer) {
        let registry = Registry::new();
        let mut cfg = TraceConfig::new("test", STAGES);
        config(&mut cfg);
        let tracer = Tracer::new(&registry, cfg);
        (registry, tracer)
    }

    #[test]
    fn stages_record_into_their_histograms_and_exposition() {
        let (registry, tracer) = tracer_with(|_| {});
        let trace = tracer.begin("op");
        trace.add(0, Duration::from_micros(10));
        trace.add(2, Duration::from_micros(100));
        trace.finish();
        let summaries = tracer.stage_summaries();
        assert_eq!(summaries.len(), STAGES.len() + 1);
        assert_eq!(summaries[0].count, 1);
        assert_eq!(summaries[1].count, 0, "untouched stage stays empty");
        assert_eq!(summaries[2].count, 1);
        assert_eq!(summaries[3].stage, "total");
        assert_eq!(summaries[3].count, 1);
        let text = registry.render_prometheus();
        assert!(text.contains("# TYPE test_stage_alpha_us histogram"));
        assert!(text.contains("# TYPE test_stage_total_us histogram"));
        assert!(text.contains("test_traces_total 1"));
    }

    #[test]
    fn sampled_traces_have_every_stage_field_and_reach_the_event_log() {
        let (_registry, tracer) = tracer_with(|c| c.head_every = 1);
        let trace = tracer.begin("op");
        trace.add(1, Duration::from_micros(5));
        trace.finish();
        let sampled = tracer.sampled();
        assert_eq!(sampled.len(), 1);
        let record = &sampled[0];
        assert_eq!(record.stages.len(), STAGES.len());
        assert_eq!(record.stages[1], ("beta", 5));
        assert_eq!(
            record.stages[0],
            ("alpha", 0),
            "untouched stage present as 0"
        );
        let jsonl = tracer.render_jsonl();
        let trace_lines: Vec<&str> = jsonl
            .lines()
            .filter(|l| l.contains("\"type\":\"trace\""))
            .collect();
        assert_eq!(trace_lines.len(), 1);
        for stage in STAGES {
            assert!(trace_lines[0].contains(&format!("\"{stage}\":")));
        }
        let spans = tracer.events().drain();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].fields.len(), STAGES.len());
    }

    #[test]
    fn slow_reservoir_keeps_the_slowest_n() {
        let (_registry, tracer) = tracer_with(|c| {
            c.slow_capacity = 2;
            c.head_every = u64::MAX; // head-sample only seq 0
            c.head_capacity = 0;
        });
        for us in [10u64, 500, 20, 900, 30] {
            let trace = tracer.begin("op");
            trace.add_lead(0, Duration::from_micros(us));
            trace.finish();
        }
        let slow: Vec<u64> = tracer
            .sampled()
            .into_iter()
            .filter(|r| r.sample == "slow")
            .map(|r| r.total_us)
            .collect();
        assert_eq!(slow.len(), 2);
        // Totals include the real (tiny) elapsed time on top of the lead,
        // so compare against the injected floor.
        assert!(slow[0] >= 900 && slow[1] >= 500, "kept {slow:?}");
        assert!(
            slow.iter().all(|&t| t < 10_000),
            "fast traces evicted: {slow:?}"
        );
    }

    #[test]
    fn dropping_a_trace_without_finish_records_nothing() {
        let (_registry, tracer) = tracer_with(|c| c.head_every = 1);
        let trace = tracer.begin("op");
        trace.add(0, Duration::from_micros(10));
        drop(trace);
        assert!(tracer.sampled().is_empty());
        assert_eq!(tracer.stage_summaries()[0].count, 0);
    }

    #[test]
    fn disabled_tracer_is_a_no_op_but_keeps_exposition_shape() {
        let (registry, tracer) = tracer_with(|c| c.enabled = false);
        let trace = tracer.begin("op");
        trace.stage(0).finish();
        trace.add(1, Duration::from_micros(10));
        trace.finish();
        assert!(tracer.sampled().is_empty());
        assert_eq!(tracer.stage_summaries()[0].count, 0);
        assert!(registry
            .render_prometheus()
            .contains("# TYPE test_stage_alpha_us histogram"));
    }

    /// Satellite: concurrent `StageTimer`s — nested on one thread and
    /// overlapping across threads — all accumulate into their stages.
    #[test]
    fn concurrent_stage_timers_nest_and_overlap() {
        let (_registry, tracer) = tracer_with(|c| c.head_every = 1);
        let trace = tracer.begin("op");
        {
            let outer = trace.stage(0);
            let inner = trace.stage(1); // nested while outer is open
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let trace = &trace;
                    scope.spawn(move || {
                        let t = trace.stage(2);
                        std::thread::sleep(Duration::from_millis(1));
                        t.finish();
                    });
                }
            });
            inner.finish();
            outer.finish();
        }
        trace.finish();
        let record = &tracer.sampled()[0];
        let by_name: std::collections::HashMap<_, _> = record.stages.iter().copied().collect();
        // Four 1ms+ timers accumulated into gamma.
        assert!(by_name["gamma"] >= 4_000, "gamma = {}", by_name["gamma"]);
        // Outer covers at least the nested threads' wall time.
        assert!(by_name["alpha"] >= 1_000);
        assert!(by_name["beta"] >= 1_000);
    }

    /// Satellite: head-ring overwrite-oldest semantics under contention —
    /// the ring never exceeds capacity and retains the newest samples,
    /// and the span ring accounts for every sampled trace.
    #[test]
    fn head_ring_overwrites_oldest_under_contention() {
        let (_registry, tracer) = tracer_with(|c| {
            c.head_every = 1;
            c.head_capacity = 4;
            c.slow_capacity = 0;
            c.log_capacity = 8;
        });
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for _ in 0..25 {
                        let trace = tracer.begin("op");
                        trace.add(0, Duration::from_micros(1));
                        trace.finish();
                    }
                });
            }
        });
        let sampled = tracer.sampled();
        assert_eq!(sampled.len(), 4, "ring holds exactly its capacity");
        let max_kept = sampled.iter().map(|r| r.seq).max().unwrap();
        // 100 traces finished; the ring must have moved well past the head.
        assert!(
            max_kept >= 96,
            "ring retained stale traces: max seq {max_kept}"
        );
        // Every sampled trace committed a span; the span ring is bounded
        // and every commit is either held, overwritten, or counted dropped.
        let events = tracer.events();
        assert_eq!(events.recorded(), 100);
        assert!(events.drain().len() <= 8);
        assert_eq!(
            tracer.stage_summaries().last().unwrap().count,
            100,
            "every trace recorded into the total histogram"
        );
    }

    /// Satellite proptest: for stages timed sequentially with real timers,
    /// the recorded stage durations always sum to at most the recorded
    /// whole-operation span (floor(a) + floor(b) <= floor(a + b), and the
    /// stages partition a subset of the span).
    #[test]
    fn stage_sums_never_exceed_the_span() {
        proptest::run_cases("stage_sums_never_exceed_the_span", 32, |rng| {
            let (_registry, tracer) = tracer_with(|c| c.head_every = 1);
            let trace = tracer.begin("op");
            let segments = 1 + rng.below(6);
            for _ in 0..segments {
                let stage = rng.below(STAGES.len() as u64) as usize;
                let spin_us = rng.below(120);
                let timer = trace.stage(stage);
                let until = Instant::now() + Duration::from_micros(spin_us);
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
                timer.finish();
            }
            trace.finish();
            let record = tracer.sampled().pop().expect("head-sampled");
            let sum: u64 = record.stages.iter().map(|&(_, us)| us).sum();
            assert!(
                sum <= record.total_us,
                "stage sum {sum} exceeds span {}",
                record.total_us
            );
        });
    }
}
