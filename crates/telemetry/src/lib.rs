//! # mhp-telemetry — workspace-wide metrics and structured event logging
//!
//! Every layer of the profiler stack (sketches in `mhp-core`, the sharded
//! engine in `mhp-pipeline`, the TCP service in `mhp-server`) wants to
//! report the same three shapes of number:
//!
//! * **counters** — monotonically increasing event tallies;
//! * **gauges** — levels that go up and down (queue depth, live
//!   connections, table occupancy);
//! * **histograms** — fixed-bucket log₂ distributions of durations or
//!   sizes, with wait-free recording and upper-bound quantiles.
//!
//! This crate provides those as cheap cloneable handles backed by relaxed
//! atomics, a [`Registry`] that names them and renders the whole set in
//! Prometheus text-exposition format ([`Registry::render_prometheus`]) or
//! as one-line JSON snapshots ([`Registry::snapshot_json`]), and a bounded
//! ring-buffer [`EventLog`] for structured spans (start/end timestamps
//! plus `key=value` fields) that records without ever blocking and drains
//! postmortem.
//!
//! Nothing here allocates on the record path: counters and gauges are one
//! relaxed `fetch_add`, histograms are three, and the event log commits a
//! span through a `try_lock` that drops the span (and counts the drop)
//! rather than wait.
//!
//! ## Quick example
//!
//! ```
//! use mhp_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let requests = registry.counter("server_requests_total");
//! let latency = registry.histogram("server_request_latency_us");
//! requests.incr();
//! latency.record(180);
//! let text = registry.render_prometheus();
//! assert!(text.contains("# TYPE server_requests_total counter"));
//! assert!(text.contains("server_requests_total 1"));
//! assert!(text.contains("server_request_latency_us_count 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod events;
pub mod histogram;
pub mod registry;
pub mod trace;

pub use events::{EventLog, SpanEvent, SpanTimer};
pub use histogram::{Histogram, HISTOGRAM_BUCKETS};
pub use registry::{stat_value, Counter, CounterVec, Gauge, MetricKind, Registry};
pub use trace::{StageSummary, StageTimer, Trace, TraceConfig, TraceRecord, Tracer, MAX_STAGES};
