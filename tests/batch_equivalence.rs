//! Property tests pinning the batched hot path to the per-event path: for
//! every profiler architecture and every corner of its configuration
//! space, `observe_batch` over arbitrary chunkings must be bit-for-bit
//! equivalent to one `observe` call per event — same emitted profiles,
//! same accumulator state, same interval position — and a 1-shard
//! [`ShardedEngine`] run over the same stream must merge to the same
//! profiles.

use proptest::prelude::*;

use mhp::core::Candidate;
use mhp::prelude::*;
use mhp_pipeline::{EngineConfig, ProfilerSpec, ShardedEngine};

/// A stream over a bounded universe so both heavy hitters and noise occur.
fn tuple_stream(max_len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec((0u64..64, 0u64..16), 1..max_len)
        .prop_map(|pairs| pairs.into_iter().map(|(pc, v)| Tuple::new(pc, v)).collect())
}

/// One profiler architecture with its option corners driven by the three
/// booleans (each architecture interprets the bits it has switches for).
fn spec_for(kind: u8, a: bool, b: bool, c: bool) -> ProfilerSpec {
    match kind % 3 {
        0 => ProfilerSpec::MultiHash(
            MultiHashConfig::new(64, 4)
                .expect("64 entries over 4 tables is valid")
                .with_conservative_update(a)
                .with_resetting(b)
                .with_shielding(c),
        ),
        1 => ProfilerSpec::SingleHash(
            SingleHashConfig::new(256)
                .expect("256 entries is valid")
                .with_retaining(a)
                .with_resetting(b)
                .with_shielding(c),
        ),
        _ => ProfilerSpec::Perfect,
    }
}

/// Normalizes a candidate list for comparison independent of tie order.
fn by_tuple(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    candidates.sort_by_key(|c| c.tuple);
    candidates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence: per-event `observe`, `observe_batch` over
    /// an arbitrary chunking, and a 1-shard engine run all produce the
    /// same profiles and leave the same profiler state behind.
    #[test]
    fn batch_matches_per_event(
        stream in tuple_stream(500),
        batch in 1usize..300,
        seed in 0u64..50,
        kind in 0u8..3,
        a in any::<bool>(),
        b in any::<bool>(),
        c in any::<bool>(),
    ) {
        let interval = IntervalConfig::new(100, 0.05).unwrap();
        let spec = spec_for(kind, a, b, c);

        let mut per_event = spec.build(interval, seed).unwrap();
        let mut batched = spec.build(interval, seed).unwrap();

        let mut expected = Vec::new();
        for &t in &stream {
            expected.extend(per_event.observe(t));
        }
        let mut got = Vec::new();
        for chunk in stream.chunks(batch) {
            got.extend(batched.observe_batch(chunk));
        }

        prop_assert_eq!(&expected, &got, "emitted profiles diverge for {}", spec);
        prop_assert_eq!(
            per_event.events_in_current_interval(),
            batched.events_in_current_interval()
        );
        prop_assert_eq!(per_event.interval_index(), batched.interval_index());
        prop_assert_eq!(
            by_tuple(per_event.hot_tuples(usize::MAX)),
            by_tuple(batched.hot_tuples(usize::MAX)),
            "accumulator state diverges for {}", spec
        );

        // A 1-shard engine is the same profiler behind a channel: pushing
        // the stream through it must merge to the identical profiles and
        // expose the identical live accumulator.
        let engine = ShardedEngine::new(
            EngineConfig::new(1).with_batch_events(batch),
            interval,
            spec,
            seed,
        );
        let mut session = engine.start().unwrap();
        session.push_all(stream.iter().copied()).unwrap();
        prop_assert_eq!(
            by_tuple(session.top_k(usize::MAX).unwrap()),
            by_tuple(per_event.hot_tuples(usize::MAX)),
            "engine accumulator diverges for {}", spec
        );
        let profiles = session.profiles().unwrap().to_vec();
        prop_assert_eq!(expected, profiles, "engine profiles diverge for {}", spec);
        session.finish().unwrap();
    }
}
