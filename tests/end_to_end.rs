//! Cross-crate integration tests: profilers × workloads × analysis.

use mhp::prelude::*;
use mhp::{run_comparison, ErrorCategory};

/// A small interval configuration that keeps debug-mode tests fast while
/// still completing many intervals.
fn small_interval() -> IntervalConfig {
    IntervalConfig::new(10_000, 0.01).expect("valid interval")
}

#[test]
fn multi_hash_profiles_every_benchmark_with_low_error() {
    for bench in Benchmark::ALL {
        let mut profiler =
            MultiHashProfiler::new(small_interval(), MultiHashConfig::best(), 9).unwrap();
        let result = run_comparison(&mut profiler, bench.value_stream(9).take(100_000));
        assert_eq!(result.series().len(), 10);
        // Skip the cold-start interval, as the harness does.
        let steady: mhp::ErrorSeries = result
            .series()
            .intervals()
            .iter()
            .skip(1)
            .cloned()
            .collect();
        assert!(
            steady.mean_total_percent() < 5.0,
            "{}: steady-state error {:.2}% too high",
            bench.name(),
            steady.mean_total_percent()
        );
    }
}

#[test]
fn multi_hash_beats_plain_single_hash_on_gcc() {
    let events = || Benchmark::Gcc.value_stream(5).take(200_000);
    let mut single = SingleHashProfiler::new(
        small_interval(),
        SingleHashConfig::new(2048).unwrap(), // P0 R0 baseline
        5,
    )
    .unwrap();
    let mut multi = MultiHashProfiler::new(small_interval(), MultiHashConfig::best(), 5).unwrap();
    let single_err = run_comparison(&mut single, events())
        .series()
        .mean_total_percent();
    let multi_err = run_comparison(&mut multi, events())
        .series()
        .mean_total_percent();
    assert!(
        multi_err < single_err,
        "multi-hash {multi_err:.3}% should beat plain single hash {single_err:.3}%"
    );
}

#[test]
fn conservative_update_reduces_error_under_pressure() {
    // Severe pressure: long intervals relative to table size.
    let interval = IntervalConfig::new(100_000, 0.001).unwrap();
    let events = || Benchmark::Gcc.value_stream(4).take(400_000);
    let run = |conservative: bool| {
        let config = MultiHashConfig::new(256, 4)
            .unwrap()
            .with_conservative_update(conservative);
        let mut p = MultiHashProfiler::new(interval, config, 4).unwrap();
        run_comparison(&mut p, events())
            .series()
            .mean_total_percent()
    };
    let with = run(true);
    let without = run(false);
    assert!(
        with < without,
        "conservative update should reduce error: C1 {with:.2}% vs C0 {without:.2}%"
    );
}

#[test]
fn resetting_trades_false_positives_for_false_negatives() {
    // On the plain single hash, resetting must lower FP error; the paper
    // notes it can raise FN error.
    let events = || Benchmark::Go.value_stream(11).take(200_000);
    let run = |resetting: bool| {
        let config = SingleHashConfig::new(2048)
            .unwrap()
            .with_resetting(resetting);
        let mut p = SingleHashProfiler::new(small_interval(), config, 11).unwrap();
        run_comparison(&mut p, events())
            .into_series()
            .mean_breakdown()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with.false_positive <= without.false_positive,
        "resetting should not raise FP: {} vs {}",
        with.false_positive,
        without.false_positive
    );
}

#[test]
fn stratified_baseline_needs_software_but_multi_hash_does_not() {
    let interval = small_interval();
    let config = StratifiedConfig::new(2048)
        .unwrap()
        .with_sampling_threshold(16);
    let mut stratified = StratifiedSampler::new(interval, config, 2).unwrap();
    let _ = run_comparison(&mut stratified, Benchmark::Li.value_stream(2).take(100_000));
    assert!(
        stratified.overhead().interrupts > 0,
        "the baseline must interrupt software"
    );
    // The multi-hash profiler has no software-facing state at all: its whole
    // output is the accumulator table contents.
}

#[test]
fn edge_profiling_works_across_architectures() {
    for bench in [Benchmark::Gcc, Benchmark::M88ksim] {
        let mut single =
            SingleHashProfiler::new(small_interval(), SingleHashConfig::best(), 3).unwrap();
        let mut multi =
            MultiHashProfiler::new(small_interval(), MultiHashConfig::best(), 3).unwrap();
        let single_err = run_comparison(&mut single, bench.edge_stream(3).take(100_000))
            .series()
            .mean_total_percent();
        let multi_err = run_comparison(&mut multi, bench.edge_stream(3).take(100_000))
            .series()
            .mean_total_percent();
        assert!(
            single_err < 50.0,
            "{}: single-hash edge error {single_err}",
            bench.name()
        );
        assert!(
            multi_err < 10.0,
            "{}: multi-hash edge error {multi_err}",
            bench.name()
        );
    }
}

#[test]
fn hardware_profile_counts_are_never_below_threshold() {
    let mut profiler =
        MultiHashProfiler::new(small_interval(), MultiHashConfig::best(), 1).unwrap();
    let mut checked = 0;
    for t in Benchmark::Vortex.value_stream(1).take(100_000) {
        if let Some(profile) = profiler.observe(t) {
            for c in profile.candidates() {
                assert!(c.count >= profile.threshold_count());
                checked += 1;
            }
        }
    }
    assert!(checked > 0, "some candidates must have been captured");
}

#[test]
fn false_negatives_are_counted_against_missing_tuples() {
    // A profiler with a hopeless configuration (tiny tables, resetting off)
    // must show its misses as FN/FP, never panic.
    let interval = IntervalConfig::new(50_000, 0.001).unwrap();
    let config = MultiHashConfig::new(16, 2).unwrap();
    let mut p = MultiHashProfiler::new(interval, config, 8).unwrap();
    let result = run_comparison(&mut p, Benchmark::Gcc.value_stream(8).take(100_000));
    let series = result.series();
    assert_eq!(series.len(), 2);
    let fp = series.total_count_in(ErrorCategory::FalsePositive);
    let exact = series.total_count_in(ErrorCategory::Exact);
    assert!(fp + exact > 0, "classification must run");
}

#[test]
fn profiles_are_reproducible_across_runs() {
    let collect = || {
        let mut p = MultiHashProfiler::new(small_interval(), MultiHashConfig::best(), 77).unwrap();
        let mut out = Vec::new();
        for t in Benchmark::Sis.value_stream(77).take(50_000) {
            if let Some(profile) = p.observe(t) {
                out.push(profile);
            }
        }
        out
    };
    let a = collect();
    let b = collect();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.candidates(), y.candidates());
    }
}
