//! Toy-CPU → profiler integration: the full ATOM-like pipeline.

use mhp::prelude::*;
use mhp::trace::sim::{programs, Machine, ProfilingHook, TupleCollector};

/// Runs `program`, splitting events into load and edge streams.
fn run_program(program: mhp::trace::sim::Program) -> (Vec<Tuple>, Vec<Tuple>) {
    let mut machine = Machine::new(program);
    let mut hook = TupleCollector::new();
    machine.run(200_000_000, &mut hook).expect("program halts");
    hook.into_parts()
}

#[test]
fn array_sum_loads_profile_to_the_dominant_value() {
    let (loads, _) = run_program(programs::array_sum(5_000));
    let interval = IntervalConfig::new(1_000, 0.05).unwrap();
    let mut profiler = MultiHashProfiler::new(interval, MultiHashConfig::best(), 1).unwrap();
    let mut last = None;
    for &t in &loads {
        if let Some(p) = profiler.observe(t) {
            last = Some(p);
        }
    }
    let profile = last.expect("intervals complete");
    // Value 5 dominates (6 of every 7 loads).
    let top = &profile.candidates()[0];
    assert_eq!(top.tuple.value().as_u64(), 5);
    assert!(top.count > 700);
}

#[test]
fn dispatch_loop_edges_profile_to_the_dispatch_targets() {
    let (_, edges) = run_program(programs::dispatch_loop(64, 30_000));
    let interval = IntervalConfig::new(10_000, 0.01).unwrap();
    let mut profiler = MultiHashProfiler::new(interval, MultiHashConfig::best(), 2).unwrap();
    let mut last = None;
    for &t in &edges {
        if let Some(p) = profiler.observe(t) {
            last = Some(p);
        }
    }
    let profile = last.expect("intervals complete");
    // The four dispatch edges (one per handler) must all be captured: each
    // covers ~1/6 of all edges (dispatch + handler jump + loop branch per
    // iteration).
    let dispatch_sources: std::collections::HashSet<u64> =
        profile.tuples().map(|t| t.pc().as_u64()).collect();
    assert!(
        profile.len() >= 5,
        "expected the dispatch fan-out plus loop edges, got {}",
        profile.len()
    );
    assert!(!dispatch_sources.is_empty());
}

#[test]
fn single_and_multi_hash_agree_on_an_easy_program() {
    // array_sum produces exactly two load tuples (values 5 and 99): no
    // aliasing pressure, so both architectures must produce identical
    // candidate sets. (byte_histogram would NOT qualify: its drifting
    // bucket-counter loads are genuine noise that can alias.)
    let (loads, _) = run_program(programs::array_sum(8_000));
    let interval = IntervalConfig::new(2_000, 0.05).unwrap();
    let mut single = SingleHashProfiler::new(interval, SingleHashConfig::best(), 3).unwrap();
    let mut multi = MultiHashProfiler::new(interval, MultiHashConfig::best(), 3).unwrap();
    let mut single_profiles = Vec::new();
    let mut multi_profiles = Vec::new();
    for &t in &loads {
        if let Some(p) = single.observe(t) {
            single_profiles.push(p);
        }
        if let Some(p) = multi.observe(t) {
            multi_profiles.push(p);
        }
    }
    assert_eq!(single_profiles.len(), multi_profiles.len());
    for (s, m) in single_profiles.iter().zip(multi_profiles.iter()) {
        let s_tuples: std::collections::BTreeSet<Tuple> = s.tuples().collect();
        let m_tuples: std::collections::BTreeSet<Tuple> = m.tuples().collect();
        assert_eq!(s_tuples, m_tuples, "candidate sets must agree");
    }
}

#[test]
fn linked_list_walk_profiles_pointer_loads() {
    let (loads, _) = run_program(programs::linked_list_walk(8, 3, 50_000));
    // The walk visits a small cycle: the loaded "next" pointers repeat, so
    // with an 8-node list each pointer value is ~1/8 of the loads.
    let interval = IntervalConfig::new(5_000, 0.05).unwrap();
    let mut profiler = MultiHashProfiler::new(interval, MultiHashConfig::best(), 4).unwrap();
    let mut last = None;
    for &t in &loads {
        if let Some(p) = profiler.observe(t) {
            last = Some(p);
        }
    }
    let profile = last.expect("intervals complete");
    // gcd(3, 8) = 1: the walk cycles through all 8 nodes.
    assert_eq!(profile.len(), 8, "all eight next-pointers are hot");
}

#[test]
fn profiling_hooks_see_consistent_event_totals() {
    struct Counter {
        loads: u64,
        edges: u64,
    }
    impl ProfilingHook for Counter {
        fn on_load(&mut self, _pc: u64, _value: u64) {
            self.loads += 1;
        }
        fn on_edge(&mut self, _pc: u64, _target: u64) {
            self.edges += 1;
        }
    }
    let program = programs::array_sum(700);
    let mut machine = Machine::new(program);
    let mut hook = Counter { loads: 0, edges: 0 };
    machine.run(100_000_000, &mut hook).unwrap();
    assert_eq!(hook.loads, 700, "one load per array element");
    // Each init iteration takes a conditional branch (+ a jump on the 6/7
    // path) and each sum iteration takes one loop branch.
    assert!(hook.edges >= 1_400);
}
