//! Property-based tests over the core invariants, driven by proptest.

use std::collections::HashMap;

use proptest::prelude::*;

use mhp::core::hash::{xor_fold, HashFamily};
use mhp::prelude::*;
use mhp::{compare_interval, run_comparison};

/// Strategy: a stream of tuples drawn from a bounded universe, so that both
/// heavy hitters and noise occur.
fn tuple_stream(max_len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec((0u64..64, 0u64..16), 1..max_len)
        .prop_map(|pairs| pairs.into_iter().map(|(pc, v)| Tuple::new(pc, v)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sketch never under-counts: before a tuple is promoted, its
    /// minimum counter is at least its true occurrence count this interval.
    #[test]
    fn sketch_never_undercounts(stream in tuple_stream(400), conservative in any::<bool>()) {
        let interval = IntervalConfig::new(1_000, 0.5).unwrap(); // huge threshold: no promotion
        let config = MultiHashConfig::new(64, 4).unwrap()
            .with_conservative_update(conservative);
        let mut p = MultiHashProfiler::new(interval, config, 1).unwrap();
        let mut truth: HashMap<Tuple, u64> = HashMap::new();
        for &t in &stream {
            p.observe(t);
            *truth.entry(t).or_insert(0) += 1;
            let estimate = p.sketch_estimate(t);
            prop_assert!(
                estimate >= truth[&t],
                "estimate {} < true {} for {}", estimate, truth[&t], t
            );
        }
    }

    /// Conservative update never produces larger counters than plain update.
    #[test]
    fn conservative_update_is_bounded_by_plain(stream in tuple_stream(400)) {
        let interval = IntervalConfig::new(100_000, 0.9).unwrap();
        let mk = |c| {
            MultiHashProfiler::new(
                interval,
                MultiHashConfig::new(64, 4).unwrap().with_conservative_update(c),
                3,
            ).unwrap()
        };
        let mut plain = mk(false);
        let mut cons = mk(true);
        for &t in &stream {
            plain.observe(t);
            cons.observe(t);
        }
        for (vp, vc) in plain.counters().iter().zip(cons.counters().iter()) {
            prop_assert!(vc <= vp);
        }
    }

    /// The accumulator never exceeds its capacity, for any stream.
    #[test]
    fn accumulator_respects_capacity(stream in tuple_stream(600)) {
        let interval = IntervalConfig::new(50, 0.1).unwrap(); // capacity 10
        let mut p = MultiHashProfiler::new(interval, MultiHashConfig::new(32, 2).unwrap(), 5)
            .unwrap();
        for &t in &stream {
            p.observe(t);
            prop_assert!(p.accumulator().len() <= 10);
        }
    }

    /// The perfect profiler is exactly a hash map.
    #[test]
    fn perfect_profiler_matches_reference(stream in tuple_stream(300)) {
        let interval = IntervalConfig::new(stream.len() as u64, 0.05).unwrap();
        let mut perfect = PerfectProfiler::new(interval);
        let mut reference: HashMap<Tuple, u64> = HashMap::new();
        let mut exact = None;
        for &t in &stream {
            *reference.entry(t).or_insert(0) += 1;
            if let Some(e) = perfect.observe_exact(t) {
                exact = Some(e);
            }
        }
        let exact = exact.expect("one interval completes");
        prop_assert_eq!(exact.distinct_tuples(), reference.len());
        for (&t, &c) in &reference {
            prop_assert_eq!(exact.count_of(t), c);
        }
    }

    /// Comparing a perfect profile against itself yields zero error.
    #[test]
    fn self_comparison_has_zero_error(stream in tuple_stream(300)) {
        let interval = IntervalConfig::new(stream.len() as u64, 0.05).unwrap();
        let mut perfect = PerfectProfiler::new(interval);
        let mut exact = None;
        for &t in &stream {
            if let Some(e) = perfect.observe_exact(t) {
                exact = Some(e);
            }
        }
        let exact = exact.unwrap();
        let err = compare_interval(&exact, &exact.profile());
        prop_assert_eq!(err.total(), 0.0);
    }

    /// Every candidate a hardware profiler reports carries at least the
    /// threshold count, and the error metric never goes negative.
    #[test]
    fn reported_candidates_meet_threshold(stream in tuple_stream(500), seed in 0u64..1000) {
        let interval = IntervalConfig::new(100, 0.05).unwrap();
        let mut p = MultiHashProfiler::new(interval, MultiHashConfig::new(64, 2).unwrap(), seed)
            .unwrap();
        for &t in &stream {
            if let Some(profile) = p.observe(t) {
                for c in profile.candidates() {
                    prop_assert!(c.count >= interval.threshold_count());
                }
            }
        }
    }

    /// Error series totals are always non-negative and finite.
    #[test]
    fn error_rates_are_finite(stream in tuple_stream(500)) {
        let interval = IntervalConfig::new(100, 0.1).unwrap();
        let mut p = SingleHashProfiler::new(interval, SingleHashConfig::best(), 2).unwrap();
        let result = run_comparison(&mut p, stream.iter().copied());
        for e in result.series().intervals() {
            prop_assert!(e.total() >= 0.0);
            prop_assert!(e.total().is_finite());
        }
    }

    /// No phantom candidates: every tuple a hardware profiler reports must
    /// actually have occurred in the stream (promotion requires at least
    /// one occurrence, and retained entries only re-report after
    /// re-crossing the threshold).
    #[test]
    fn profilers_never_report_unseen_tuples(stream in tuple_stream(600), seed in 0u64..100) {
        let interval = IntervalConfig::new(100, 0.05).unwrap();
        let mut single = SingleHashProfiler::new(interval, SingleHashConfig::best(), seed).unwrap();
        let mut multi = MultiHashProfiler::new(interval, MultiHashConfig::new(64, 2).unwrap(), seed)
            .unwrap();
        let mut seen = std::collections::HashSet::new();
        for &t in &stream {
            seen.insert(t);
            for profile in [single.observe(t), multi.observe(t)].into_iter().flatten() {
                for c in profile.candidates() {
                    prop_assert!(seen.contains(&c.tuple), "phantom tuple {}", c.tuple);
                }
            }
        }
    }

    /// xor_fold always stays within the requested bit width.
    #[test]
    fn xor_fold_in_range(v in any::<u64>(), bits in 1u32..=32) {
        prop_assert!(xor_fold(v, bits) < (1u64 << bits));
    }

    /// Hash families map every tuple into every table's range.
    #[test]
    fn hash_family_indices_in_range(pc in any::<u64>(), value in any::<u64>(), seed in any::<u64>()) {
        let family = HashFamily::new(4, 256, seed).unwrap();
        for idx in family.indices(Tuple::new(pc, value)) {
            prop_assert!(idx < 256);
        }
    }

    /// A profiler observed the same stream twice (after reset) produces the
    /// same profiles — reset really is complete.
    #[test]
    fn reset_restores_determinism(stream in tuple_stream(400)) {
        let interval = IntervalConfig::new(100, 0.1).unwrap();
        let mut p = MultiHashProfiler::new(interval, MultiHashConfig::best(), 6).unwrap();
        let run = |p: &mut MultiHashProfiler, stream: &[Tuple]| {
            let mut out = Vec::new();
            for &t in stream {
                if let Some(profile) = p.observe(t) {
                    out.push(profile.candidates().to_vec());
                }
            }
            out
        };
        let first = run(&mut p, &stream);
        p.reset();
        let second = run(&mut p, &stream);
        prop_assert_eq!(first, second);
    }
}
