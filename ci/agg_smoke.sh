#!/usr/bin/env bash
# Fleet aggregation smoke test: two mhp-servers with multi-tenant sessions,
# a child aggregator pulling both, and a parent aggregator stacked on the
# child. The parent's per-tenant global top-k must byte-match `mhp-agg
# offline` (the same engines run in-process, no network hops). Then the
# child is kill -9'd mid-fleet, new data lands while it is down, and the
# restarted child (same checkpoint file, same address) must re-converge on
# the updated offline answer without double-counting anything. Ends with
# the tenancy guardrails: session quotas reject with a labeled counter, and
# idle sessions evict under a memory budget and restore on the next attach.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release -p mhp-server -p mhp-agg

EVENTS=20000
INTERVAL=5000
TOPN=25

work="$(mktemp -d)"
pids=()
cleanup() {
  for pid in ${pids[@]+"${pids[@]}"}; do
    # The braces keep bash's asynchronous "Killed" notice off the console.
    { kill -9 "$pid" 2>/dev/null && wait "$pid"; } 2>/dev/null || true
  done
  rm -rf "$work"
}
trap cleanup EXIT

# start_proc LOG PREFIX CMD...: backgrounds CMD, scrapes "PREFIX<addr>" from
# its log, and leaves the resolved address in $addr and the pid in $last_pid.
start_proc() {
  local log="$work/$1" prefix="$2"
  shift 2
  : >"$log"
  "$@" >"$log" 2>&1 &
  last_pid=$!
  pids+=("$last_pid")
  addr=""
  for _ in $(seq 100); do
    addr="$(sed -n "s/^${prefix}//p" "$log" | head -n 1)"
    [ -n "$addr" ] && return 0
    sleep 0.1
  done
  echo "agg_smoke: $1 never reported an address" >&2
  cat "$log" >&2
  exit 1
}

ingest() { # addr session stream
  target/release/mhp-client record-and-send --addr "$1" --session "$2" \
    --stream "$3" --events "$EVENTS" --interval-len "$INTERVAL" >/dev/null
}

offline() { # out-file member...
  local out="$1"
  shift
  local flags=()
  for member in "$@"; do flags+=(--member "$member"); done
  target/release/mhp-agg offline "${flags[@]}" \
    --events "$EVENTS" --interval-len "$INTERVAL" --n "$TOPN" >"$out"
}

# Polls an aggregator's per-tenant top-k until it is byte-identical to the
# offline reference file, or fails loudly with the diff.
converge() { # addr expected-file label
  local addr="$1" expected="$2" label="$3" got="$work/got.txt"
  for _ in $(seq 100); do
    {
      target/release/mhp-agg query --addr "$addr" --op topk --tenant acme --n "$TOPN"
      target/release/mhp-agg query --addr "$addr" --op topk --tenant beta --n "$TOPN"
    } >"$got" 2>/dev/null || true
    cmp -s "$expected" "$got" && return 0
    sleep 0.2
  done
  echo "agg_smoke: $label never converged on the offline answer" >&2
  diff "$expected" "$got" >&2 || true
  exit 1
}

echo "==> phase 1: fleet up (2 servers -> child aggregator -> parent aggregator)"
start_proc server_a.log "listening on " target/release/mhp-server --addr 127.0.0.1:0
srv_a="$addr"
start_proc server_b.log "listening on " target/release/mhp-server --addr 127.0.0.1:0
srv_b="$addr"

ingest "$srv_a" acme/web gcc:value:11
ingest "$srv_b" acme/api gcc:value:22
ingest "$srv_a" beta/db li:value:33

listing="$(target/release/mhp-client query --addr "$srv_a" --op sessions)"
for name in acme/web beta/db; do
  printf '%s\n' "$listing" | grep -q "^$name " || {
    echo "agg_smoke: session $name missing from server listing:" >&2
    printf '%s\n' "$listing" >&2
    exit 1
  }
done

start_proc child.log "aggregating on " target/release/mhp-agg serve \
  --addr 127.0.0.1:0 --upstream "$srv_a" --upstream "$srv_b" \
  --pull-interval-ms 50 --state "$work/agg.snap"
child_addr="$addr"
child_pid="$last_pid"
start_proc parent.log "aggregating on " target/release/mhp-agg serve \
  --addr 127.0.0.1:0 --upstream "$child_addr" --pull-interval-ms 50
parent_addr="$addr"

echo "==> phase 2: parent top-k byte-matches the offline merge"
offline "$work/expected1.txt" \
  acme/web=gcc:value:11 acme/api=gcc:value:22 beta/db=li:value:33
converge "$parent_addr" "$work/expected1.txt" "parent"
# The child exports one cumulative session per tenant for its parent.
agg_sessions="$(target/release/mhp-agg query --addr "$child_addr" --op sessions)"
for tenant in acme beta; do
  printf '%s\n' "$agg_sessions" | grep -q "^$tenant/__cumulative__ " || {
    echo "agg_smoke: child does not export $tenant/__cumulative__:" >&2
    printf '%s\n' "$agg_sessions" >&2
    exit 1
  }
done
# The listing also carries per-upstream supervisor health; both of the
# child's upstreams are alive and closed-breaker right now.
healthy_upstreams="$(printf '%s\n' "$agg_sessions" |
  grep -c '^upstream .* healthy=1 phase=closed ')" || true
[ "$healthy_upstreams" -eq 2 ] || {
  echo "agg_smoke: expected 2 healthy upstreams in child listing:" >&2
  printf '%s\n' "$agg_sessions" >&2
  exit 1
}
# Checkpointing is on (state file set) and has seen zero write failures
# on the happy path.
ckpt_errors="$(target/release/mhp-agg query --addr "$child_addr" --op metrics |
  awk '$1 == "agg_checkpoint_errors_total" { print $2 }')"
[ "$ckpt_errors" = "0" ] || {
  echo "agg_smoke: agg_checkpoint_errors_total should be 0, got '$ckpt_errors'" >&2
  exit 1
}

echo "==> phase 3: kill -9 the child, land new data, restore from checkpoint"
# The braces keep bash's asynchronous "Killed" job notice out of the log.
{ kill -9 "$child_pid" && wait "$child_pid"; } 2>/dev/null || true
sleep 0.3 # let the parent record at least one failed pull
ingest "$srv_a" acme/extra gcc:value:55
start_proc child.log "aggregating on " target/release/mhp-agg serve \
  --addr "$child_addr" --upstream "$srv_a" --upstream "$srv_b" \
  --pull-interval-ms 50 --state "$work/agg.snap"
grep -q "restored checkpoint at epoch" "$work/child.log" || {
  echo "agg_smoke: restarted child did not restore its checkpoint" >&2
  cat "$work/child.log" >&2
  exit 1
}
offline "$work/expected2.txt" \
  acme/web=gcc:value:11 acme/api=gcc:value:22 beta/db=li:value:33 \
  acme/extra=gcc:value:55
converge "$parent_addr" "$work/expected2.txt" "restored fleet"
# The parent saw the outage and said so in its metrics (the counter is
# labeled per upstream; sum the family).
errors="$(target/release/mhp-agg query --addr "$parent_addr" --op metrics |
  awk '/^agg_pull_errors_total\{/ { sum += $2 } END { print sum + 0 }')"
if [ -z "$errors" ] || [ "$errors" -eq 0 ]; then
  echo "agg_smoke: parent never counted the dead upstream" >&2
  exit 1
fi

echo "==> phase 4: tenant session quota rejects with a labeled counter"
start_proc quota.log "listening on " target/release/mhp-server \
  --addr 127.0.0.1:0 --tenant-max-sessions 1
quota_addr="$addr"
target/release/mhp-client record-and-send --addr "$quota_addr" \
  --session acme/one --events 1000 >/dev/null
if target/release/mhp-client record-and-send --addr "$quota_addr" \
  --session acme/two --events 1000 >/dev/null 2>&1; then
  echo "agg_smoke: second session was admitted past the tenant quota" >&2
  exit 1
fi
target/release/mhp-client query --addr "$quota_addr" --op metrics |
  grep -q 'server_tenant_quota_rejections_total{tenant="acme"} 1' || {
  echo "agg_smoke: quota rejection counter missing from exposition" >&2
  exit 1
}
target/release/mhp-client shutdown --addr "$quota_addr" >/dev/null

echo "==> phase 5: idle sessions evict under a memory budget, restore on attach"
mkdir -p "$work/evict-state"
start_proc evict.log "listening on " target/release/mhp-server \
  --addr 127.0.0.1:0 --state-dir "$work/evict-state" --memory-budget 1
evict_addr="$addr"
target/release/mhp-client record-and-send --addr "$evict_addr" \
  --session acme/idle --events 12000 --interval-len "$INTERVAL" >/dev/null
evicted=""
for _ in $(seq 100); do
  if target/release/mhp-client query --addr "$evict_addr" --op metrics |
    grep -q 'server_tenant_evictions_total{tenant="acme"}'; then
    evicted=1
    break
  fi
  sleep 0.1
done
[ -n "$evicted" ] || {
  echo "agg_smoke: idle session was never evicted under a 1-byte budget" >&2
  exit 1
}
topk="$(target/release/mhp-client query --addr "$evict_addr" \
  --session acme/idle --op topk --n 5)"
[ -n "$topk" ] || {
  echo "agg_smoke: evicted session did not restore on attach" >&2
  exit 1
}
target/release/mhp-client shutdown --addr "$evict_addr" >/dev/null

echo "==> graceful fleet shutdown"
target/release/mhp-agg query --addr "$parent_addr" --op shutdown >/dev/null
target/release/mhp-agg query --addr "$child_addr" --op shutdown >/dev/null
target/release/mhp-client shutdown --addr "$srv_a" >/dev/null
target/release/mhp-client shutdown --addr "$srv_b" >/dev/null
grep -q "shut down cleanly" "$work/child.log" || sleep 0.5
grep -q "shut down cleanly" "$work/child.log" || {
  echo "agg_smoke: child aggregator did not shut down cleanly" >&2
  cat "$work/child.log" >&2
  exit 1
}

echo "ci/agg_smoke.sh: all green"
