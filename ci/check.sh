#!/usr/bin/env bash
# Full local gate, identical to .github/workflows/ci.yml:
#   formatting, clippy (warnings are errors), tier-1 build + tests, and the
#   whole workspace test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> server integration smoke test (threaded)"
MODE=threaded ci/server_smoke.sh

echo "==> server integration smoke test (event loop)"
MODE=event-loop ci/server_smoke.sh

echo "==> chaos smoke test, threaded (faults, kill -9 restore, overload shed)"
MODE=threaded ci/chaos_smoke.sh

echo "==> chaos smoke test, event loop (same story on the reactor)"
MODE=event-loop ci/chaos_smoke.sh

echo "==> fleet aggregation smoke test (multi-tenant, two-level, kill -9 restore)"
ci/agg_smoke.sh

echo "==> fleet fault-isolation smoke test (kill one server mid-run, recover)"
ci/fleet_smoke.sh

# Fleet convergence smoke: a scaled-down `mhp-bench fleet` run. Gating via
# its own clean-run bound — a fault-free fleet that cannot converge within
# the cycle budget means the pull plane regressed.
echo "==> fleet convergence bench smoke"
cargo run --release -p mhp-bench --bin mhp-bench -- fleet \
  --servers 2 --sessions-per-server 1 --fault-rates 0,50 --events 10000 \
  --clean-budget-cycles 400 --out target/BENCH_fleet_smoke.json

# Perf smoke: a scaled-down hotpath run proves the bench harness still
# executes end to end. Non-gating — throughput numbers vary by machine, so
# a failure here warns instead of failing the gate; the shard-scaling
# efficiency (8-shard vs 1-shard, normalized by the cores actually
# available) is surfaced so a dispatch-plane regression is visible in the
# CI log even though it does not gate.
echo "==> hotpath bench smoke (non-gating)"
if cargo run --release -p mhp-bench --bin mhp-bench -- hotpath \
    --events 200000 --samples 1 --out target/BENCH_hotpath_smoke.json; then
  echo "hotpath scaling (non-gating): $(grep -o '"scaling": {[^}]*}' \
    target/BENCH_hotpath_smoke.json || echo 'n/a')"
else
  echo "warning: hotpath bench smoke failed (non-gating)" >&2
fi

# c10k smoke: thousands of concurrent live sessions on the event loop.
# Non-gating — the ceiling depends on local fd limits and memory.
echo "==> c10k smoke (non-gating)"
if ! ci/c10k_smoke.sh; then
  echo "warning: c10k smoke failed (non-gating)" >&2
fi

echo "ci/check.sh: all green"
