#!/usr/bin/env bash
# Full local gate, identical to .github/workflows/ci.yml:
#   formatting, clippy (warnings are errors), tier-1 build + tests, and the
#   whole workspace test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> workspace tests"
cargo test --workspace -q

echo "==> server integration smoke test"
ci/server_smoke.sh

echo "ci/check.sh: all green"
