#!/usr/bin/env bash
# Chaos smoke test: boot mhp-server with a seeded deterministic fault plan
# (dropped connections, torn acks, corrupted chunks, stalls), stream through
# the reconnecting client, and demand bit-identical results anyway. Then
# prove worker-panic containment (typed client error, server survives),
# and the full crash story: kill -9 a checkpointing server, restart it from
# the same state directory, confirm the session was restored and that an
# overloaded server sheds ingest with a typed error. Scrapes the durability
# counters (restore/shed) from the Prometheus exposition at the end.
#
# MODE=threaded (default) or MODE=event-loop selects the front end; the
# fault-recovery and durability story must hold identically in both.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${MODE:-threaded}"
mode_flags=()
if [ "$MODE" = "event-loop" ]; then
  mode_flags+=(--event-loop)
elif [ "$MODE" != "threaded" ]; then
  echo "chaos_smoke: unknown MODE=$MODE (use threaded or event-loop)" >&2
  exit 1
fi
echo "==> mode: $MODE"

cargo build -q --release -p mhp-server

state="$(mktemp -d)"
log="$(mktemp)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$state" "$log"
}
trap cleanup EXIT

start_server() {
  : >"$log"
  target/release/mhp-server "$@" "${mode_flags[@]}" >"$log" 2>&1 &
  server_pid=$!
  addr=""
  for _ in $(seq 50); do
    addr="$(sed -n 's/^listening on //p' "$log")"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "chaos_smoke: server never came up" >&2
    cat "$log" >&2
    exit 1
  fi
}

stop_server() {
  target/release/mhp-client shutdown --addr "$addr" >/dev/null
  wait "$server_pid"
  server_pid=""
}

echo "==> phase 1: retryable faults, bit-identical verify through retries"
start_server --addr 127.0.0.1:0 \
  --fault-plan conn-drop@4,truncate-frame@7,corrupt-chunk@3,slow-consumer@5 \
  --fault-seed 42
out="$(target/release/mhp-client verify --addr "$addr" \
  --stream gcc:value:42 --events 50000 --retries 5)"
printf '%s\n' "$out"
printf '%s\n' "$out" | grep -q "verify ok" || {
  echo "chaos_smoke: verify did not pass under faults" >&2
  exit 1
}
printf '%s\n' "$out" | grep -q "recovered from" || {
  echo "chaos_smoke: no fault was actually recovered from" >&2
  exit 1
}
stop_server

echo "==> phase 2: worker panic is contained as a typed client error"
start_server --addr 127.0.0.1:0 --fault-plan worker-panic@5000
if target/release/mhp-client record-and-send --addr "$addr" \
  --session chaos-panic --events 20000 --retries 3 2>/dev/null; then
  echo "chaos_smoke: stream into a panicked worker unexpectedly succeeded" >&2
  exit 1
fi
kill -0 "$server_pid" 2>/dev/null || {
  echo "chaos_smoke: worker panic took the whole server down" >&2
  cat "$log" >&2
  exit 1
}
# Fresh sessions still verify cleanly on the same server.
target/release/mhp-client verify --addr "$addr" \
  --stream li:value:7 --events 20000 >/dev/null
stop_server

echo "==> phase 3: kill -9, restart from checkpoints, shed under overload"
start_server --addr 127.0.0.1:0 --state-dir "$state" --checkpoint-interval-ms 100
target/release/mhp-client record-and-send --addr "$addr" \
  --session durable --events 30000 --retries 5 >/dev/null
sleep 0.5
ls "$state"/*.snap >/dev/null 2>&1 || {
  echo "chaos_smoke: no checkpoint file appeared in --state-dir" >&2
  exit 1
}
# The braces keep bash's asynchronous "Killed" job notice out of the log.
{ kill -9 "$server_pid" && wait "$server_pid"; } 2>/dev/null || true
server_pid=""

start_server --addr 127.0.0.1:0 --state-dir "$state" --overload-conns 0
grep -q "restored 1 session(s)" "$log" || {
  echo "chaos_smoke: restarted server did not restore the session" >&2
  cat "$log" >&2
  exit 1
}
# The restored session remembers its resume point (30000 events / 4096 = 8 chunks).
resume="$(target/release/mhp-client query --addr "$addr" --session durable --op resume)"
[ "$resume" = "last_seq 8" ] || {
  echo "chaos_smoke: unexpected resume point after restore: $resume" >&2
  exit 1
}
# --overload-conns 0 sheds every ingest: the client must get the typed error.
if target/release/mhp-client record-and-send --addr "$addr" \
  --session shed-probe --events 5000 2>"$log.err"; then
  echo "chaos_smoke: ingest was not shed under overload" >&2
  exit 1
fi
grep -qi "overloaded" "$log.err" || {
  echo "chaos_smoke: shed error did not carry the overloaded code" >&2
  cat "$log.err" >&2
  exit 1
}
rm -f "$log.err"

echo "==> durability counters in the Prometheus exposition"
metrics="$(target/release/mhp-client query --addr "$addr" --op metrics)"
for name in server_restore_total server_shed_total; do
  value="$(printf '%s\n' "$metrics" | awk -v n="$name" '$1 == n { print $2 }')"
  if [ -z "$value" ] || [ "$value" -eq 0 ] 2>/dev/null; then
    echo "chaos_smoke: metric $name missing or zero after chaos" >&2
    exit 1
  fi
done
stop_server

echo "ci/chaos_smoke.sh: all green"
