#!/usr/bin/env bash
# Fault-isolation smoke test for the aggregation pull plane: two servers
# behind one aggregator, then one server is kill -9'd mid-run. The
# surviving upstream must keep converging (new data ingested after the
# kill still reaches the aggregate), the dead upstream must trip its
# circuit breaker (quarantine counter moves, listing flags it unhealthy),
# and once the dead server comes back on the same address the half-open
# probe must recover it (recovery counter moves, listing flags it healthy)
# — with the final aggregate byte-identical to the offline merge, every
# pre-kill interval counted exactly once.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build -q --release -p mhp-server -p mhp-agg

EVENTS=20000
INTERVAL=5000
TOPN=25

work="$(mktemp -d)"
pids=()
cleanup() {
  for pid in ${pids[@]+"${pids[@]}"}; do
    { kill -9 "$pid" 2>/dev/null && wait "$pid"; } 2>/dev/null || true
  done
  rm -rf "$work"
}
trap cleanup EXIT

start_proc() { # log prefix cmd...
  local log="$work/$1" prefix="$2"
  shift 2
  : >"$log"
  "$@" >"$log" 2>&1 &
  last_pid=$!
  pids+=("$last_pid")
  addr=""
  for _ in $(seq 100); do
    addr="$(sed -n "s/^${prefix}//p" "$log" | head -n 1)"
    [ -n "$addr" ] && return 0
    sleep 0.1
  done
  echo "fleet_smoke: $1 never reported an address" >&2
  cat "$log" >&2
  exit 1
}

ingest() { # addr session stream
  target/release/mhp-client record-and-send --addr "$1" --session "$2" \
    --stream "$3" --events "$EVENTS" --interval-len "$INTERVAL" >/dev/null
}

offline() { # out-file member...
  local out="$1"
  shift
  local flags=()
  for member in "$@"; do flags+=(--member "$member"); done
  target/release/mhp-agg offline "${flags[@]}" \
    --events "$EVENTS" --interval-len "$INTERVAL" --n "$TOPN" >"$out"
}

converge() { # expected-file label
  local expected="$1" label="$2" got="$work/got.txt"
  for _ in $(seq 100); do
    {
      target/release/mhp-agg query --addr "$agg_addr" --op topk --tenant acme --n "$TOPN"
      target/release/mhp-agg query --addr "$agg_addr" --op topk --tenant beta --n "$TOPN"
    } >"$got" 2>/dev/null || true
    cmp -s "$expected" "$got" && return 0
    sleep 0.2
  done
  echo "fleet_smoke: $label never converged on the offline answer" >&2
  diff "$expected" "$got" >&2 || true
  exit 1
}

metric_sum() { # family -> sum of all (labeled) samples
  target/release/mhp-agg query --addr "$agg_addr" --op metrics |
    awk -v fam="$1" 'index($1, fam "{") == 1 || $1 == fam { sum += $2 } END { print sum + 0 }'
}

upstream_health() { # addr -> the listing's health line for that upstream
  target/release/mhp-agg query --addr "$agg_addr" --op sessions |
    grep "^upstream $1 " || true
}

echo "==> phase 1: two servers, one aggregator, clean convergence"
start_proc server_a.log "listening on " target/release/mhp-server --addr 127.0.0.1:0
srv_a="$addr"
start_proc server_b.log "listening on " target/release/mhp-server --addr 127.0.0.1:0
srv_b="$addr"
ingest "$srv_a" acme/web gcc:value:11
ingest "$srv_b" beta/db li:value:22

start_proc agg.log "aggregating on " target/release/mhp-agg serve \
  --addr 127.0.0.1:0 --upstream "$srv_a" --upstream "$srv_b" \
  --pull-interval-ms 50 --breaker-threshold 3 --quarantine-ms 500 \
  --connect-timeout-ms 250 --read-timeout-ms 250
agg_addr="$addr"

offline "$work/expected1.txt" acme/web=gcc:value:11 beta/db=li:value:22
converge "$work/expected1.txt" "clean fleet"

echo "==> phase 2: kill -9 one server; the survivor keeps advancing"
srv_b_pid="${pids[1]}"
{ kill -9 "$srv_b_pid" && wait "$srv_b_pid"; } 2>/dev/null || true

# New data on the surviving server must still flow: the dead upstream is
# someone else's problem, not the pull plane's.
ingest "$srv_a" acme/extra gcc:value:33
offline "$work/expected2.txt" \
  acme/web=gcc:value:11 beta/db=li:value:22 acme/extra=gcc:value:33
converge "$work/expected2.txt" "surviving upstream"

# The dead upstream trips its breaker within a few failed pulls: the
# quarantine counter moves and the session listing flags it unhealthy.
quarantined=""
for _ in $(seq 50); do
  if [ "$(metric_sum agg_upstream_quarantines_total)" -gt 0 ] &&
    upstream_health "$srv_b" | grep -q " healthy=0 "; then
    quarantined=1
    break
  fi
  sleep 0.1
done
[ -n "$quarantined" ] || {
  echo "fleet_smoke: dead upstream was never quarantined and flagged:" >&2
  target/release/mhp-agg query --addr "$agg_addr" --op sessions >&2
  target/release/mhp-agg query --addr "$agg_addr" --op metrics >&2
  exit 1
}

echo "==> phase 3: dead server restarts; half-open probe recovers it"
start_proc server_b.log "listening on " target/release/mhp-server --addr "$srv_b"
# Fresh data on the revived server; its old beta/db session is gone, and
# the aggregator's cursors mean the retained beta/db data is counted once.
ingest "$srv_b" beta/cache li:value:44
offline "$work/expected3.txt" \
  acme/web=gcc:value:11 beta/db=li:value:22 acme/extra=gcc:value:33 \
  beta/cache=li:value:44
converge "$work/expected3.txt" "recovered fleet"

recoveries="$(metric_sum agg_upstream_recoveries_total)"
[ "$recoveries" -gt 0 ] || {
  echo "fleet_smoke: revived upstream never counted a recovery" >&2
  target/release/mhp-agg query --addr "$agg_addr" --op metrics >&2
  exit 1
}
upstream_health "$srv_b" | grep -q " healthy=1 phase=closed " || {
  echo "fleet_smoke: revived upstream not healthy/closed in listing:" >&2
  target/release/mhp-agg query --addr "$agg_addr" --op sessions >&2
  exit 1
}

echo "==> graceful shutdown"
target/release/mhp-agg query --addr "$agg_addr" --op shutdown >/dev/null
target/release/mhp-client shutdown --addr "$srv_a" >/dev/null
target/release/mhp-client shutdown --addr "$srv_b" >/dev/null

echo "ci/fleet_smoke.sh: all green"
