#!/usr/bin/env bash
# Server integration smoke test: boot mhp-server on an ephemeral port, run
# the end-to-end equivalence check (streamed snapshots + live top-k must
# match an offline ShardedEngine run over the pinned workload), hit it with
# a concurrent loadgen, scrape the Prometheus metrics query, fetch the
# request-trace stream, and shut it down gracefully. Fails on any protocol
# error, any mismatch, a missing or zero core metric, a traceless or
# stage-incomplete trace stream, or an unclean shutdown.
#
# MODE=threaded (default) runs the thread-per-connection front end;
# MODE=event-loop runs the same checks against the readiness-based reactor
# and additionally scrapes its net metrics. CI runs both.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${MODE:-threaded}"
server_flags=()
if [ "$MODE" = "event-loop" ]; then
  server_flags+=(--event-loop)
elif [ "$MODE" != "threaded" ]; then
  echo "server_smoke: unknown MODE=$MODE (use threaded or event-loop)" >&2
  exit 1
fi
echo "==> mode: $MODE"

cargo build -q --release -p mhp-server

log="$(mktemp)"
target/release/mhp-server --addr 127.0.0.1:0 "${server_flags[@]}" >"$log" 2>&1 &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true; rm -f "$log"' EXIT

addr=""
for _ in $(seq 50); do
  addr="$(sed -n 's/^listening on //p' "$log")"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "server_smoke: server never came up" >&2
  cat "$log" >&2
  exit 1
fi
echo "==> server up on $addr"

echo "==> verify: multi-hash, 1 shard (exact vs offline engine)"
target/release/mhp-client verify --addr "$addr" \
  --stream gcc:value:42 --events 50000 --profiler multi-hash --shards 1

echo "==> verify: perfect, 4 shards (exact vs offline engine)"
target/release/mhp-client verify --addr "$addr" \
  --stream li:value:7 --events 30000 --profiler perfect --shards 4

echo "==> loadgen: 8 concurrent clients"
target/release/mhp-client loadgen --addr "$addr" --clients 8 --events 20000

echo "==> metrics: scrape and sanity-check the Prometheus exposition"
metrics="$(target/release/mhp-client query --addr "$addr" --op metrics)"
for name in server_requests_total server_events_ingested_total \
            engine_events_total sketch_promotions_total; do
  value="$(printf '%s\n' "$metrics" | awk -v n="$name" '$1 == n { print $2 }')"
  if [ -z "$value" ]; then
    echo "server_smoke: metric $name missing from exposition" >&2
    exit 1
  fi
  if [ "$value" -eq 0 ] 2>/dev/null; then
    echo "server_smoke: metric $name is zero after traffic" >&2
    exit 1
  fi
done
printf '%s\n' "$metrics" | grep -q '^# TYPE server_request_latency_us histogram$' || {
  echo "server_smoke: latency histogram missing from exposition" >&2
  exit 1
}

echo "==> traces: stage-attributed request traces after traffic"
traces="$(target/release/mhp-client traces --addr "$addr")"
trace_lines="$(printf '%s\n' "$traces" | grep -c '"type":"trace"' || true)"
if [ "$trace_lines" -eq 0 ]; then
  echo "server_smoke: no sampled traces after traffic" >&2
  printf '%s\n' "$traces" >&2
  exit 1
fi
first_trace="$(printf '%s\n' "$traces" | grep -m1 '"type":"trace"')"
for stage in admission_wait frame_decode queue_wait dispatch ingest reply_write; do
  printf '%s\n' "$traces" | grep -q "\"stage\":\"$stage\"" || {
    echo "server_smoke: stage summary $stage missing from traces" >&2
    exit 1
  }
  printf '%s\n' "$first_trace" | grep -q "\"$stage\":" || {
    echo "server_smoke: sampled trace missing stage field $stage" >&2
    exit 1
  }
  printf '%s\n' "$metrics" | grep -q "^# TYPE server_stage_${stage}_us histogram$" || {
    echo "server_smoke: server_stage_${stage}_us histogram missing from exposition" >&2
    exit 1
  }
done
echo "    $trace_lines sampled trace(s), all six stages attributed"

if [ "$MODE" = "event-loop" ]; then
  echo "==> net metrics: reactor gauges and counters after traffic"
  value="$(printf '%s\n' "$metrics" | awk '$1 == "server_net_wakeups_total" { print $2 }')"
  if [ -z "$value" ] || [ "$value" -eq 0 ] 2>/dev/null; then
    echo "server_smoke: net metric server_net_wakeups_total missing or zero after traffic" >&2
    exit 1
  fi
  # Present (possibly zero on a clean run), but must be exported.
  for name in server_net_open_connections server_net_worker_queue_depth \
              server_net_partial_frame_resumes_total \
              server_net_write_sheds_total server_net_queue_sheds_total; do
    printf '%s\n' "$metrics" | awk -v n="$name" '$1 == n { found = 1 } END { exit !found }' || {
      echo "server_smoke: net metric $name missing from exposition" >&2
      exit 1
    }
  done
fi

echo "==> graceful shutdown"
target/release/mhp-client shutdown --addr "$addr"
wait "$server_pid"
grep -q "shut down cleanly" "$log" || {
  echo "server_smoke: server did not shut down cleanly" >&2
  cat "$log" >&2
  exit 1
}

echo "ci/server_smoke.sh: all green"
