#!/usr/bin/env bash
# c10k smoke test: boot mhp-server with --event-loop and hold thousands of
# concurrent live sessions against it from the multiplexed load generator —
# a small active subset streaming ingest, the rest idling attached, the
# fleet-realistic mix. Fails if any session fails to open, if the active
# streams do not complete, or if the server's own session counter
# disagrees. SESSIONS (default 2048) and ACTIVE (default 16) scale the run.
#
# CI runs this non-gating: the concurrency ceiling depends on the
# runner's fd limits and memory, so a failure warns rather than gates.
set -euo pipefail
cd "$(dirname "$0")/.."

SESSIONS="${SESSIONS:-2048}"
ACTIVE="${ACTIVE:-16}"

# Each session is one client fd plus one server fd; leave generous slack.
need_fds=$((SESSIONS * 2 + 256))
ulimit -n "$need_fds" 2>/dev/null || {
  have="$(ulimit -n)"
  echo "c10k_smoke: cannot raise fd limit to $need_fds (have $have)" >&2
  [ "$have" -ge "$need_fds" ] || exit 1
}

cargo build -q --release -p mhp-server

log="$(mktemp)"
target/release/mhp-server --addr 127.0.0.1:0 --event-loop >"$log" 2>&1 &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true; rm -f "$log"' EXIT

addr=""
for _ in $(seq 50); do
  addr="$(sed -n 's/^listening on //p' "$log")"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "c10k_smoke: server never came up" >&2
  cat "$log" >&2
  exit 1
fi
echo "==> event-loop server up on $addr"

echo "==> holding $SESSIONS concurrent sessions ($ACTIVE active streams)"
target/release/mhp-client loadgen --addr "$addr" \
  --sessions "$SESSIONS" --active "$ACTIVE" --events 20000

echo "==> server-side check: every session registered"
metrics="$(target/release/mhp-client query --addr "$addr" --op metrics)"
opened="$(printf '%s\n' "$metrics" | awk '$1 == "server_sessions_opened_total" { print $2 }')"
if [ -z "$opened" ] || [ "$opened" -lt "$SESSIONS" ]; then
  echo "c10k_smoke: server counted ${opened:-0} opened sessions, expected >= $SESSIONS" >&2
  exit 1
fi

echo "==> graceful shutdown"
target/release/mhp-client shutdown --addr "$addr"
wait "$server_pid"
grep -q "shut down cleanly" "$log" || {
  echo "c10k_smoke: server did not shut down cleanly" >&2
  cat "$log" >&2
  exit 1
}

echo "ci/c10k_smoke.sh: all green ($SESSIONS concurrent sessions)"
