//! Write a program in the toy assembly language, run it under
//! instrumentation, and profile its load values — the complete
//! author-run-profile loop.
//!
//! ```text
//! cargo run --release --example custom_program
//! ```

use mhp::prelude::*;
use mhp::trace::sim::{assemble, Machine, ProfilingHook};

/// A table-driven lookup kernel: repeatedly translate indices through a
/// small translation table. The table entries become the invariant load
/// values a value profiler should surface.
const PROGRAM: &str = "
    .memory 64
    ; build a 16-entry translation table at mem[0..16]: table[i] = 100 + (i*7 % 16)
        li   r0, 0          ; i
        li   r1, 16         ; table size
        li   r4, 7
        li   r5, 100
    build:
        rem  r2, r0, r1     ; r2 = i % 16  (i < 16, so just i)
        add  r2, r2, r2     ; placeholder mixing
        rem  r2, r2, r1
        add  r2, r2, r5     ; 100 + mixed
        store r2, r0
        addi r0, r0, 1
        blt  r0, r1, build

    ; translate 3000 indices: idx = j % 16, val = table[idx]
        li   r0, 0          ; j
        li   r6, 3000
        li   r7, 0          ; checksum
    translate:
        rem  r2, r0, r1
        load r3, r2         ; the hot lookup load
        add  r7, r7, r3
        addi r0, r0, 1
        blt  r0, r6, translate
        halt
";

struct LoadProfiler {
    profiler: MultiHashProfiler,
    profiles: Vec<mhp::IntervalProfile>,
}

impl ProfilingHook for LoadProfiler {
    fn on_load(&mut self, pc: u64, value: u64) {
        if let Some(p) = self.profiler.observe(Tuple::new(pc, value)) {
            self.profiles.push(p);
        }
    }
    fn on_edge(&mut self, _pc: u64, _target: u64) {}
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = assemble(PROGRAM)?;
    println!("assembled {} instructions", program.len());

    let interval = IntervalConfig::new(1_000, 0.02)?; // hot = >= 2% of loads
    let mut hook = LoadProfiler {
        profiler: MultiHashProfiler::new(interval, MultiHashConfig::best(), 3)?,
        profiles: Vec::new(),
    };
    let mut machine = Machine::new(program);
    let steps = machine.run(10_000_000, &mut hook)?;
    println!(
        "executed {steps} instructions, checksum {}",
        machine.regs()[7]
    );

    let last = hook
        .profiles
        .last()
        .expect("profiled at least one interval");
    println!("\nhot lookup values (interval {}):", last.interval_index());
    for c in last.candidates().iter().take(8) {
        println!(
            "  value {:>4} loaded {:>3} times from {}",
            c.tuple.value(),
            c.count,
            c.tuple.pc()
        );
    }
    // All table entries are 100..=115; the profiler must agree.
    for c in last.candidates() {
        let v = c.tuple.value().as_u64();
        assert!((100..=115).contains(&v), "unexpected hot value {v}");
    }
    println!("\nevery hot value is a translation-table entry, as expected.");
    Ok(())
}
