//! Quickstart: profile a synthetic value stream with the paper's best
//! multi-hash configuration and print the hot tuples of each interval.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mhp::prelude::*;

fn main() -> Result<(), mhp::ConfigError> {
    // 10,000-event intervals, 1% candidate threshold: a tuple is "hot" once
    // it covers >= 100 events of an interval (the paper's short config).
    let interval = IntervalConfig::short();

    // 2K counters split over 4 independent hash tables, conservative update,
    // retaining, no resetting — the configuration §6.4 recommends. The whole
    // profiler models ~7 KB of hardware.
    let mut profiler = MultiHashProfiler::new(interval, MultiHashConfig::best(), 42)?;

    // Any iterator of <pc, value> tuples works; here, a gcc-like stream.
    let events = Benchmark::Gcc.value_stream(42).take(50_000);

    for event in events {
        if let Some(profile) = profiler.observe(event) {
            println!(
                "interval {}: {} candidates (threshold {} occurrences)",
                profile.interval_index(),
                profile.len(),
                profile.threshold_count(),
            );
            for candidate in profile.candidates().iter().take(5) {
                println!("  {:>6} x {}", candidate.count, candidate.tuple);
            }
        }
    }

    println!(
        "hardware budget: {} bytes",
        mhp::AreaModel::new(2048, interval).total_bytes()
    );
    Ok(())
}
