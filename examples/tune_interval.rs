//! Interval-length sensitivity (§5.6.1): different programs want different
//! profile intervals. This sweep measures candidate stability (how useful
//! last interval's profile is for the next interval) across interval lengths
//! for two benchmarks with opposite phase behaviour.
//!
//! ```text
//! cargo run --release --example tune_interval
//! ```

use mhp::prelude::*;
use mhp::run_exact_stats;

fn main() -> Result<(), mhp::ConfigError> {
    let lengths = [10_000u64, 50_000, 200_000, 1_000_000];

    for bench in [Benchmark::Deltablue, Benchmark::M88ksim] {
        println!("benchmark {bench}:");
        println!(
            "  {:<12} {:>12} {:>12} {:>16}",
            "interval", "candidates", "mean %var", "stability verdict"
        );
        for len in lengths {
            // Threshold scales with length as in the paper: 1% at 10K,
            // 0.1% at 1M.
            let threshold = if len >= 1_000_000 { 0.001 } else { 0.01 };
            let interval = IntervalConfig::new(len, threshold)?;
            let events = bench.value_stream(3).take((len * 12) as usize);
            let stats = run_exact_stats(interval, events);
            let mean_var = if stats.variations().is_empty() {
                0.0
            } else {
                stats.variations().iter().sum::<f64>() / stats.variations().len() as f64
            };
            let verdict = if mean_var < 10.0 {
                "stable: reuse profile"
            } else if mean_var < 40.0 {
                "moderate"
            } else {
                "unstable: shorten interval"
            };
            println!(
                "  {len:<12} {:>12.1} {:>12.1} {:>16}",
                stats.mean_candidates(),
                mean_var,
                verdict
            );
        }
        println!();
    }
    println!(
        "deltablue's phases make long intervals unstable, while m88ksim's\n\
         bursty hot set makes *short* intervals unstable — matching the\n\
         paper's observation that the right interval length is per-program."
    );
    Ok(())
}
