//! SimPoint-style phase analysis of the benchmark models (the methodology
//! substrate behind the paper's §5.5 fast-forwarding), cross-checked
//! against the profiler's own candidate-variation signal.
//!
//! ```text
//! cargo run --release --example phase_analysis
//! ```

use mhp::analysis::simpoint::{choose_k, cluster, collect_bbvs, simulation_points};
use mhp::prelude::*;

fn main() {
    println!("SimPoint over 100K-event intervals (k chosen by knee heuristic):\n");
    println!(
        "{:<12} {:>4} {:>12} {:>24}",
        "benchmark", "k", "mean dist", "simulation points"
    );
    for bench in Benchmark::ALL {
        let events = bench.value_stream(7).take(2_000_000);
        let bbvs = collect_bbvs(events, 100_000);
        let k = choose_k(&bbvs, 5, 15, 7, 0.05);
        let clustering = cluster(&bbvs, k, 15, 7);
        let points = simulation_points(&bbvs, &clustering);
        println!(
            "{:<12} {:>4} {:>12.4} {:>24}",
            bench.name(),
            clustering.k(),
            clustering.mean_distance,
            format!("{points:?}")
        );
    }
    println!(
        "\nchurny benchmarks (gcc, go) need several clusters even inside one\n\
         macro phase; stable ones (burg, li) need one. Pick intervals at the\n\
         simulation points to fast-forward, exactly as the paper's\n\
         methodology does."
    );
}
