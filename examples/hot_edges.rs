//! Edge profiling for trace formation: find the hot control-flow edges of a
//! bytecode-interpreter loop running on the toy CPU (§2's trace-formation
//! and multiple-path-execution motivations).
//!
//! ```text
//! cargo run --release --example hot_edges
//! ```

use mhp::prelude::*;
use mhp::trace::sim::{programs, Machine, ProfilingHook};

/// Feeds control-transfer events into the profiler.
struct EdgeProfiler {
    profiler: MultiHashProfiler,
    captured: Vec<mhp::IntervalProfile>,
}

impl ProfilingHook for EdgeProfiler {
    fn on_load(&mut self, _pc: u64, _value: u64) {}

    fn on_edge(&mut self, pc: u64, target: u64) {
        if let Some(profile) = self.profiler.observe(Tuple::new(pc, target)) {
            self.captured.push(profile);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A dispatch loop interpreting 4 opcodes: the indirect dispatch edge
    // fans out to 4 handlers; loop back-edges dominate.
    let program = programs::dispatch_loop(64, 20_000);

    let interval = IntervalConfig::new(10_000, 0.01)?;
    let mut hook = EdgeProfiler {
        profiler: MultiHashProfiler::new(interval, MultiHashConfig::best(), 11)?,
        captured: Vec::new(),
    };

    let mut machine = Machine::new(program);
    machine.run(100_000_000, &mut hook)?;

    let profile = hook.captured.last().expect("at least one interval");
    println!(
        "hot edges of the dispatch loop (interval {}):",
        profile.interval_index()
    );
    for candidate in profile.candidates() {
        println!(
            "  {:>6} x {} -> {:#x}",
            candidate.count,
            candidate.tuple.pc(),
            candidate.tuple.value().as_u64()
        );
    }

    // A trace-formation engine would chain the hottest edges into a trace;
    // print the greedy chain starting from the hottest edge.
    let mut trace = Vec::new();
    let mut at = profile.candidates()[0].tuple;
    trace.push(at);
    for _ in 0..4 {
        let next = profile.candidates().iter().find(|c| {
            let from = c.tuple.pc().as_u64();
            from == at.value().as_u64() + 4 || from == at.value().as_u64()
        });
        match next {
            Some(c) => {
                at = c.tuple;
                trace.push(at);
            }
            None => break,
        }
    }
    println!("\ngreedy trace seed ({} edges):", trace.len());
    for t in &trace {
        println!("  {} -> {:#x}", t.pc(), t.value().as_u64());
    }
    Ok(())
}
