//! Head-to-head: best single hash vs multi-hash vs the stratified-sampler
//! baseline on the same gcc-like stream, with the paper's error metric.
//!
//! ```text
//! cargo run --release --example compare_architectures
//! ```

use mhp::prelude::*;

fn main() -> Result<(), mhp::ConfigError> {
    let interval = IntervalConfig::short();
    let events = || Benchmark::Gcc.value_stream(7).take(500_000);

    println!("gcc-like value stream, 10K-event intervals, 1% threshold\n");
    println!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "architecture", "FP %", "FN %", "NP %", "NN %", "total %"
    );

    // Best single hash: 2K entries, retaining + resetting.
    let mut bsh = SingleHashProfiler::new(interval, SingleHashConfig::best(), 1)?;
    report(
        "single hash (P1 R1, 2K)",
        run_comparison(&mut bsh, events()),
    );

    // Multi-hash, the paper's best: 4 x 512 counters, C1 R0.
    let mut mh = MultiHashProfiler::new(interval, MultiHashConfig::best(), 1)?;
    report(
        "multi-hash (4 tables, C1 R0)",
        run_comparison(&mut mh, events()),
    );

    // Plain multi-hash without conservative update, for contrast.
    let mut mh_plain = MultiHashProfiler::new(
        interval,
        MultiHashConfig::new(2048, 4)?.with_conservative_update(false),
        1,
    )?;
    report(
        "multi-hash (4 tables, C0 R0)",
        run_comparison(&mut mh_plain, events()),
    );

    // The prior-art baseline: stratified sampling into software.
    let config = StratifiedConfig::new(2048)?
        .with_sampling_threshold(16)
        .with_tags(10, 64);
    let mut strat = StratifiedSampler::new(interval, config, 1)?;
    let result = run_comparison(&mut strat, events());
    let interrupts = strat.overhead().interrupts;
    report("stratified sampler (2K)", result);
    println!(
        "\nthe stratified sampler interrupted software {interrupts} times;\n\
         the multi-hash profiler needed zero software interaction."
    );
    Ok(())
}

fn report(label: &str, result: mhp::ComparisonResult) {
    let b = result.series().mean_breakdown();
    println!(
        "{label:<28} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        b.false_positive * 100.0,
        b.false_negative * 100.0,
        b.neutral_positive * 100.0,
        b.neutral_negative * 100.0,
        b.total_percent()
    );
}
