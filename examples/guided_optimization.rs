//! The full §2 story: one 7 KB multi-hash profiler drives all four
//! run-time optimizations, and each is compared against an oracle built
//! from a perfect profile.
//!
//! ```text
//! cargo run --release --example guided_optimization
//! ```

use mhp::apps::{DelinquentLoadSet, FrequentValueTable, MultipathSelector, TraceFormer};
use mhp::cache::{access::AccessPattern, Cache, CacheConfig, MissEvents};
use mhp::prelude::*;
use mhp::IntervalProfile;

/// Profiles one interval with both the multi-hash profiler and the perfect
/// profiler, in lockstep.
fn profile_interval(
    interval: IntervalConfig,
    events: &mut impl Iterator<Item = Tuple>,
) -> Result<(IntervalProfile, IntervalProfile), mhp::ConfigError> {
    let mut hw = MultiHashProfiler::new(interval, MultiHashConfig::best(), 1)?;
    let mut oracle = PerfectProfiler::new(interval);
    loop {
        let t = events.next().expect("infinite stream");
        match (hw.observe(t), oracle.observe(t)) {
            (Some(h), Some(p)) => return Ok((h, p)),
            (None, None) => {}
            _ => unreachable!(),
        }
    }
}

fn main() -> Result<(), mhp::ConfigError> {
    let interval = IntervalConfig::new(20_000, 0.01)?;
    println!("profile interval: {interval}; profiler: 4-table multi-hash (C1 R0), ~7 KB\n");

    // 1. Frequent-value cache (value profile).
    let mut values = Benchmark::Li.value_stream(11);
    let (hw, oracle) = profile_interval(interval, &mut values)?;
    let next: Vec<Tuple> = (&mut values).take(20_000).collect();
    let r_hw = FrequentValueTable::from_profile(&hw, 8).evaluate(next.iter().copied());
    let r_or = FrequentValueTable::from_profile(&oracle, 8).evaluate(next.iter().copied());
    println!(
        "frequent-value cache  (li):   {:5.1}% of loads compressible (oracle {:5.1}%)",
        r_hw.ratio() * 100.0,
        r_or.ratio() * 100.0
    );

    // 2. Trace formation (edge profile).
    let mut edges = Benchmark::M88ksim.edge_stream(13);
    let (hw, oracle) = profile_interval(interval, &mut edges)?;
    let next: Vec<Tuple> = (&mut edges).take(20_000).collect();
    let t_hw = TraceFormer::from_profile(&hw).form_traces(16, 8);
    let t_or = TraceFormer::from_profile(&oracle).form_traces(16, 8);
    println!(
        "trace formation  (m88ksim):   {:5.1}% of edges in traces      (oracle {:5.1}%)",
        TraceFormer::coverage(&t_hw, next.iter().copied()) * 100.0,
        TraceFormer::coverage(&t_or, next.iter().copied()) * 100.0
    );

    // 3. Multiple-path execution (edge profile). Fork selection needs the
    // *minority* edges of biased branches to cross the threshold too, so it
    // profiles at a finer 0.25% threshold (still only ~4 KB of accumulator).
    let fork_interval = IntervalConfig::new(20_000, 0.0025)?;
    let mut edges = Benchmark::Deltablue.edge_stream(17);
    let (hw, oracle) = profile_interval(fork_interval, &mut edges)?;
    let next: Vec<Tuple> = (&mut edges).take(20_000).collect();
    let sel_hw = MultipathSelector::from_profile(&hw);
    let sel_or = MultipathSelector::from_profile(&oracle);
    println!(
        "multipath forks (deltablue):  {:5.1}% of mispredicts covered  (oracle {:5.1}%)",
        sel_hw.misprediction_coverage(&sel_hw.select(16), next.iter().copied()) * 100.0,
        sel_or.misprediction_coverage(&sel_or.select(16), next.iter().copied()) * 100.0
    );

    // 4. Delinquent-load targeting (miss profile through a 32 KB cache).
    let cache = Cache::new(CacheConfig::new(32 * 1024, 64, 4).expect("valid cache"));
    let mut misses = MissEvents::new(cache, AccessPattern::demo_mix(23).events());
    let miss_interval = IntervalConfig::new(10_000, 0.01)?;
    let (hw, oracle) = profile_interval(miss_interval, &mut misses)?;
    let next: Vec<Tuple> = (&mut misses).take(10_000).collect();
    let c_hw = DelinquentLoadSet::from_profile(&hw, 2).coverage(next.iter().copied());
    let c_or = DelinquentLoadSet::from_profile(&oracle, 2).coverage(next.iter().copied());
    println!(
        "prefetch targets (demo mix):  {:5.1}% of misses covered      (oracle {:5.1}%)",
        c_hw.ratio() * 100.0,
        c_or.ratio() * 100.0
    );

    // Close the loop: the profiled targets drive an actual prefetcher.
    let prefetcher = mhp::apps::NextLinePrefetcher::new(DelinquentLoadSet::from_profile(&hw, 2), 4);
    let outcome = prefetcher.evaluate(
        || Cache::new(CacheConfig::new(32 * 1024, 64, 4).expect("valid cache")),
        || AccessPattern::demo_mix(23).events().take(200_000),
    );
    println!(
        "  -> next-line prefetching on those targets cuts misses by {:.1}%",
        outcome.miss_reduction() * 100.0
    );

    println!("\na 7 KB hardware profile matches the oracle on every client.");
    Ok(())
}
