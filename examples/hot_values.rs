//! Value profiling on the toy instrumented CPU: find the invariant load
//! values of a running program, the information a frequent-value cache or
//! value-specializing optimizer needs (§2 of the paper).
//!
//! The program is a real (toy-ISA) binary executed by the interpreter; every
//! load emits a `<pc, value>` event into the profiler, exactly as a hardware
//! profiler would snoop a pipeline's load port.
//!
//! ```text
//! cargo run --release --example hot_values
//! ```

use mhp::prelude::*;
use mhp::trace::sim::{programs, Machine, ProfilingHook};

/// Instrumentation hook that feeds load events straight into the profiler.
struct LoadProfiler {
    profiler: MultiHashProfiler,
    captured: Vec<mhp::IntervalProfile>,
}

impl ProfilingHook for LoadProfiler {
    fn on_load(&mut self, pc: u64, value: u64) {
        if let Some(profile) = self.profiler.observe(Tuple::new(pc, value)) {
            self.captured.push(profile);
        }
    }

    fn on_edge(&mut self, _pc: u64, _target: u64) {}
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduction over an array dominated by the value 5 (with 99 every
    // seventh element) — classic frequent-value behaviour.
    let program = programs::array_sum(4_000);

    let interval = IntervalConfig::new(2_000, 0.05)?; // hot = >=5% of loads
    let mut hook = LoadProfiler {
        profiler: MultiHashProfiler::new(interval, MultiHashConfig::best(), 7)?,
        captured: Vec::new(),
    };

    let mut machine = Machine::new(program);
    let steps = machine.run(10_000_000, &mut hook)?;
    println!("program halted after {steps} instructions");
    println!("array sum = {}", machine.regs()[2]);

    for profile in &hook.captured {
        println!("\ninterval {}: hot load values", profile.interval_index());
        for candidate in profile.candidates() {
            let share = 100.0 * candidate.count as f64 / interval.interval_len() as f64;
            println!(
                "  pc {} loads value {:>4} for {:>5.1}% of loads",
                candidate.tuple.pc(),
                candidate.tuple.value(),
                share
            );
        }
    }

    // The dominant tuple should be the value 5 at the sum loop's load PC.
    let last = hook.captured.last().expect("at least one interval");
    let top = &last.candidates()[0];
    assert_eq!(top.tuple.value().as_u64(), 5, "value 5 dominates the loads");
    println!(
        "\n=> a frequent-value cache would compress value {}",
        top.tuple.value()
    );
    Ok(())
}
