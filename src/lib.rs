//! # mhp — the Multi-Hash hardware profiler
//!
//! A production-quality Rust reproduction of *"Catching Accurate Profiles in
//! Hardware"* (Narayanasamy, Sherwood, Sair, Calder, Varghese — HPCA 2003):
//! a pure-hardware profiler that captures the frequently occurring profiling
//! events of a program — load values, branch edges, or any other tuple-named
//! event — in 7–16 KB of state, with no software involvement and an average
//! error under 1 %.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`core`] | the profiler architectures: [`MultiHashProfiler`], [`SingleHashProfiler`], [`PerfectProfiler`], hash family, accumulator table, theory model |
//! | [`trace`] | workload substrate: calibrated benchmark models and a toy instrumented CPU |
//! | [`stratified`] | the Stratified Sampler baseline (Sastry et al., ISCA 2001) |
//! | [`analysis`] | error metrics (Figure 3 / Equation 1), comparison drivers, variation analysis |
//! | [`cache`] | data-cache simulator substrate and miss-event streams (§2's prefetching motivation) |
//! | [`apps`] | run-time optimization clients consuming profiles: frequent-value cache, trace formation, multipath selection, delinquent-load targeting |
//!
//! ## Quickstart
//!
//! ```
//! use mhp::prelude::*;
//!
//! # fn main() -> Result<(), mhp::ConfigError> {
//! // The paper's best configuration: 2K counters over 4 hash tables,
//! // conservative update, retaining, no resetting; 10K-event intervals
//! // with a 1% candidate threshold.
//! let mut profiler =
//!     MultiHashProfiler::new(IntervalConfig::short(), MultiHashConfig::best(), 42)?;
//!
//! // Profile a synthetic gcc-like value stream and measure error against a
//! // perfect profiler.
//! let events = Benchmark::Gcc.value_stream(42).take(100_000);
//! let result = run_comparison(&mut profiler, events);
//! println!("mean error: {:.2}%", result.series().mean_total_percent());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mhp_analysis as analysis;
pub use mhp_apps as apps;
pub use mhp_cache as cache;
pub use mhp_core as core;
pub use mhp_stratified as stratified;
pub use mhp_trace as trace;

pub use mhp_analysis::{
    compare_interval, run_comparison, run_exact_stats, ComparisonResult, ErrorBreakdown,
    ErrorCategory, ErrorSeries, ExactStats, IntervalError,
};
pub use mhp_apps::{DelinquentLoadSet, FrequentValueTable, MultipathSelector, TraceFormer};
pub use mhp_cache::{Cache, CacheConfig, MissEvents};
pub use mhp_core::{
    AccumulatorTable, AreaModel, ConfigError, EventProfiler, IntervalConfig, IntervalProfile,
    MultiHashConfig, MultiHashProfiler, PerfectProfiler, SingleHashConfig, SingleHashProfiler,
    Tuple,
};
pub use mhp_stratified::{StratifiedConfig, StratifiedSampler};
pub use mhp_trace::Benchmark;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use mhp_analysis::{run_comparison, run_exact_stats, ErrorCategory};
    pub use mhp_core::{
        EventProfiler, IntervalConfig, MultiHashConfig, MultiHashProfiler, PerfectProfiler,
        SingleHashConfig, SingleHashProfiler, Tuple,
    };
    pub use mhp_stratified::{StratifiedConfig, StratifiedSampler};
    pub use mhp_trace::Benchmark;
}
