//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The build container cannot reach crates.io, so this crate provides the
//! subset of the criterion 0.5 API the workspace's benches use: `Criterion`,
//! `benchmark_group` with `throughput` / `sample_size` / `bench_function` /
//! `finish`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up once,
//! then timed over `sample_size` samples whose per-iteration wall-clock
//! medians are reported, along with elements/sec when a throughput is set.
//! There is no statistical analysis, plotting, or baseline comparison — the
//! point is that `cargo bench` keeps working and reports usable numbers.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per benchmark iteration, used to derive a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iteration processes this many logical elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.default_sample_size;
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let sample_size = self.default_sample_size;
        run_benchmark(&name.into(), None, sample_size, f);
        self
    }
}

/// A group of benchmarks sharing throughput and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, name.into());
        run_benchmark(&label, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Median per-iteration time of the most recent `iter` call.
    per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warmup pass, also used to size the inner batch so that each
        // sample lasts long enough for the clock to resolve it.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let mut samples = Vec::with_capacity(8);
        for _ in 0..8 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(start.elapsed() / batch);
        }
        samples.sort_unstable();
        self.per_iter = samples[samples.len() / 2];
    }
}

fn run_benchmark(
    label: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut best = Duration::MAX;
    for _ in 0..sample_size.min(5) {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        if bencher.per_iter > Duration::ZERO {
            best = best.min(bencher.per_iter);
        }
    }
    if best == Duration::MAX {
        println!("  {label}: no measurement");
        return;
    }
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:.2} Melem/s", n as f64 / best.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:.2} MiB/s",
                n as f64 / best.as_secs_f64() / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("  {label}: {best:?}/iter{rate}");
}

/// Bundles benchmark functions into one callable group, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut b = Bencher::default();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert!(b.per_iter > Duration::ZERO);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .throughput(Throughput::Elements(10))
            .sample_size(2)
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
