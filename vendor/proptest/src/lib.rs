//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real proptest cannot be fetched. This crate implements the *subset* of the
//! proptest 1.x API that the workspace's tests actually use:
//!
//! * [`Strategy`](strategy::Strategy) with `prop_map`, implemented for
//!   integer ranges and tuples of strategies;
//! * [`any`](arbitrary::any) for `bool` and the primitive integers;
//! * [`collection::vec`] with a size range;
//! * the [`proptest!`] macro (including `#![proptest_config(..)]`) and the
//!   [`prop_assert!`] / [`prop_assert_eq!`] assertions.
//!
//! Semantics differ from real proptest in two deliberate ways: generation is
//! fully deterministic (seeded from the test name, so failures always
//! reproduce), and there is **no shrinking** — a failing case panics with the
//! generated values left to the assertion message. That trades minimal
//! counterexamples for zero dependencies.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a `use proptest::prelude::*;` consumer expects in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs `cases` iterations of a closure over freshly generated values.
///
/// This is the engine behind the [`proptest!`] macro; it is public only so
/// the macro can reach it from other crates.
#[doc(hidden)]
pub fn run_cases(test_name: &str, cases: u32, mut f: impl FnMut(&mut test_runner::TestRng)) {
    let mut rng = test_runner::TestRng::from_name(test_name);
    for _ in 0..cases {
        f(&mut rng);
    }
}

/// Property-test entry point: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
///
/// Mirrors proptest's macro syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), config.cases, |rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), rng);)+
                $body
            });
        }
    )* };
}

/// Assertion used inside [`proptest!`] bodies; panics on failure (no
/// shrinking, unlike real proptest which records and retries).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion used inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Inequality assertion used inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_test_name() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        crate::run_cases("same_name", 16, |rng| a.push(rng.next_u64()));
        crate::run_cases("same_name", 16, |rng| b.push(rng.next_u64()));
        assert_eq!(a, b);
        let mut c = Vec::new();
        crate::run_cases("other_name", 16, |rng| c.push(rng.next_u64()));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u64..17, y in 1u32..=3, z in 0usize..9) {
            prop_assert!((5..17).contains(&x));
            prop_assert!((1..=3).contains(&y));
            prop_assert!(z < 9);
        }

        #[test]
        fn vec_respects_size_and_element_ranges(
            v in prop::collection::vec((0u64..64, 0u64..16), 1..50),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for &(a, b) in &v {
                prop_assert!(a < 64 && b < 16);
            }
        }

        #[test]
        fn prop_map_applies(doubled in (0u64..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 200);
        }

        #[test]
        fn any_bool_and_ints_generate(flag in any::<bool>(), word in any::<u64>()) {
            // Smoke: both branches of bool occur over 32 cases with high
            // probability, but the property itself just type-checks usage.
            let _ = (flag, word);
        }
    }
}
