//! `any::<T>()` — the "anything of this type" strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => { $(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )* };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_name("any_bool");
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[bool::arbitrary(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::from_name("any_u64");
        let a = any::<u64>().new_value(&mut rng);
        let b = any::<u64>().new_value(&mut rng);
        assert_ne!(a, b);
    }
}
