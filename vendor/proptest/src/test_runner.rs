//! Deterministic generation state and per-test configuration.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` iterations per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than real proptest's 256 because there is no
    /// shrinking to amortize, and tier-1 CI runs every property serially.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 generator seeded from the test name, so every property's
/// stream is stable across runs and independent of sibling tests.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` by multiply-shift; `bound` must be
    /// non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_name("below");
        for bound in [1u64, 2, 3, 17, 1 << 40] {
            for _ in 0..100 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn default_config_has_cases() {
        assert!(ProptestConfig::default().cases > 0);
        assert_eq!(ProptestConfig::with_cases(7).cases, 7);
    }
}
