//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(len: usize) -> Self {
        SizeRange {
            min: len,
            max: len + 1,
        }
    }
}

/// A `Vec` strategy: `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_length_stays_in_range() {
        let mut rng = TestRng::from_name("vec_len");
        for _ in 0..100 {
            let v = vec(0u64..10, 2..5).new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let mut rng = TestRng::from_name("vec_fixed");
        let v = vec(0u64..10, 3usize).new_value(&mut rng);
        assert_eq!(v.len(), 3);
    }
}
