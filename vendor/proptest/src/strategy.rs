//! The [`Strategy`] trait and its implementations for ranges and tuples.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic sampler over a [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => { $(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64) - (*self.start() as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                self.start() + rng.below(span + 1) as $ty
            }
        }
    )* };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// A strategy that always yields clones of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_draws_cover_interior() {
        let mut rng = TestRng::from_name("range");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert((3u64..7).new_value(&mut rng));
        }
        assert_eq!(seen, [3u64, 4, 5, 6].into_iter().collect());
    }

    #[test]
    fn inclusive_range_reaches_endpoints() {
        let mut rng = TestRng::from_name("incl");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert((1u32..=3).new_value(&mut rng));
        }
        assert_eq!(seen, [1u32, 2, 3].into_iter().collect());
    }

    #[test]
    fn tuple_strategy_draws_componentwise() {
        let mut rng = TestRng::from_name("tuple");
        let (a, b) = (0u64..4, 10u64..14).new_value(&mut rng);
        assert!(a < 4 && (10..14).contains(&b));
    }

    #[test]
    fn just_yields_the_value() {
        let mut rng = TestRng::from_name("just");
        assert_eq!(Just(41).new_value(&mut rng), 41);
    }
}
